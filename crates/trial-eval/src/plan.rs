//! The physical plan IR: what the planner emits and the executor runs.
//!
//! A [`Plan`] is a tree of [`PlanNode`]s, each a concrete physical operator
//! with its chosen strategy (index scan vs. filter, hash vs. index
//! nested-loop join, semi-naive vs. reachability star) and an estimated
//! output cardinality. The tree is produced once per `(expression, store)`
//! pair by [`crate::planner`] and interpreted by [`crate::exec`]; the logical
//! [`Expr`](trial_core::Expr) tree is never pattern-matched on the execution
//! path.
//!
//! Each node also carries **pipeline metadata** consumed by the streaming
//! executor: [`PlanNode::ordered`] (output streams in canonical order, hence
//! duplicate-free) and [`PlanNode::pipelined`] (`false` marks a pipeline
//! breaker that materialises an input before emitting its first row).
//! [`Plan::explain`] renders the tree in the usual `EXPLAIN` style, tagging
//! every operator with its pipeline behaviour:
//!
//! ```text
//! Union  (~10 rows) [pipelined]
//! ├─ Memo #0 [breaker]
//! │  ╰─ HashJoin [1,3',3 | 2=1'] build=right  (~7 rows) [breaker]
//! │     ├─ IndexScan E  (7 rows) [pipelined]
//! │     ╰─ IndexScan E  (7 rows) [pipelined]
//! ╰─ StarReach plain on E  (~49 rows) [breaker]
//!    ╰─ IndexScan E  (7 rows) [pipelined]
//! ```

use std::fmt;
use trial_core::{Conditions, ObjectId, OutputSpec, Permutation, Pos, StarDirection};

/// One physical operator with its inputs and cardinality estimate.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Scan a stored relation, optionally binding one component to a
    /// constant through the matching permutation index, with residual
    /// selection conditions applied during the scan.
    IndexScan {
        /// Relation name.
        relation: String,
        /// Pushed-down constant binding `(component, object)` served by the
        /// permutation index keyed on that component.
        bound: Option<(usize, ObjectId)>,
        /// Residual selection conditions checked per scanned triple.
        residual: Conditions,
        /// Which permutation an **unbound** scan streams — the planner's
        /// free order-delivery knob (merge-join inputs, `?order=` roots).
        ///
        /// Bound scans always read the run of the permutation keyed on the
        /// bound component, but that run is *also* strictly sorted under the
        /// permutation's [`Permutation::secondary`] order (the bound
        /// component is constant, so the remaining two components — exactly
        /// the secondary key prefix — decide every comparison). Setting this
        /// field to the secondary permutation makes [`PlanNode::ordering`]
        /// advertise that order instead of the primary one, which is how the
        /// planner unlocks merge joins between two *bound* scans without
        /// inserting a sort. Any other value on a bound scan is ignored.
        order: Permutation,
        /// Estimated output rows.
        est: usize,
    },
    /// Materialise the universal relation `U = adom³`.
    Universe {
        /// Estimated output rows (`|adom|³`).
        est: usize,
    },
    /// The empty relation.
    Empty,
    /// Filter the input by selection conditions (no index available).
    Filter {
        /// Input plan.
        input: Box<PlanNode>,
        /// Selection conditions.
        cond: Conditions,
        /// Estimated output rows.
        est: usize,
    },
    /// Hash join: build a table on the right input keyed on the cross
    /// equalities, probe with the left input.
    HashJoin {
        /// Probe side.
        left: Box<PlanNode>,
        /// Build side.
        right: Box<PlanNode>,
        /// Output specification.
        output: OutputSpec,
        /// Full join conditions.
        cond: Conditions,
        /// Cross equalities used as the hash key.
        keys: Vec<(Pos, Pos)>,
        /// `true` if the planner swapped the written argument order (so the
        /// smaller side is built); output and conditions are already
        /// mirrored accordingly.
        swapped: bool,
        /// Estimated output rows.
        est: usize,
    },
    /// Index nested-loop join: probe a base relation's permutation index
    /// with each outer triple (no build phase at all).
    IndexNestedLoopJoin {
        /// Outer (probing, left) side.
        outer: Box<PlanNode>,
        /// Inner base relation, probed through its permutation index.
        relation: String,
        /// The cross equality used for the index probe.
        probe: (Pos, Pos),
        /// Output specification.
        output: OutputSpec,
        /// Full join conditions.
        cond: Conditions,
        /// `true` if the planner swapped the written argument order.
        swapped: bool,
        /// Estimated output rows.
        est: usize,
    },
    /// Sort-merge join: both inputs stream in a sort order keyed on the join
    /// component (left on `key.0`'s component, right on `key.1`'s), so the
    /// join is a single synchronized pass — fully pipelined, **no build
    /// side, no hash table**. Only the current right-side key group is
    /// buffered (bounded by the widest duplicate run).
    MergeJoin {
        /// Left input, streaming ordered on `key.0`'s component.
        left: Box<PlanNode>,
        /// Right input, streaming ordered on `key.1`'s component.
        right: Box<PlanNode>,
        /// Output specification.
        output: OutputSpec,
        /// Full join conditions (checked per matching pair; includes the
        /// merge key equality).
        cond: Conditions,
        /// The cross equality the merge is synchronized on.
        key: (Pos, Pos),
        /// Estimated output rows.
        est: usize,
    },
    /// Nested-loop join (no hashable key).
    NestedLoopJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Output specification.
        output: OutputSpec,
        /// Join conditions.
        cond: Conditions,
        /// Estimated output rows.
        est: usize,
    },
    /// Set union.
    Union {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Estimated output rows.
        est: usize,
    },
    /// Set difference.
    Diff {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Estimated output rows.
        est: usize,
    },
    /// Set intersection.
    Intersect {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Estimated output rows.
        est: usize,
    },
    /// Complement against the universal relation.
    Complement {
        /// Input plan.
        input: Box<PlanNode>,
        /// Estimated output rows.
        est: usize,
    },
    /// Kleene star by semi-naive (delta) fixpoint iteration; the base's hash
    /// table is built once and probed every round.
    StarSemiNaive {
        /// Plan for the starred expression.
        input: Box<PlanNode>,
        /// Output specification of the iterated join.
        output: OutputSpec,
        /// Conditions of the iterated join.
        cond: Conditions,
        /// Closure direction.
        direction: StarDirection,
        /// Estimated output rows.
        est: usize,
    },
    /// Kleene star by the Proposition 5 reachability procedures (BFS over
    /// adjacency lists).
    StarReach {
        /// Plan for the starred expression.
        input: Box<PlanNode>,
        /// `true` for the same-label shape `(R ✶^{1,2,3'}_{3=1',2=2'})^*`.
        same_label: bool,
        /// If the base is exactly a stored relation, its name — the executor
        /// then walks the store's cached adjacency lists instead of building
        /// its own.
        relation: Option<String>,
        /// Estimated output rows.
        est: usize,
    },
    /// Regular path query evaluated as a BFS over the product of a stored
    /// relation's edge graph with a Thompson NFA of the path expression
    /// ([`crate::rpq::eval_product`]). A leaf: the executor walks the
    /// store's cached per-label adjacency lists directly. Emits the pair
    /// encoding `(x, x, y)` for every pair the path matches.
    PathNfa {
        /// The stored relation whose triples are the edge graph.
        relation: String,
        /// The path expression (its `Display` form is the query text).
        path: trial_parser::PathExpr,
        /// Bound on graph edges per matched path (`None` = unbounded).
        max_hops: Option<usize>,
        /// Estimated output rows.
        est: usize,
    },
    /// Materialisation point for a repeated sub-expression: the first
    /// execution stores the result in the slot, later executions reuse it.
    Memo {
        /// Slot number (one per distinct repeated sub-expression).
        slot: usize,
        /// Plan for the shared sub-expression.
        input: Box<PlanNode>,
    },
    /// Emit at most `limit` **distinct** triples of the input, then stop
    /// pulling — the early-termination point of the streaming executor.
    ///
    /// The planner pushes limits down through order-preserving operators
    /// (nested limits fold, union children are limited individually); a limit
    /// directly above a pipelined subtree bounds the number of rows the
    /// whole subtree ever produces.
    Limit {
        /// Input plan.
        input: Box<PlanNode>,
        /// Maximum number of distinct output triples.
        limit: usize,
        /// Estimated output rows (`min(input estimate, limit)`).
        est: usize,
    },
    /// Materialise the input and re-emit it sorted by the given permutation
    /// key — the explicit **order breaker** the planner inserts when an
    /// order is required (a `?order=` response) but no operator below can
    /// deliver it.
    Sort {
        /// Input plan.
        input: Box<PlanNode>,
        /// The permutation key the output streams in.
        order: Permutation,
        /// Estimated output rows (same as the input's).
        est: usize,
    },
    /// The `k` smallest distinct triples of the input under the given
    /// permutation key, via a bounded heap of at most `k` entries — the
    /// generalisation of [`PlanNode::Limit`] to "k smallest by component
    /// ordering". Consumes its whole input before emitting (a *bounded*
    /// breaker: memory never exceeds `k` buffered keys, asserted through
    /// [`crate::EvalStats::topk_buffered_peak`]), then streams the survivors
    /// in key order. Unlike a streamed limit the result is deterministic:
    /// permutation keys induce a total order, so "the k smallest" is a
    /// unique set.
    TopK {
        /// Input plan.
        input: Box<PlanNode>,
        /// Number of smallest triples kept.
        k: usize,
        /// The permutation key defining "smallest" (and the output order).
        order: Permutation,
        /// Estimated output rows (`min(input estimate, k)`).
        est: usize,
    },
}

impl PlanNode {
    /// The planner's estimate of this node's output cardinality.
    pub fn est(&self) -> usize {
        match self {
            PlanNode::Empty => 0,
            PlanNode::IndexScan { est, .. }
            | PlanNode::Universe { est }
            | PlanNode::Filter { est, .. }
            | PlanNode::HashJoin { est, .. }
            | PlanNode::MergeJoin { est, .. }
            | PlanNode::IndexNestedLoopJoin { est, .. }
            | PlanNode::NestedLoopJoin { est, .. }
            | PlanNode::Union { est, .. }
            | PlanNode::Diff { est, .. }
            | PlanNode::Intersect { est, .. }
            | PlanNode::Complement { est, .. }
            | PlanNode::StarSemiNaive { est, .. }
            | PlanNode::StarReach { est, .. }
            | PlanNode::PathNfa { est, .. }
            | PlanNode::Limit { est, .. }
            | PlanNode::Sort { est, .. }
            | PlanNode::TopK { est, .. } => *est,
            PlanNode::Memo { input, .. } => input.est(),
        }
    }

    /// Returns this node with its cardinality estimate replaced — how the
    /// planner applies an observed (feedback-statistics) row count to a
    /// freshly built operator without re-deriving it. Nodes whose estimate
    /// is structural ([`PlanNode::Empty`], [`PlanNode::Memo`]) are returned
    /// unchanged.
    #[must_use]
    pub fn with_est(mut self, new_est: usize) -> PlanNode {
        match &mut self {
            PlanNode::Empty | PlanNode::Memo { .. } => {}
            PlanNode::IndexScan { est, .. }
            | PlanNode::Universe { est }
            | PlanNode::Filter { est, .. }
            | PlanNode::HashJoin { est, .. }
            | PlanNode::MergeJoin { est, .. }
            | PlanNode::IndexNestedLoopJoin { est, .. }
            | PlanNode::NestedLoopJoin { est, .. }
            | PlanNode::Union { est, .. }
            | PlanNode::Diff { est, .. }
            | PlanNode::Intersect { est, .. }
            | PlanNode::Complement { est, .. }
            | PlanNode::StarSemiNaive { est, .. }
            | PlanNode::StarReach { est, .. }
            | PlanNode::PathNfa { est, .. }
            | PlanNode::Limit { est, .. }
            | PlanNode::Sort { est, .. }
            | PlanNode::TopK { est, .. } => *est = new_est,
        }
        self
    }

    /// The sort order this operator's streamed output follows, if any: the
    /// permutation whose key is strictly increasing across the emitted rows.
    /// Because permutation keys order all three components, `Some(_)` also
    /// means the stream is duplicate-free.
    ///
    /// Ordered streams unlock merge joins and merge unions, allocation-free
    /// distinct counting, limit enforcement without a seen-set, and
    /// `?order=` responses that stream without a sort breaker. The metadata
    /// is deliberately **conservative**: joins never claim an order, even
    /// when the output spec projects only left positions in scan order —
    /// a probe row matching several build rows is emitted several times, and
    /// a duplicated row breaks the *strictly*-increasing contract that the
    /// dedup-free paths rely on. The one exception is the merge join with an
    /// **identity output** (`[1,2,3]`): the executor then short-circuits
    /// each left row after its first surviving partner (a semijoin — the
    /// projected row would be the same left row every time), so the output
    /// is a subsequence of the already-ordered, already-distinct left stream
    /// and the claim is real. (Claiming order through a mirrored hash join
    /// is exactly the kind of optimism the `every_claimed_order_is_real`
    /// regression test exists to catch.)
    pub fn ordering(&self) -> Option<Permutation> {
        match self {
            // An unbound scan streams whichever permutation the planner
            // chose; a bound scan streams the run of the permutation keyed on
            // the bound component (constant there, sorted on the rest — a
            // contiguous, strictly increasing slice of that permutation).
            // That same run is also strictly sorted under the permutation's
            // *secondary* order, and the planner opts into advertising it by
            // setting `order` to exactly that permutation (see the field
            // docs); every other `order` value means the primary claim.
            PlanNode::IndexScan { bound, order, .. } => match bound {
                None => Some(*order),
                Some((component, _)) => {
                    let primary = Permutation::keyed_on(*component);
                    Some(if *order == primary.secondary() {
                        *order
                    } else {
                        primary
                    })
                }
            },
            // Lexicographic loops over the sorted active domain.
            PlanNode::Universe { .. } | PlanNode::Empty => Some(Permutation::Spo),
            // Filtering preserves order; so do streamed set operations on
            // their left (streamed) side.
            PlanNode::Filter { input, .. } | PlanNode::Limit { input, .. } => input.ordering(),
            PlanNode::Diff { left, .. } | PlanNode::Intersect { left, .. } => left.ordering(),
            // A union merges (ordered) only when both inputs share an order;
            // otherwise it concatenates.
            PlanNode::Union { left, right, .. } => {
                let order = left.ordering()?;
                (right.ordering() == Some(order)).then_some(order)
            }
            // The universe streams in canonical order and removal preserves
            // it.
            PlanNode::Complement { .. } => Some(Permutation::Spo),
            // An identity-output merge join runs as a semijoin: each left
            // row is emitted at most once (the executor short-circuits the
            // right group after the first surviving partner), so the output
            // is a subsequence of the left stream and inherits its order.
            PlanNode::MergeJoin { left, output, .. } if *output == OutputSpec::IDENTITY => {
                left.ordering()
            }
            // Projection scrambles join outputs — and duplicate emissions
            // break strictness even when it wouldn't (see above). This
            // includes the projecting merge join: its *inputs* are ordered,
            // its output is not.
            PlanNode::HashJoin { .. }
            | PlanNode::MergeJoin { .. }
            | PlanNode::IndexNestedLoopJoin { .. }
            | PlanNode::NestedLoopJoin { .. } => None,
            // Fixpoints, NFA walks and memo slots materialise into sorted
            // `TripleSet`s.
            PlanNode::StarSemiNaive { .. }
            | PlanNode::StarReach { .. }
            | PlanNode::PathNfa { .. }
            | PlanNode::Memo { .. } => Some(Permutation::Spo),
            // Sort and top-k exist to impose their order.
            PlanNode::Sort { order, .. } | PlanNode::TopK { order, .. } => Some(*order),
        }
    }

    /// `true` if this operator's output streams in strictly increasing
    /// canonical (SPO) order — the order [`trial_core::TripleSet`]s store,
    /// so such streams collect via the zero-copy sorted path.
    pub fn ordered(&self) -> bool {
        self.ordering() == Some(Permutation::Spo)
    }

    /// `true` if the set-at-a-time executor has a **morsel-parallel
    /// strategy** for this operator: with [`crate::EvalOptions::threads`]
    /// `> 1` (and an input large enough to beat spawn overhead) its work is
    /// carved into contiguous morsels executed on a scoped worker pool.
    ///
    /// Parallel operators: hash joins (sharded build + partitioned probe,
    /// sides evaluated concurrently), index and plain nested-loop joins
    /// (partitioned outer/left side), filtered scans and standalone filters
    /// (partitioned selection over storage-layer morsels), star fixpoints
    /// (per-round delta partitioning / BFS fan-out), and the binary set
    /// operations union/difference/intersection plus complement (the two
    /// sides — for complement, the excluded input and the universe —
    /// materialise concurrently). Plain scans, memo slots and limits stay
    /// sequential — a limit's subtree runs as a pull-based pipeline whose
    /// early termination a parallel drain would forfeit, so it falls back
    /// explicitly.
    pub fn parallelizable(&self) -> bool {
        match self {
            PlanNode::IndexScan { residual, .. } => !residual.is_empty(),
            PlanNode::Filter { .. }
            | PlanNode::HashJoin { .. }
            | PlanNode::MergeJoin { .. }
            | PlanNode::IndexNestedLoopJoin { .. }
            | PlanNode::NestedLoopJoin { .. }
            | PlanNode::Union { .. }
            | PlanNode::Diff { .. }
            | PlanNode::Intersect { .. }
            | PlanNode::Complement { .. }
            | PlanNode::StarSemiNaive { .. }
            | PlanNode::StarReach { .. }
            | PlanNode::PathNfa { .. } => true,
            // Sort and top-k drain sequentially like limits (the heap and
            // the sorted emit are inherently serial); breakers beneath them
            // still parallelise inside their own materialisation.
            PlanNode::Universe { .. }
            | PlanNode::Empty
            | PlanNode::Memo { .. }
            | PlanNode::Limit { .. }
            | PlanNode::Sort { .. }
            | PlanNode::TopK { .. } => false,
        }
    }

    /// This subtree in preorder (the node itself, then each child's subtree
    /// left to right) — the indexing scheme shared by
    /// [`crate::exec`]'s per-node actual-row counters and the server's
    /// structured `/explain` tree.
    pub fn preorder(&self) -> Vec<&PlanNode> {
        fn walk<'n>(node: &'n PlanNode, out: &mut Vec<&'n PlanNode>) {
            out.push(node);
            for child in node.children() {
                walk(child, out);
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// `true` if this operator emits rows incrementally as its inputs are
    /// pulled; `false` if it is a **pipeline breaker** that must fully
    /// consume at least one input before emitting its first row (hash-join
    /// build sides, nested-loop and difference/intersection right sides,
    /// complement inputs, star fixpoints, memo slots).
    pub fn pipelined(&self) -> bool {
        match self {
            PlanNode::IndexScan { .. }
            | PlanNode::Universe { .. }
            | PlanNode::Empty
            | PlanNode::Filter { .. }
            | PlanNode::Union { .. }
            | PlanNode::MergeJoin { .. }
            | PlanNode::IndexNestedLoopJoin { .. }
            | PlanNode::Limit { .. } => true,
            PlanNode::HashJoin { .. }
            | PlanNode::NestedLoopJoin { .. }
            | PlanNode::Diff { .. }
            | PlanNode::Intersect { .. }
            | PlanNode::Complement { .. }
            | PlanNode::StarSemiNaive { .. }
            | PlanNode::StarReach { .. }
            | PlanNode::PathNfa { .. }
            | PlanNode::Memo { .. }
            // A sort materialises its whole input; a top-k heap must see
            // every row before the smallest k are known (but buffers at most
            // k of them — a *bounded* breaker).
            | PlanNode::Sort { .. }
            | PlanNode::TopK { .. } => false,
        }
    }

    /// Child plans, left to right.
    pub fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::IndexScan { .. }
            | PlanNode::Universe { .. }
            | PlanNode::Empty
            | PlanNode::PathNfa { .. } => vec![],
            PlanNode::Filter { input, .. }
            | PlanNode::Complement { input, .. }
            | PlanNode::StarSemiNaive { input, .. }
            | PlanNode::StarReach { input, .. }
            | PlanNode::Memo { input, .. }
            | PlanNode::Limit { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::TopK { input, .. } => vec![input],
            PlanNode::HashJoin { left, right, .. }
            | PlanNode::MergeJoin { left, right, .. }
            | PlanNode::NestedLoopJoin { left, right, .. }
            | PlanNode::Union { left, right, .. }
            | PlanNode::Diff { left, right, .. }
            | PlanNode::Intersect { left, right, .. } => vec![left, right],
            PlanNode::IndexNestedLoopJoin { outer, .. } => vec![outer],
        }
    }

    /// The operator's one-line label (without children) as rendered for an
    /// evaluation running on `threads` worker threads: like
    /// [`PlanNode::label`], plus a `[parallel×N]` tag on every operator the
    /// executor would run morsel-parallel at that degree.
    pub fn label_with_threads(&self, threads: usize) -> String {
        let mut label = self.label();
        if threads > 1 && self.parallelizable() {
            label.push_str(&format!(" [parallel×{threads}]"));
        }
        label
    }

    /// The operator's one-line label (without children), as used by
    /// [`Plan::explain`].
    pub fn label(&self) -> String {
        fn cond_part(output: &OutputSpec, cond: &Conditions) -> String {
            if cond.is_empty() {
                format!("[{output}]")
            } else {
                format!("[{output} | {cond}]")
            }
        }
        let mut label = match self {
            PlanNode::IndexScan {
                relation,
                bound,
                residual,
                order,
                est,
            } => {
                let mut s = format!("IndexScan {relation}");
                if let Some((component, id)) = bound {
                    s.push_str(&format!(" where {}=#{}", component + 1, id.0));
                    // A bound run advertising its secondary sort order is a
                    // deliberate planner choice (bound⋈bound merge input).
                    if *order == Permutation::keyed_on(*component).secondary() {
                        s.push_str(&format!(" order={order}"));
                    }
                } else if *order != Permutation::Spo {
                    // A non-canonical scan order is a deliberate planner
                    // choice (merge-join input, ?order= root): surface it.
                    s.push_str(&format!(" order={order}"));
                }
                if !residual.is_empty() {
                    s.push_str(&format!(" filter [{residual}]"));
                }
                s.push_str(&format!("  ({est} rows)"));
                s
            }
            PlanNode::Universe { est } => format!("Universe  (~{est} rows)"),
            PlanNode::Empty => "Empty  (0 rows)".to_owned(),
            PlanNode::Filter { cond, est, .. } => format!("Filter [{cond}]  (~{est} rows)"),
            PlanNode::HashJoin {
                output,
                cond,
                keys,
                swapped,
                est,
                ..
            } => {
                let keys: Vec<String> = keys.iter().map(|(l, r)| format!("{l}={r}")).collect();
                format!(
                    "HashJoin {} keys={}{}  (~{est} rows)",
                    cond_part(output, cond),
                    keys.join(","),
                    if *swapped { " (args swapped)" } else { "" },
                )
            }
            PlanNode::MergeJoin {
                left,
                right,
                output,
                cond,
                key,
                est,
            } => {
                let side = |n: &PlanNode| n.ordering().map(|p| p.name()).unwrap_or("?");
                format!(
                    "MergeJoin {} on {}={}  (~{est} rows) [merge {}⋈{}]",
                    cond_part(output, cond),
                    key.0,
                    key.1,
                    side(left),
                    side(right),
                )
            }
            PlanNode::IndexNestedLoopJoin {
                relation,
                probe,
                output,
                cond,
                swapped,
                est,
                ..
            } => format!(
                "IndexNestedLoopJoin {} into {relation} via {}={}{}  (~{est} rows)",
                cond_part(output, cond),
                probe.0,
                probe.1,
                if *swapped { " (args swapped)" } else { "" },
            ),
            PlanNode::NestedLoopJoin {
                output, cond, est, ..
            } => format!("NestedLoopJoin {}  (~{est} rows)", cond_part(output, cond)),
            PlanNode::Union { est, .. } => format!("Union  (~{est} rows)"),
            PlanNode::Diff { est, .. } => format!("Diff  (~{est} rows)"),
            PlanNode::Intersect { est, .. } => format!("Intersect  (~{est} rows)"),
            PlanNode::Complement { est, .. } => format!("Complement  (~{est} rows)"),
            PlanNode::StarSemiNaive {
                output,
                cond,
                direction,
                est,
                ..
            } => {
                let dir = match direction {
                    StarDirection::Right => "right",
                    StarDirection::Left => "left",
                };
                format!(
                    "StarSemiNaive {dir} {}  (~{est} rows)",
                    cond_part(output, cond)
                )
            }
            PlanNode::StarReach {
                same_label,
                relation,
                est,
                ..
            } => {
                let shape = if *same_label { "same-label" } else { "plain" };
                match relation {
                    Some(rel) => format!("StarReach {shape} on {rel}  (~{est} rows)"),
                    None => format!("StarReach {shape}  (~{est} rows)"),
                }
            }
            PlanNode::PathNfa {
                relation,
                path,
                max_hops,
                est,
            } => match max_hops {
                Some(h) => format!("PathNfa {path} on {relation} max_hops={h}  (~{est} rows)"),
                None => format!("PathNfa {path} on {relation}  (~{est} rows)"),
            },
            PlanNode::Memo { slot, .. } => format!("Memo #{slot}"),
            PlanNode::Limit { limit, est, .. } => format!("Limit {limit}  (~{est} rows)"),
            PlanNode::Sort { order, est, .. } => format!("Sort  (~{est} rows) [sort {order}]"),
            PlanNode::TopK { k, order, est, .. } => {
                format!("TopK {k}  (~{est} rows) [topk {order}]")
            }
        };
        label.push_str(if self.pipelined() {
            " [pipelined]"
        } else {
            " [breaker]"
        });
        label
    }

    fn render(&self, out: &mut String, prefix: &str, is_last: Option<bool>, threads: usize) {
        let (branch, next_prefix) = match is_last {
            None => ("", String::new()),
            Some(false) => ("├─ ", format!("{prefix}│  ")),
            Some(true) => ("╰─ ", format!("{prefix}   ")),
        };
        out.push_str(prefix);
        out.push_str(branch);
        out.push_str(&self.label_with_threads(threads));
        out.push('\n');
        let children = self.children();
        let count = children.len();
        for (i, child) in children.into_iter().enumerate() {
            child.render(out, &next_prefix, Some(i + 1 == count), threads);
        }
    }

    /// Renders this subtree in `EXPLAIN` style (single-threaded labels; use
    /// [`Plan::explain`] for the thread-aware rendering of a whole plan).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, "", None, 1);
        out
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

/// A complete physical plan: the operator tree plus the number of memo slots
/// the executor must allocate and the degree of parallelism it was planned
/// for.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Root operator.
    pub root: PlanNode,
    /// Number of [`PlanNode::Memo`] slots referenced by the tree.
    pub memo_slots: usize,
    /// The [`crate::EvalOptions::threads`] the plan was built under; drives
    /// the `[parallel×N]` tags in [`Plan::explain`] (always at least 1).
    pub threads: usize,
}

impl Plan {
    /// Renders the plan in `EXPLAIN` style (see the module docs for a
    /// sample). With [`Plan::threads`]` > 1`, operators the executor runs
    /// morsel-parallel are tagged `[parallel×N]`.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.root.render(&mut out, "", None, self.threads.max(1));
        out
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::{output, Conditions, Pos};

    fn scan(rel: &str, est: usize) -> PlanNode {
        PlanNode::IndexScan {
            relation: rel.to_owned(),
            bound: None,
            residual: Conditions::new(),
            order: Permutation::Spo,
            est,
        }
    }

    #[test]
    fn explain_renders_tree_structure() {
        let join = PlanNode::HashJoin {
            left: Box::new(scan("E", 7)),
            right: Box::new(scan("E", 7)),
            output: output(Pos::L1, Pos::R3, Pos::L3),
            cond: Conditions::new().obj_eq(Pos::L2, Pos::R1),
            keys: vec![(Pos::L2, Pos::R1)],
            swapped: false,
            est: 7,
        };
        let plan = Plan {
            root: PlanNode::Union {
                left: Box::new(PlanNode::Memo {
                    slot: 0,
                    input: Box::new(join),
                }),
                right: Box::new(PlanNode::Empty),
                est: 7,
            },
            memo_slots: 1,
            threads: 1,
        };
        let text = plan.explain();
        assert!(text.contains("Union"));
        assert!(text.contains("Memo #0"));
        assert!(text.contains("HashJoin [1,3',3 | 2=1'] keys=2=1'"));
        assert!(text.contains("├─"));
        assert!(text.contains("╰─"));
        assert!(text.contains("IndexScan E  (7 rows)"));
        assert_eq!(plan.root.est(), 7);
        assert_eq!(plan.to_string(), text);
    }

    #[test]
    fn every_operator_has_a_label() {
        let nodes = vec![
            scan("E", 1),
            PlanNode::Universe { est: 27 },
            PlanNode::Empty,
            PlanNode::Filter {
                input: Box::new(PlanNode::Empty),
                cond: Conditions::new().obj_eq_const(Pos::L2, "p"),
                est: 1,
            },
            PlanNode::IndexNestedLoopJoin {
                outer: Box::new(scan("E", 2)),
                relation: "E".into(),
                probe: (Pos::L3, Pos::R1),
                output: output(Pos::L1, Pos::L2, Pos::R3),
                cond: Conditions::new().obj_eq(Pos::L3, Pos::R1),
                swapped: true,
                est: 2,
            },
            PlanNode::NestedLoopJoin {
                left: Box::new(scan("E", 2)),
                right: Box::new(scan("E", 2)),
                output: output(Pos::L1, Pos::L2, Pos::R3),
                cond: Conditions::new(),
                est: 4,
            },
            PlanNode::Diff {
                left: Box::new(scan("E", 2)),
                right: Box::new(PlanNode::Empty),
                est: 2,
            },
            PlanNode::Intersect {
                left: Box::new(scan("E", 2)),
                right: Box::new(scan("F", 3)),
                est: 2,
            },
            PlanNode::Complement {
                input: Box::new(scan("E", 2)),
                est: 25,
            },
            PlanNode::StarSemiNaive {
                input: Box::new(scan("E", 2)),
                output: output(Pos::L1, Pos::L2, Pos::R3),
                cond: Conditions::new().obj_eq(Pos::L3, Pos::R1),
                direction: StarDirection::Left,
                est: 4,
            },
            PlanNode::StarReach {
                input: Box::new(scan("E", 2)),
                same_label: true,
                relation: Some("E".into()),
                est: 4,
            },
            PlanNode::MergeJoin {
                left: Box::new(scan("E", 2)),
                right: Box::new(scan("E", 2)),
                output: output(Pos::L1, Pos::L2, Pos::R3),
                cond: Conditions::new().obj_eq(Pos::L1, Pos::R1),
                key: (Pos::L1, Pos::R1),
                est: 2,
            },
            PlanNode::Sort {
                input: Box::new(scan("E", 2)),
                order: Permutation::Pos,
                est: 2,
            },
            PlanNode::TopK {
                input: Box::new(scan("E", 2)),
                k: 1,
                order: Permutation::Osp,
                est: 1,
            },
        ];
        for node in nodes {
            let label = node.label();
            assert!(!label.is_empty());
            // The tree rendering of a node always starts with its label.
            assert!(node.explain().starts_with(&label));
        }
    }

    #[test]
    fn pipeline_metadata_is_reported() {
        let scan_node = scan("E", 7);
        assert!(scan_node.ordered());
        assert!(scan_node.pipelined());
        // A scan bound through POS/OSP interleaves; bound through SPO stays
        // canonical.
        let bound_pos = PlanNode::IndexScan {
            relation: "E".into(),
            bound: Some((1, trial_core::ObjectId(3))),
            residual: Conditions::new(),
            order: Permutation::Spo,
            est: 2,
        };
        assert!(!bound_pos.ordered());
        assert_eq!(bound_pos.ordering(), Some(Permutation::Pos));
        let bound_spo = PlanNode::IndexScan {
            relation: "E".into(),
            bound: Some((0, trial_core::ObjectId(3))),
            residual: Conditions::new(),
            order: Permutation::Spo,
            est: 2,
        };
        assert!(bound_spo.ordered());
        // Joins scramble order and break the pipeline on their build side.
        let join = PlanNode::HashJoin {
            left: Box::new(scan("E", 7)),
            right: Box::new(scan("E", 7)),
            output: output(Pos::L1, Pos::R3, Pos::L3),
            cond: Conditions::new().obj_eq(Pos::L2, Pos::R1),
            keys: vec![(Pos::L2, Pos::R1)],
            swapped: false,
            est: 7,
        };
        assert!(!join.ordered());
        assert!(!join.pipelined());
        assert!(join.label().contains("[breaker]"));
        // Union of ordered inputs merges (ordered); over a join it chains.
        let ordered_union = PlanNode::Union {
            left: Box::new(scan("E", 7)),
            right: Box::new(scan("F", 3)),
            est: 10,
        };
        assert!(ordered_union.ordered());
        assert!(ordered_union.pipelined());
        let chained_union = PlanNode::Union {
            left: Box::new(join.clone()),
            right: Box::new(scan("F", 3)),
            est: 10,
        };
        assert!(!chained_union.ordered());
        assert!(chained_union.pipelined());
        // Limits inherit ordering and never break the pipeline.
        let limit = PlanNode::Limit {
            input: Box::new(join),
            limit: 5,
            est: 5,
        };
        assert!(!limit.ordered());
        assert!(limit.pipelined());
        assert_eq!(limit.est(), 5);
        assert!(limit.label().starts_with("Limit 5"));
        assert_eq!(limit.children().len(), 1);
        // Stars and memo slots materialise: ordered but breaking.
        let star = PlanNode::StarReach {
            input: Box::new(scan("E", 7)),
            same_label: false,
            relation: Some("E".into()),
            est: 49,
        };
        assert!(star.ordered());
        assert!(!star.pipelined());
    }

    #[test]
    fn parallel_metadata_and_tags() {
        let join = PlanNode::HashJoin {
            left: Box::new(scan("E", 7)),
            right: Box::new(scan("E", 7)),
            output: output(Pos::L1, Pos::R3, Pos::L3),
            cond: Conditions::new().obj_eq(Pos::L2, Pos::R1),
            keys: vec![(Pos::L2, Pos::R1)],
            swapped: false,
            est: 7,
        };
        assert!(join.parallelizable());
        // A plain scan is a passthrough (nothing to parallelise); a filtered
        // scan partitions its residual check.
        assert!(!scan("E", 7).parallelizable());
        let filtered = PlanNode::IndexScan {
            relation: "E".into(),
            bound: None,
            residual: Conditions::new().obj_neq(Pos::L1, Pos::L3),
            order: Permutation::Spo,
            est: 5,
        };
        assert!(filtered.parallelizable());
        // Limits fall back to the sequential streaming pipeline.
        let limit = PlanNode::Limit {
            input: Box::new(join.clone()),
            limit: 5,
            est: 5,
        };
        assert!(!limit.parallelizable());
        // Labels carry the tag only at degree > 1.
        assert!(join.label_with_threads(4).contains("[parallel×4]"));
        assert!(!join.label_with_threads(1).contains("parallel"));
        assert!(!limit.label_with_threads(4).contains("parallel"));
        // Plan::explain renders with the plan's own degree.
        let parallel_plan = Plan {
            root: join.clone(),
            memo_slots: 0,
            threads: 4,
        };
        assert!(parallel_plan.explain().contains("[parallel×4]"));
        let sequential_plan = Plan {
            root: join,
            memo_slots: 0,
            threads: 1,
        };
        assert!(!sequential_plan.explain().contains("parallel"));
    }

    #[test]
    fn bound_scans_can_advertise_their_secondary_order() {
        // A POS-bound run (component 2 fixed) is also OSP-sorted; declaring
        // `order: osp` switches the advertised ordering without changing the
        // physical scan.
        let bound = |order| PlanNode::IndexScan {
            relation: "E".into(),
            bound: Some((1, trial_core::ObjectId(3))),
            residual: Conditions::new(),
            order,
            est: 2,
        };
        assert_eq!(bound(Permutation::Spo).ordering(), Some(Permutation::Pos));
        assert_eq!(bound(Permutation::Pos).ordering(), Some(Permutation::Pos));
        assert_eq!(bound(Permutation::Osp).ordering(), Some(Permutation::Osp));
        // The secondary claim is surfaced in the label; the primary is not.
        assert!(
            bound(Permutation::Osp).label().contains("order=osp"),
            "{}",
            bound(Permutation::Osp).label()
        );
        assert!(!bound(Permutation::Spo).label().contains("order="));
    }

    #[test]
    fn identity_merge_joins_inherit_the_left_order() {
        let left = PlanNode::IndexScan {
            relation: "E".into(),
            bound: None,
            residual: Conditions::new(),
            order: Permutation::Pos,
            est: 7,
        };
        let semi = PlanNode::MergeJoin {
            left: Box::new(left.clone()),
            right: Box::new(scan("E", 7)),
            output: OutputSpec::IDENTITY,
            cond: Conditions::new().obj_eq(Pos::L2, Pos::R1),
            key: (Pos::L2, Pos::R1),
            est: 7,
        };
        assert_eq!(semi.ordering(), Some(Permutation::Pos));
        // A projecting output still scrambles: no claim.
        let projecting = PlanNode::MergeJoin {
            left: Box::new(left),
            right: Box::new(scan("E", 7)),
            output: output(Pos::L1, Pos::R3, Pos::L3),
            cond: Conditions::new().obj_eq(Pos::L2, Pos::R1),
            key: (Pos::L2, Pos::R1),
            est: 7,
        };
        assert_eq!(projecting.ordering(), None);
    }

    #[test]
    fn with_est_replaces_the_estimate() {
        assert_eq!(scan("E", 7).with_est(42).est(), 42);
        assert_eq!(PlanNode::Empty.with_est(42).est(), 0);
        let memo = PlanNode::Memo {
            slot: 0,
            input: Box::new(scan("E", 7)),
        };
        assert_eq!(memo.with_est(42).est(), 7);
    }

    #[test]
    fn preorder_walk_matches_tree_shape() {
        let tree = PlanNode::Union {
            left: Box::new(PlanNode::Filter {
                input: Box::new(scan("E", 3)),
                cond: Conditions::new().obj_neq(Pos::L1, Pos::L2),
                est: 2,
            }),
            right: Box::new(scan("F", 4)),
            est: 6,
        };
        let order = tree.preorder();
        assert_eq!(order.len(), 4);
        assert!(matches!(order[0], PlanNode::Union { .. }));
        assert!(matches!(order[1], PlanNode::Filter { .. }));
        assert!(matches!(order[2], PlanNode::IndexScan { relation, .. } if relation == "E"));
        assert!(matches!(order[3], PlanNode::IndexScan { relation, .. } if relation == "F"));
    }

    #[test]
    fn bound_scans_render_the_binding() {
        let node = PlanNode::IndexScan {
            relation: "E".into(),
            bound: Some((1, trial_core::ObjectId(5))),
            residual: Conditions::new().data_eq(Pos::L1, Pos::L3),
            order: Permutation::Spo,
            est: 3,
        };
        let label = node.label();
        assert!(label.contains("where 2=#5"), "got: {label}");
        assert!(label.contains("filter [rho(1)=rho(3)]"), "got: {label}");
        // An unbound scan in a non-canonical order surfaces the choice.
        let pos_scan = PlanNode::IndexScan {
            relation: "E".into(),
            bound: None,
            residual: Conditions::new(),
            order: Permutation::Pos,
            est: 7,
        };
        assert!(
            pos_scan.label().contains("order=pos"),
            "{}",
            pos_scan.label()
        );
        assert_eq!(pos_scan.ordering(), Some(Permutation::Pos));
        assert!(!pos_scan.ordered());
    }

    #[test]
    fn ordered_operators_report_their_metadata() {
        // Merge join: ordered inputs, fully pipelined, *unordered* output.
        let left = PlanNode::IndexScan {
            relation: "E".into(),
            bound: None,
            residual: Conditions::new(),
            order: Permutation::Pos,
            est: 7,
        };
        let join = PlanNode::MergeJoin {
            left: Box::new(left),
            right: Box::new(scan("E", 7)),
            output: output(Pos::L1, Pos::R3, Pos::L3),
            cond: Conditions::new().obj_eq(Pos::L2, Pos::R1),
            key: (Pos::L2, Pos::R1),
            est: 7,
        };
        assert!(join.pipelined(), "merge joins must not break the pipeline");
        assert_eq!(join.ordering(), None, "projection scrambles the output");
        assert!(join.parallelizable());
        let label = join.label();
        assert!(label.contains("MergeJoin"), "{label}");
        assert!(label.contains("on 2=1'"), "{label}");
        assert!(label.contains("[merge pos⋈spo]"), "{label}");
        assert!(label.contains("[pipelined]"), "{label}");
        // Sort: a breaker that imposes its order.
        let sort = PlanNode::Sort {
            input: Box::new(join.clone()),
            order: Permutation::Osp,
            est: 7,
        };
        assert_eq!(sort.ordering(), Some(Permutation::Osp));
        assert!(!sort.pipelined());
        assert!(sort.label().contains("[sort osp]"), "{}", sort.label());
        assert!(sort.label().contains("[breaker]"), "{}", sort.label());
        // TopK: a bounded breaker that imposes its order.
        let topk = PlanNode::TopK {
            input: Box::new(join),
            k: 5,
            order: Permutation::Pos,
            est: 5,
        };
        assert_eq!(topk.ordering(), Some(Permutation::Pos));
        assert!(!topk.pipelined());
        assert!(!topk.parallelizable());
        assert_eq!(topk.est(), 5);
        assert_eq!(topk.children().len(), 1);
        assert!(topk.label().contains("TopK 5"), "{}", topk.label());
        assert!(topk.label().contains("[topk pos]"), "{}", topk.label());
        // A union only claims an order its two sides share.
        let mixed = PlanNode::Union {
            left: Box::new(PlanNode::IndexScan {
                relation: "E".into(),
                bound: None,
                residual: Conditions::new(),
                order: Permutation::Pos,
                est: 7,
            }),
            right: Box::new(scan("F", 3)),
            est: 10,
        };
        assert_eq!(mixed.ordering(), None);
    }
}
