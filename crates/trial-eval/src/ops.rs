//! Shared physical operators: selections, joins, and the universal relation.
//!
//! Both engines are assembled from the primitives in this module; they differ
//! only in *which* primitive they pick for a given operator and in how they
//! iterate Kleene stars.

use crate::compile::{project, CompiledConditions};
use crate::engine::{EvalOptions, EvalStats};
use std::collections::HashMap;
use trial_core::{Error, ObjectId, OutputSpec, Pos, Result, Triple, TripleSet, Triplestore};

/// Filters a triple set by compiled (left-only) conditions.
pub fn select(
    input: &TripleSet,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.triples_scanned += input.len() as u64;
    let mut out = Vec::new();
    for t in input.iter() {
        if cond.check_single(store, t) {
            out.push(*t);
            stats.triples_emitted += 1;
        }
    }
    TripleSet::from_vec(out)
}

/// Nested-loop join: inspects every pair of triples, exactly as in the
/// paper's Procedure 1. Cost `O(|left|·|right|)`.
pub fn nested_loop_join(
    left: &TripleSet,
    right: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    let mut out = Vec::new();
    for l in left.iter() {
        for r in right.iter() {
            stats.pairs_considered += 1;
            if cond.check_pair(store, l, r) {
                out.push(project(l, r, output));
                stats.triples_emitted += 1;
            }
        }
    }
    TripleSet::from_vec(out)
}

/// Hash join keyed on the cross equalities of `θ`.
///
/// The right side is hashed on its key positions; each left triple probes the
/// table and the remaining conditions are checked per matching pair. When the
/// condition set has no cross equalities this degenerates to a nested-loop
/// join (there is no key to hash on).
pub fn hash_join(
    left: &TripleSet,
    right: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    let keys = cond.cross_equalities();
    if keys.is_empty() {
        return nested_loop_join(left, right, output, cond, store, stats);
    }
    stats.joins_executed += 1;
    // Build phase: index the right side by its key columns.
    let mut table: HashMap<Vec<ObjectId>, Vec<&Triple>> = HashMap::with_capacity(right.len());
    for r in right.iter() {
        stats.triples_scanned += 1;
        let key: Vec<ObjectId> = keys
            .iter()
            .map(|(_, rp)| r.0[rp.component_index()])
            .collect();
        table.entry(key).or_default().push(r);
    }
    // Probe phase.
    let mut out = Vec::new();
    for l in left.iter() {
        stats.triples_scanned += 1;
        let key: Vec<ObjectId> = keys
            .iter()
            .map(|(lp, _)| l.0[lp.component_index()])
            .collect();
        if let Some(matches) = table.get(&key) {
            for r in matches {
                stats.pairs_considered += 1;
                if cond.check_pair(store, l, r) {
                    out.push(project(l, r, output));
                    stats.triples_emitted += 1;
                }
            }
        }
    }
    TripleSet::from_vec(out)
}

/// Materialises the universal relation `U = adom³` over the store's active
/// domain, guarding against blow-up with `options.max_universe`.
pub fn universe(
    store: &Triplestore,
    options: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<TripleSet> {
    let adom = store.active_domain();
    let n = adom.len();
    let total = n.saturating_mul(n).saturating_mul(n);
    if total > options.max_universe {
        return Err(Error::LimitExceeded(format!(
            "universal relation would contain {total} triples (active domain of {n} objects); \
             the configured limit is {}",
            options.max_universe
        )));
    }
    let mut out = Vec::with_capacity(total);
    for &a in &adom {
        for &b in &adom {
            for &c in &adom {
                out.push(Triple::new(a, b, c));
            }
        }
    }
    stats.triples_emitted += total as u64;
    // Already sorted because adom is sorted and the loops are lexicographic,
    // but from_vec re-checks cheaply and keeps the invariant in one place.
    Ok(TripleSet::from_vec(out))
}

/// Joins `left ✶ right` picking the strategy by whether the condition set has
/// usable hash keys.
pub fn join_auto(
    left: &TripleSet,
    right: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    if cond.cross_equalities().is_empty() {
        nested_loop_join(left, right, output, cond, store, stats)
    } else {
        hash_join(left, right, output, cond, store, stats)
    }
}

/// Positions of a hash key restricted to one side, as component indices.
/// Exposed for the reachability procedures that build per-label indexes.
pub fn key_components(keys: &[(Pos, Pos)], left: bool) -> Vec<usize> {
    keys.iter()
        .map(|(l, r)| {
            if left {
                l.component_index()
            } else {
                r.component_index()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::{Conditions, TriplestoreBuilder, Value};

    fn store() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "p", "b");
        b.add_triple("E", "b", "p", "c");
        b.add_triple("E", "c", "q", "d");
        b.object_with_value("a", Value::int(1));
        b.object_with_value("c", Value::int(1));
        b.finish()
    }

    fn rel(store: &Triplestore) -> TripleSet {
        store.require_relation("E").unwrap().clone()
    }

    #[test]
    fn select_filters_by_constant() {
        let store = store();
        let e = rel(&store);
        let mut stats = EvalStats::new();
        let cond = CompiledConditions::compile(
            &Conditions::new().obj_eq_const(Pos::L2, "p"),
            &store,
        );
        let out = select(&e, &cond, &store, &mut stats);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.triples_scanned, 3);
        assert_eq!(stats.triples_emitted, 2);
    }

    #[test]
    fn nested_loop_and_hash_join_agree() {
        let store = store();
        let e = rel(&store);
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let cond = CompiledConditions::compile(
            &Conditions::new().obj_eq(Pos::L3, Pos::R1),
            &store,
        );
        let mut s1 = EvalStats::new();
        let mut s2 = EvalStats::new();
        let nl = nested_loop_join(&e, &e, &out_spec, &cond, &store, &mut s1);
        let hj = hash_join(&e, &e, &out_spec, &cond, &store, &mut s2);
        assert_eq!(nl, hj);
        // a→b→c and b→c→d compose.
        assert_eq!(
            store.display_triples(&nl),
            vec!["(a, p, c)".to_string(), "(b, p, d)".to_string()]
        );
        // The nested loop considered all 9 pairs, the hash join fewer.
        assert_eq!(s1.pairs_considered, 9);
        assert!(s2.pairs_considered < 9);
    }

    #[test]
    fn hash_join_without_keys_falls_back() {
        let store = store();
        let e = rel(&store);
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        // Only an inequality: no hash key available.
        let cond = CompiledConditions::compile(
            &Conditions::new().obj_neq(Pos::L1, Pos::R1),
            &store,
        );
        let mut s = EvalStats::new();
        let out = hash_join(&e, &e, &out_spec, &cond, &store, &mut s);
        assert_eq!(s.pairs_considered, 9);
        assert_eq!(out.len(), 6); // ordered pairs of distinct triples, all projections distinct
    }

    #[test]
    fn join_with_data_condition() {
        let store = store();
        let e = rel(&store);
        // Join triples whose endpoints carry the same data value:
        // ρ(1) = ρ(3') pairs (a,..) with (..,c) etc.
        let cond = CompiledConditions::compile(
            &Conditions::new().data_eq(Pos::L1, Pos::R3),
            &store,
        );
        let mut s = EvalStats::new();
        let out = nested_loop_join(
            &e,
            &e,
            &OutputSpec::new(Pos::L1, Pos::R2, Pos::R3),
            &cond,
            &store,
            &mut s,
        );
        // ρ(a)=1 matches ρ(c)=1: left triples starting at a, right triples ending at c.
        // Also ρ(c)=1 matches ρ(c)=1 and ρ(a)=1.
        assert!(out
            .iter()
            .any(|t| store.display_triple(t) == "(a, p, c)"));
    }

    #[test]
    fn universe_size_and_limit() {
        let store = store();
        let mut s = EvalStats::new();
        let u = universe(&store, &EvalOptions::default(), &mut s).unwrap();
        // Active domain: a, p, b, c, q, d = 6 objects → 216 triples.
        assert_eq!(u.len(), 216);
        let tight = EvalOptions {
            max_universe: 100,
            ..EvalOptions::default()
        };
        let err = universe(&store, &tight, &mut s).unwrap_err();
        assert!(matches!(err, Error::LimitExceeded(_)));
    }

    #[test]
    fn join_auto_picks_strategy() {
        let store = store();
        let e = rel(&store);
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let eq_cond = CompiledConditions::compile(
            &Conditions::new().obj_eq(Pos::L3, Pos::R1),
            &store,
        );
        let neq_cond = CompiledConditions::compile(
            &Conditions::new().obj_neq(Pos::L3, Pos::R1),
            &store,
        );
        let mut s = EvalStats::new();
        let a = join_auto(&e, &e, &out_spec, &eq_cond, &store, &mut s);
        let b = join_auto(&e, &e, &out_spec, &neq_cond, &store, &mut s);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 9 - 2); // complement of the equality matches, before dedup
    }

    #[test]
    fn key_components_extraction() {
        let keys = vec![(Pos::L3, Pos::R1), (Pos::L2, Pos::R2)];
        assert_eq!(key_components(&keys, true), vec![2, 1]);
        assert_eq!(key_components(&keys, false), vec![0, 1]);
    }
}
