//! Shared physical operators: selections, joins, and the universal relation.
//!
//! Engines are assembled from the primitives in this module; they differ only
//! in *which* primitive the planner picks for a given operator and in how
//! they iterate Kleene stars. Hash joins are split into an explicit build
//! phase ([`JoinTable::build`]) and probe phase ([`hash_join_probe`]) so that
//! fixpoint iterations can hash their invariant side **once** and probe it
//! every round.

use crate::cancel::CancelToken;
use crate::compile::{project, CompiledConditions};
use crate::engine::{EvalOptions, EvalStats};
use crate::parallel;
use std::collections::HashMap;
use trial_core::{
    Error, ObjectId, OutputSpec, Pos, RelationIndex, Result, Triple, TripleSet, Triplestore,
};

/// The selection kernel over one morsel: filters `input` into `out`.
pub(crate) fn select_slice(
    input: &[Triple],
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
    out: &mut Vec<Triple>,
) {
    stats.triples_scanned += input.len() as u64;
    for t in input {
        if cond.check_single(store, t) {
            out.push(*t);
            stats.triples_emitted += 1;
        }
    }
}

/// Filters a triple set by compiled (left-only) conditions.
///
/// Filtering preserves the canonical order, so the result is assembled with
/// the zero-copy [`TripleSet::from_sorted_vec`] fast path.
pub fn select(
    input: &TripleSet,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    let mut out = Vec::with_capacity(input.len());
    select_slice(input.as_slice(), cond, store, stats, &mut out);
    TripleSet::from_sorted_vec(out)
}

/// Morsel-parallel [`select`]: carves `input` into one morsel per worker and
/// filters them concurrently. Selection preserves order morsel-by-morsel and
/// the morsels are concatenated in input order, so the output is
/// byte-identical to the sequential [`select`].
pub fn select_parallel(
    input: &TripleSet,
    cond: &CompiledConditions,
    store: &Triplestore,
    threads: usize,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> TripleSet {
    let tasks: Vec<_> = parallel::chunk(input.as_slice(), threads)
        .into_iter()
        .map(|morsel| {
            move |stats: &mut EvalStats| {
                let mut out = Vec::with_capacity(morsel.len());
                select_slice(morsel, cond, store, stats, &mut out);
                out
            }
        })
        .collect();
    let parts = parallel::run_tasks(threads, tasks, cancel, stats);
    TripleSet::from_sorted_vec(parts.concat())
}

/// The nested-loop kernel over one morsel of the left side.
pub(crate) fn nested_loop_join_slice(
    left: &[Triple],
    right: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
    out: &mut Vec<Triple>,
) {
    for l in left {
        for r in right.iter() {
            stats.pairs_considered += 1;
            if cond.check_pair(store, l, r) {
                out.push(project(l, r, output));
                stats.triples_emitted += 1;
            }
        }
    }
}

/// Nested-loop join: inspects every pair of triples, exactly as in the
/// paper's Procedure 1. Cost `O(|left|·|right|)`.
pub fn nested_loop_join(
    left: &TripleSet,
    right: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    let mut out = Vec::with_capacity(left.len().max(right.len()));
    nested_loop_join_slice(left.as_slice(), right, output, cond, store, stats, &mut out);
    TripleSet::from_vec(out)
}

/// Morsel-parallel [`nested_loop_join`]: partitions the **left** side; every
/// worker inspects its morsel against the whole right side. Same quadratic
/// pair count as the sequential join, divided across workers.
#[allow(clippy::too_many_arguments)]
pub fn nested_loop_join_parallel(
    left: &TripleSet,
    right: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    threads: usize,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    let tasks: Vec<_> = parallel::chunk(left.as_slice(), threads)
        .into_iter()
        .map(|morsel| {
            move |stats: &mut EvalStats| {
                let mut out = Vec::with_capacity(morsel.len());
                nested_loop_join_slice(morsel, right, output, cond, store, stats, &mut out);
                out
            }
        })
        .collect();
    let parts = parallel::run_tasks(threads, tasks, cancel, stats);
    TripleSet::from_vec(parts.concat())
}

/// A hash-join key: up to three object ids, inlined so single-column keys
/// (the overwhelmingly common case — every reachability join) cost no
/// allocation per probe. Keys wider than three columns fall back to a `Vec`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinKey {
    /// One key column.
    One(ObjectId),
    /// Two key columns.
    Two(ObjectId, ObjectId),
    /// Three key columns.
    Three([ObjectId; 3]),
    /// More than three key columns (degenerate: conditions can repeat).
    Wide(Vec<ObjectId>),
}

#[inline]
fn key_of(t: &Triple, components: &[usize]) -> JoinKey {
    match components {
        [a] => JoinKey::One(t.0[*a]),
        [a, b] => JoinKey::Two(t.0[*a], t.0[*b]),
        [a, b, c] => JoinKey::Three([t.0[*a], t.0[*b], t.0[*c]]),
        many => JoinKey::Wide(many.iter().map(|&i| t.0[i]).collect()),
    }
}

/// The build side of a hash join: the right input hashed on the right-hand
/// components of the cross equalities.
#[derive(Debug)]
pub struct JoinTable {
    left_components: Vec<usize>,
    table: HashMap<JoinKey, Vec<Triple>>,
}

impl JoinTable {
    /// Hashes `right` on the key columns of `keys` (the cross equalities
    /// `(left position, right position)`).
    ///
    /// # Panics
    /// Panics if `keys` is empty — key-free joins have no hashable column and
    /// must use [`nested_loop_join`].
    pub fn build(right: &TripleSet, keys: &[(Pos, Pos)], stats: &mut EvalStats) -> JoinTable {
        assert!(!keys.is_empty(), "hash join requires at least one key");
        stats.hash_tables_built += 1;
        let right_components = key_components(keys, false);
        let left_components = key_components(keys, true);
        let mut table: HashMap<JoinKey, Vec<Triple>> = HashMap::with_capacity(right.len());
        for r in right.iter() {
            stats.triples_scanned += 1;
            table
                .entry(key_of(r, &right_components))
                .or_default()
                .push(*r);
        }
        JoinTable {
            left_components,
            table,
        }
    }

    /// Morsel-parallel [`JoinTable::build`]: carves `right` into one morsel
    /// per worker, hashes each into a private shard, then merges the shards
    /// **in morsel order** on the coordinating thread.
    ///
    /// Merging in morsel order makes every per-key bucket list the exact
    /// sub-sequence of `right`'s iteration order that the sequential build
    /// produces, so probe results (and therefore streamed row order under a
    /// limit) are identical whichever build ran.
    ///
    /// # Panics
    /// Panics if `keys` is empty, like [`JoinTable::build`].
    pub fn build_parallel(
        right: &TripleSet,
        keys: &[(Pos, Pos)],
        threads: usize,
        cancel: &CancelToken,
        stats: &mut EvalStats,
    ) -> JoinTable {
        assert!(!keys.is_empty(), "hash join requires at least one key");
        stats.hash_tables_built += 1;
        let right_components = key_components(keys, false);
        let left_components = key_components(keys, true);
        let components = &right_components;
        let tasks: Vec<_> = parallel::chunk(right.as_slice(), threads)
            .into_iter()
            .map(|morsel| {
                move |stats: &mut EvalStats| {
                    let mut shard: HashMap<JoinKey, Vec<Triple>> =
                        HashMap::with_capacity(morsel.len());
                    for r in morsel {
                        stats.triples_scanned += 1;
                        shard.entry(key_of(r, components)).or_default().push(*r);
                    }
                    shard
                }
            })
            .collect();
        let shards = parallel::run_tasks(threads, tasks, cancel, stats);
        let mut table: HashMap<JoinKey, Vec<Triple>> = HashMap::with_capacity(right.len());
        for shard in shards {
            for (key, mut bucket) in shard {
                match table.entry(key) {
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(bucket);
                    }
                    std::collections::hash_map::Entry::Occupied(mut slot) => {
                        slot.get_mut().append(&mut bucket);
                    }
                }
            }
        }
        JoinTable {
            left_components,
            table,
        }
    }

    /// Number of distinct keys in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` if the build side was empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// All build-side triples whose key columns match `left`'s — one hash
    /// lookup, borrowed result. This is the probe primitive shared by the
    /// materialised [`hash_join_probe`] and the streaming
    /// [`crate::cursor::Cursor`] pipeline.
    pub fn probe(&self, left: &Triple) -> &[Triple] {
        self.table
            .get(&key_of(left, &self.left_components))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// The probe kernel of a hash join over one morsel of the probe side.
pub(crate) fn hash_join_probe_slice(
    left: &[Triple],
    table: &JoinTable,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
    out: &mut Vec<Triple>,
) {
    for l in left {
        stats.triples_scanned += 1;
        for r in table.probe(l) {
            stats.pairs_considered += 1;
            if cond.check_pair(store, l, r) {
                out.push(project(l, r, output));
                stats.triples_emitted += 1;
            }
        }
    }
}

/// Probe phase of a hash join: streams `left` against a pre-built
/// [`JoinTable`], checking the full condition set per matching pair.
pub fn hash_join_probe(
    left: &TripleSet,
    table: &JoinTable,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    let mut out = Vec::with_capacity(left.len());
    hash_join_probe_slice(left.as_slice(), table, output, cond, store, stats, &mut out);
    TripleSet::from_vec(out)
}

/// Morsel-parallel [`hash_join_probe`]: each worker runs the probe kernel
/// over one contiguous morsel of the probe side against the shared read-only
/// [`JoinTable`]; morsel outputs are concatenated in input order, so the
/// pre-deduplication row sequence matches the sequential probe exactly.
#[allow(clippy::too_many_arguments)]
pub fn hash_join_probe_parallel(
    left: &TripleSet,
    table: &JoinTable,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    threads: usize,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    let tasks: Vec<_> = parallel::chunk(left.as_slice(), threads)
        .into_iter()
        .map(|morsel| {
            move |stats: &mut EvalStats| {
                let mut out = Vec::with_capacity(morsel.len());
                hash_join_probe_slice(morsel, table, output, cond, store, stats, &mut out);
                out
            }
        })
        .collect();
    let parts = parallel::run_tasks(threads, tasks, cancel, stats);
    TripleSet::from_vec(parts.concat())
}

/// Hash join keyed on the cross equalities of `θ` (build + probe in one
/// call). When the condition set has no cross equalities this degenerates to
/// a nested-loop join (there is no key to hash on).
pub fn hash_join(
    left: &TripleSet,
    right: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    let keys = cond.cross_equalities();
    if keys.is_empty() {
        return nested_loop_join(left, right, output, cond, store, stats);
    }
    let table = JoinTable::build(right, &keys, stats);
    hash_join_probe(left, &table, output, cond, store, stats)
}

/// The index-probe kernel over one morsel of the outer side.
#[allow(clippy::too_many_arguments)]
pub(crate) fn index_nested_loop_join_slice(
    outer: &[Triple],
    base: &TripleSet,
    index: &RelationIndex,
    probe: (Pos, Pos),
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
    out: &mut Vec<Triple>,
) {
    let (outer_pos, inner_pos) = probe;
    debug_assert!(outer_pos.is_left() && inner_pos.is_right());
    let inner_component = inner_pos.component_index();
    for l in outer {
        stats.triples_scanned += 1;
        let value = l.0[outer_pos.component_index()];
        for r in index.matching(base, inner_component, value) {
            stats.pairs_considered += 1;
            if cond.check_pair(store, l, r) {
                out.push(project(l, r, output));
                stats.triples_emitted += 1;
            }
        }
    }
}

/// Index nested-loop join: probes a base relation's permutation index with
/// each outer triple instead of building a hash table.
///
/// `probe` is the cross equality used for the index lookup — the outer
/// triple's component at `probe.0` must equal the relation's component at
/// `probe.1`. Remaining conditions (including further keys) are checked per
/// candidate pair. The outer input plays the *left* role of the join.
#[allow(clippy::too_many_arguments)]
pub fn index_nested_loop_join(
    outer: &TripleSet,
    base: &TripleSet,
    index: &RelationIndex,
    probe: (Pos, Pos),
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    let mut out = Vec::with_capacity(outer.len());
    index_nested_loop_join_slice(
        outer.as_slice(),
        base,
        index,
        probe,
        output,
        cond,
        store,
        stats,
        &mut out,
    );
    TripleSet::from_vec(out)
}

/// Morsel-parallel [`index_nested_loop_join`]: partitions the outer side;
/// workers probe the shared permutation index concurrently (the probed
/// permutation is forced into existence first, so workers never contend on
/// the lazy `OnceLock` initialisation).
#[allow(clippy::too_many_arguments)]
pub fn index_nested_loop_join_parallel(
    outer: &TripleSet,
    base: &TripleSet,
    index: &RelationIndex,
    probe: (Pos, Pos),
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    threads: usize,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    // Materialise the probed permutation on the coordinating thread so every
    // worker starts with a cache hit.
    let inner_component = probe.1.component_index();
    index.permutation(base, trial_core::Permutation::keyed_on(inner_component));
    let tasks: Vec<_> = parallel::chunk(outer.as_slice(), threads)
        .into_iter()
        .map(|morsel| {
            move |stats: &mut EvalStats| {
                let mut out = Vec::with_capacity(morsel.len());
                index_nested_loop_join_slice(
                    morsel, base, index, probe, output, cond, store, stats, &mut out,
                );
                out
            }
        })
        .collect();
    let parts = parallel::run_tasks(threads, tasks, cancel, stats);
    TripleSet::from_vec(parts.concat())
}

/// The merge-join kernel over one pair of key-sorted runs: both slices are
/// sorted by (at least) their key component, so the join is one synchronized
/// forward pass expanding equal-key run pairs into cross products. No hash
/// table, no build phase — the set-at-a-time twin of
/// [`crate::cursor`]'s `MergeJoinCursor`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_join_slice(
    left: &[Triple],
    right: &[Triple],
    lc: usize,
    rc: usize,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
    out: &mut Vec<Triple>,
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let lk = left[i].0[lc];
        let rk = right[j].0[rc];
        if lk < rk {
            stats.triples_scanned += 1;
            i += 1;
        } else if rk < lk {
            stats.triples_scanned += 1;
            j += 1;
        } else {
            let i_end = i + left[i..].partition_point(|t| t.0[lc] == lk);
            let j_end = j + right[j..].partition_point(|t| t.0[rc] == rk);
            stats.triples_scanned += (i_end - i + j_end - j) as u64;
            for l in &left[i..i_end] {
                for r in &right[j..j_end] {
                    stats.pairs_considered += 1;
                    if cond.check_pair(store, l, r) {
                        out.push(project(l, r, output));
                        stats.triples_emitted += 1;
                    }
                }
            }
            i = i_end;
            j = j_end;
        }
    }
}

/// Sort-merge join over two key-sorted runs (see [`merge_join_slice`]).
#[allow(clippy::too_many_arguments)]
pub fn merge_join(
    left: &[Triple],
    right: &[Triple],
    lc: usize,
    rc: usize,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    let mut out = Vec::with_capacity(left.len().min(right.len()));
    merge_join_slice(left, right, lc, rc, output, cond, store, stats, &mut out);
    TripleSet::from_vec(out)
}

/// Carves a key-sorted run into at most `parts` contiguous morsels whose
/// boundaries fall on key-run boundaries: every run of equal `component`
/// values lands wholly inside one morsel. This is the alignment step of the
/// morsel-parallel merge join — near-equal splits (the shape
/// `RangeCursor::split` / `partition_cursors` produce) are snapped forward
/// to the end of the key run they cut through, so no worker ever sees half
/// a cross product. Morsels are never empty; fewer than `parts` come back
/// when runs are wide.
pub(crate) fn align_key_runs(
    sorted: &[Triple],
    component: usize,
    parts: usize,
) -> Vec<(usize, usize)> {
    let parts = parts.max(1).min(sorted.len());
    if parts == 0 {
        return Vec::new();
    }
    let target = sorted.len().div_ceil(parts);
    let mut bounds = Vec::with_capacity(parts);
    let mut start = 0;
    while start < sorted.len() {
        let mut end = (start + target).min(sorted.len());
        // Snap forward past the key run the naive boundary would cut.
        if end < sorted.len() {
            let key = sorted[end - 1].0[component];
            end += sorted[end..].partition_point(|t| t.0[component] == key);
        }
        bounds.push((start, end));
        start = end;
    }
    bounds
}

/// Morsel-parallel [`merge_join`]: the left run is carved into key-aligned
/// morsels ([`align_key_runs`]); each worker binary-searches the matching
/// right sub-run for its key range and merges the pair independently.
/// Morsel outputs concatenate in left order, so the pre-deduplication row
/// sequence is identical to the sequential merge.
#[allow(clippy::too_many_arguments)]
pub fn merge_join_parallel(
    left: &[Triple],
    right: &[Triple],
    lc: usize,
    rc: usize,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    threads: usize,
    cancel: &CancelToken,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    let tasks: Vec<_> = align_key_runs(left, lc, threads)
        .into_iter()
        .map(|(start, end)| {
            let morsel = &left[start..end];
            move |stats: &mut EvalStats| {
                // The aligned right sub-run covering this morsel's key range.
                let lo = morsel[0].0[lc];
                let hi = morsel[morsel.len() - 1].0[lc];
                let r_start = right.partition_point(|t| t.0[rc] < lo);
                let r_end = r_start + right[r_start..].partition_point(|t| t.0[rc] <= hi);
                let mut out = Vec::with_capacity(morsel.len());
                merge_join_slice(
                    morsel,
                    &right[r_start..r_end],
                    lc,
                    rc,
                    output,
                    cond,
                    store,
                    stats,
                    &mut out,
                );
                out
            }
        })
        .collect();
    let parts = parallel::run_tasks(threads, tasks, cancel, stats);
    TripleSet::from_vec(parts.concat())
}

/// The store's active domain, checked against `options.max_universe`: the
/// guard shared by the materialising [`universe`] and the streaming
/// universe/complement cursors (which enumerate `adom³` lazily but must
/// still refuse queries whose full drain would exceed the cap).
pub fn universe_domain(store: &Triplestore, options: &EvalOptions) -> Result<Vec<ObjectId>> {
    let adom = store.active_domain();
    let n = adom.len();
    let total = n.saturating_mul(n).saturating_mul(n);
    if total > options.max_universe {
        return Err(Error::LimitExceeded(format!(
            "universal relation would contain {total} triples (active domain of {n} objects); \
             the configured limit is {}",
            options.max_universe
        )));
    }
    Ok(adom)
}

/// Materialises the universal relation `U = adom³` over the store's active
/// domain, guarding against blow-up with `options.max_universe`.
pub fn universe(
    store: &Triplestore,
    options: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<TripleSet> {
    let adom = universe_domain(store, options)?;
    let n = adom.len();
    let total = n.saturating_mul(n).saturating_mul(n);
    let mut out = Vec::with_capacity(total);
    for &a in &adom {
        for &b in &adom {
            for &c in &adom {
                out.push(Triple::new(a, b, c));
            }
        }
    }
    stats.triples_emitted += total as u64;
    // adom is sorted and deduplicated and the loops are lexicographic, so the
    // output is strictly increasing: take the zero-copy path.
    Ok(TripleSet::from_sorted_vec(out))
}

/// Joins `left ✶ right` picking the strategy by whether the condition set has
/// usable hash keys.
pub fn join_auto(
    left: &TripleSet,
    right: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    if cond.cross_equalities().is_empty() {
        nested_loop_join(left, right, output, cond, store, stats)
    } else {
        hash_join(left, right, output, cond, store, stats)
    }
}

/// Positions of a hash key restricted to one side, as component indices.
pub fn key_components(keys: &[(Pos, Pos)], left: bool) -> Vec<usize> {
    keys.iter()
        .map(|(l, r)| {
            if left {
                l.component_index()
            } else {
                r.component_index()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::{Conditions, TriplestoreBuilder, Value};

    fn store() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "p", "b");
        b.add_triple("E", "b", "p", "c");
        b.add_triple("E", "c", "q", "d");
        b.object_with_value("a", Value::int(1));
        b.object_with_value("c", Value::int(1));
        b.finish()
    }

    fn rel(store: &Triplestore) -> TripleSet {
        store.require_relation("E").unwrap().clone()
    }

    #[test]
    fn select_filters_by_constant() {
        let store = store();
        let e = rel(&store);
        let mut stats = EvalStats::new();
        let cond =
            CompiledConditions::compile(&Conditions::new().obj_eq_const(Pos::L2, "p"), &store);
        let out = select(&e, &cond, &store, &mut stats);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.triples_scanned, 3);
        assert_eq!(stats.triples_emitted, 2);
    }

    #[test]
    fn nested_loop_and_hash_join_agree() {
        let store = store();
        let e = rel(&store);
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let cond = CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        let mut s1 = EvalStats::new();
        let mut s2 = EvalStats::new();
        let nl = nested_loop_join(&e, &e, &out_spec, &cond, &store, &mut s1);
        let hj = hash_join(&e, &e, &out_spec, &cond, &store, &mut s2);
        assert_eq!(nl, hj);
        // a→b→c and b→c→d compose.
        assert_eq!(
            store.display_triples(&nl),
            vec!["(a, p, c)".to_string(), "(b, p, d)".to_string()]
        );
        // The nested loop considered all 9 pairs, the hash join fewer.
        assert_eq!(s1.pairs_considered, 9);
        assert!(s2.pairs_considered < 9);
    }

    #[test]
    fn index_join_agrees_with_hash_join() {
        let store = store();
        let (base, index) = store.relation_with_index("E").unwrap();
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let cond = CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        let mut s1 = EvalStats::new();
        let mut s2 = EvalStats::new();
        let hj = hash_join(base, base, &out_spec, &cond, &store, &mut s1);
        let inlj = index_nested_loop_join(
            base,
            base,
            index,
            (Pos::L3, Pos::R1),
            &out_spec,
            &cond,
            &store,
            &mut s2,
        );
        assert_eq!(hj, inlj);
        assert_eq!(s1.pairs_considered, s2.pairs_considered);
    }

    #[test]
    fn prebuilt_tables_are_reusable() {
        let store = store();
        let e = rel(&store);
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let cond = CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        let keys = cond.cross_equalities();
        let mut stats = EvalStats::new();
        let table = JoinTable::build(&e, &keys, &mut stats);
        assert!(!table.is_empty());
        assert_eq!(table.len(), 3); // distinct first components a, b, c
        let first = hash_join_probe(&e, &table, &out_spec, &cond, &store, &mut stats);
        let second = hash_join_probe(&first, &table, &out_spec, &cond, &store, &mut stats);
        assert_eq!(first.len(), 2); // a→c, b→d
        assert_eq!(second.len(), 1); // a→d
                                     // Build scanned the 3 right triples exactly once.
        assert_eq!(stats.triples_scanned, 3 + 3 + 2);
    }

    #[test]
    fn single_column_keys_avoid_wide_variants() {
        let t = Triple::new(ObjectId(1), ObjectId(2), ObjectId(3));
        assert_eq!(key_of(&t, &[0]), JoinKey::One(ObjectId(1)));
        assert_eq!(key_of(&t, &[2, 0]), JoinKey::Two(ObjectId(3), ObjectId(1)));
        assert_eq!(
            key_of(&t, &[0, 1, 2]),
            JoinKey::Three([ObjectId(1), ObjectId(2), ObjectId(3)])
        );
        assert_eq!(
            key_of(&t, &[0, 0, 1, 1]),
            JoinKey::Wide(vec![ObjectId(1), ObjectId(1), ObjectId(2), ObjectId(2)])
        );
    }

    #[test]
    fn hash_join_without_keys_falls_back() {
        let store = store();
        let e = rel(&store);
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        // Only an inequality: no hash key available.
        let cond =
            CompiledConditions::compile(&Conditions::new().obj_neq(Pos::L1, Pos::R1), &store);
        let mut s = EvalStats::new();
        let out = hash_join(&e, &e, &out_spec, &cond, &store, &mut s);
        assert_eq!(s.pairs_considered, 9);
        assert_eq!(out.len(), 6); // ordered pairs of distinct triples, all projections distinct
    }

    #[test]
    fn join_with_data_condition() {
        let store = store();
        let e = rel(&store);
        // Join triples whose endpoints carry the same data value:
        // ρ(1) = ρ(3') pairs (a,..) with (..,c) etc.
        let cond =
            CompiledConditions::compile(&Conditions::new().data_eq(Pos::L1, Pos::R3), &store);
        let mut s = EvalStats::new();
        let out = nested_loop_join(
            &e,
            &e,
            &OutputSpec::new(Pos::L1, Pos::R2, Pos::R3),
            &cond,
            &store,
            &mut s,
        );
        // ρ(a)=1 matches ρ(c)=1: left triples starting at a, right triples ending at c.
        // Also ρ(c)=1 matches ρ(c)=1 and ρ(a)=1.
        assert!(out.iter().any(|t| store.display_triple(t) == "(a, p, c)"));
    }

    #[test]
    fn universe_size_and_limit() {
        let store = store();
        let mut s = EvalStats::new();
        let u = universe(&store, &EvalOptions::default(), &mut s).unwrap();
        // Active domain: a, p, b, c, q, d = 6 objects → 216 triples.
        assert_eq!(u.len(), 216);
        let tight = EvalOptions {
            max_universe: 100,
            ..EvalOptions::default()
        };
        let err = universe(&store, &tight, &mut s).unwrap_err();
        assert!(matches!(err, Error::LimitExceeded(_)));
    }

    #[test]
    fn join_auto_picks_strategy() {
        let store = store();
        let e = rel(&store);
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let eq_cond =
            CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        let neq_cond =
            CompiledConditions::compile(&Conditions::new().obj_neq(Pos::L3, Pos::R1), &store);
        let mut s = EvalStats::new();
        let a = join_auto(&e, &e, &out_spec, &eq_cond, &store, &mut s);
        let b = join_auto(&e, &e, &out_spec, &neq_cond, &store, &mut s);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 9 - 2); // complement of the equality matches, before dedup
    }

    #[test]
    fn key_components_extraction() {
        let keys = vec![(Pos::L3, Pos::R1), (Pos::L2, Pos::R2)];
        assert_eq!(key_components(&keys, true), vec![2, 1]);
        assert_eq!(key_components(&keys, false), vec![0, 1]);
    }

    #[test]
    fn parallel_build_matches_sequential_build_bucket_for_bucket() {
        let store = store();
        let e = rel(&store);
        let cond = CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        let keys = cond.cross_equalities();
        for threads in [1usize, 2, 4, 7] {
            let mut s1 = EvalStats::new();
            let mut s2 = EvalStats::new();
            let seq = JoinTable::build(&e, &keys, &mut s1);
            let par = JoinTable::build_parallel(&e, &keys, threads, &CancelToken::none(), &mut s2);
            assert_eq!(seq.len(), par.len());
            // Every probe answers with the same bucket in the same order.
            for t in e.iter() {
                assert_eq!(seq.probe(t), par.probe(t), "bucket diverges at {t:?}");
            }
            // The parallel build scanned each triple exactly once, like the
            // sequential one.
            assert_eq!(s1.triples_scanned, s2.triples_scanned);
        }
    }

    #[test]
    fn parallel_operators_agree_with_sequential_ones() {
        let store = store();
        let e = rel(&store);
        let (base, index) = store.relation_with_index("E").unwrap();
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let eq = CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        let neq = CompiledConditions::compile(&Conditions::new().obj_neq(Pos::L1, Pos::R1), &store);
        let sel =
            CompiledConditions::compile(&Conditions::new().obj_eq_const(Pos::L2, "p"), &store);
        for threads in [2usize, 3, 8] {
            let mut seq = EvalStats::new();
            let mut par = EvalStats::new();
            // Selection.
            assert_eq!(
                select(&e, &sel, &store, &mut seq),
                select_parallel(&e, &sel, &store, threads, &CancelToken::none(), &mut par)
            );
            // Hash probe (the shared table is built outside both arms).
            let keys = eq.cross_equalities();
            let table = JoinTable::build(&e, &keys, &mut EvalStats::new());
            assert_eq!(
                hash_join_probe(&e, &table, &out_spec, &eq, &store, &mut seq),
                hash_join_probe_parallel(
                    &e,
                    &table,
                    &out_spec,
                    &eq,
                    &store,
                    threads,
                    &CancelToken::none(),
                    &mut par
                )
            );
            // Index nested-loop join.
            assert_eq!(
                index_nested_loop_join(
                    base,
                    base,
                    index,
                    (Pos::L3, Pos::R1),
                    &out_spec,
                    &eq,
                    &store,
                    &mut seq
                ),
                index_nested_loop_join_parallel(
                    base,
                    base,
                    index,
                    (Pos::L3, Pos::R1),
                    &out_spec,
                    &eq,
                    &store,
                    threads,
                    &CancelToken::none(),
                    &mut par
                )
            );
            // Plain nested loop (no hashable key).
            assert_eq!(
                nested_loop_join(&e, &e, &out_spec, &neq, &store, &mut seq),
                nested_loop_join_parallel(
                    &e,
                    &e,
                    &out_spec,
                    &neq,
                    &store,
                    threads,
                    &CancelToken::none(),
                    &mut par
                )
            );
            // Work counters are exact sums: identical to the sequential run,
            // except for the morsel count.
            assert_eq!(seq.pairs_considered, par.pairs_considered);
            assert_eq!(seq.triples_scanned, par.triples_scanned);
            assert_eq!(seq.triples_emitted, par.triples_emitted);
            assert_eq!(seq.joins_executed, par.joins_executed);
            assert_eq!(seq.parallel_morsels, 0);
            assert!(par.parallel_morsels > 0, "parallel paths must be exercised");
        }
    }
}
