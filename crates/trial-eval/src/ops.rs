//! Shared physical operators: selections, joins, and the universal relation.
//!
//! Engines are assembled from the primitives in this module; they differ only
//! in *which* primitive the planner picks for a given operator and in how
//! they iterate Kleene stars. Hash joins are split into an explicit build
//! phase ([`JoinTable::build`]) and probe phase ([`hash_join_probe`]) so that
//! fixpoint iterations can hash their invariant side **once** and probe it
//! every round.

use crate::compile::{project, CompiledConditions};
use crate::engine::{EvalOptions, EvalStats};
use std::collections::HashMap;
use trial_core::{
    Error, ObjectId, OutputSpec, Pos, RelationIndex, Result, Triple, TripleSet, Triplestore,
};

/// Filters a triple set by compiled (left-only) conditions.
///
/// Filtering preserves the canonical order, so the result is assembled with
/// the zero-copy [`TripleSet::from_sorted_vec`] fast path.
pub fn select(
    input: &TripleSet,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.triples_scanned += input.len() as u64;
    let mut out = Vec::with_capacity(input.len());
    for t in input.iter() {
        if cond.check_single(store, t) {
            out.push(*t);
            stats.triples_emitted += 1;
        }
    }
    TripleSet::from_sorted_vec(out)
}

/// Nested-loop join: inspects every pair of triples, exactly as in the
/// paper's Procedure 1. Cost `O(|left|·|right|)`.
pub fn nested_loop_join(
    left: &TripleSet,
    right: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    let mut out = Vec::with_capacity(left.len().max(right.len()));
    for l in left.iter() {
        for r in right.iter() {
            stats.pairs_considered += 1;
            if cond.check_pair(store, l, r) {
                out.push(project(l, r, output));
                stats.triples_emitted += 1;
            }
        }
    }
    TripleSet::from_vec(out)
}

/// A hash-join key: up to three object ids, inlined so single-column keys
/// (the overwhelmingly common case — every reachability join) cost no
/// allocation per probe. Keys wider than three columns fall back to a `Vec`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinKey {
    /// One key column.
    One(ObjectId),
    /// Two key columns.
    Two(ObjectId, ObjectId),
    /// Three key columns.
    Three([ObjectId; 3]),
    /// More than three key columns (degenerate: conditions can repeat).
    Wide(Vec<ObjectId>),
}

#[inline]
fn key_of(t: &Triple, components: &[usize]) -> JoinKey {
    match components {
        [a] => JoinKey::One(t.0[*a]),
        [a, b] => JoinKey::Two(t.0[*a], t.0[*b]),
        [a, b, c] => JoinKey::Three([t.0[*a], t.0[*b], t.0[*c]]),
        many => JoinKey::Wide(many.iter().map(|&i| t.0[i]).collect()),
    }
}

/// The build side of a hash join: the right input hashed on the right-hand
/// components of the cross equalities.
#[derive(Debug)]
pub struct JoinTable {
    left_components: Vec<usize>,
    table: HashMap<JoinKey, Vec<Triple>>,
}

impl JoinTable {
    /// Hashes `right` on the key columns of `keys` (the cross equalities
    /// `(left position, right position)`).
    ///
    /// # Panics
    /// Panics if `keys` is empty — key-free joins have no hashable column and
    /// must use [`nested_loop_join`].
    pub fn build(right: &TripleSet, keys: &[(Pos, Pos)], stats: &mut EvalStats) -> JoinTable {
        assert!(!keys.is_empty(), "hash join requires at least one key");
        let right_components = key_components(keys, false);
        let left_components = key_components(keys, true);
        let mut table: HashMap<JoinKey, Vec<Triple>> = HashMap::with_capacity(right.len());
        for r in right.iter() {
            stats.triples_scanned += 1;
            table
                .entry(key_of(r, &right_components))
                .or_default()
                .push(*r);
        }
        JoinTable {
            left_components,
            table,
        }
    }

    /// Number of distinct keys in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` if the build side was empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// All build-side triples whose key columns match `left`'s — one hash
    /// lookup, borrowed result. This is the probe primitive shared by the
    /// materialised [`hash_join_probe`] and the streaming
    /// [`crate::cursor::Cursor`] pipeline.
    pub fn probe(&self, left: &Triple) -> &[Triple] {
        self.table
            .get(&key_of(left, &self.left_components))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Probe phase of a hash join: streams `left` against a pre-built
/// [`JoinTable`], checking the full condition set per matching pair.
pub fn hash_join_probe(
    left: &TripleSet,
    table: &JoinTable,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    let mut out = Vec::with_capacity(left.len());
    for l in left.iter() {
        stats.triples_scanned += 1;
        for r in table.probe(l) {
            stats.pairs_considered += 1;
            if cond.check_pair(store, l, r) {
                out.push(project(l, r, output));
                stats.triples_emitted += 1;
            }
        }
    }
    TripleSet::from_vec(out)
}

/// Hash join keyed on the cross equalities of `θ` (build + probe in one
/// call). When the condition set has no cross equalities this degenerates to
/// a nested-loop join (there is no key to hash on).
pub fn hash_join(
    left: &TripleSet,
    right: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    let keys = cond.cross_equalities();
    if keys.is_empty() {
        return nested_loop_join(left, right, output, cond, store, stats);
    }
    let table = JoinTable::build(right, &keys, stats);
    hash_join_probe(left, &table, output, cond, store, stats)
}

/// Index nested-loop join: probes a base relation's permutation index with
/// each outer triple instead of building a hash table.
///
/// `probe` is the cross equality used for the index lookup — the outer
/// triple's component at `probe.0` must equal the relation's component at
/// `probe.1`. Remaining conditions (including further keys) are checked per
/// candidate pair. The outer input plays the *left* role of the join.
#[allow(clippy::too_many_arguments)]
pub fn index_nested_loop_join(
    outer: &TripleSet,
    base: &TripleSet,
    index: &RelationIndex,
    probe: (Pos, Pos),
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    stats.joins_executed += 1;
    let (outer_pos, inner_pos) = probe;
    debug_assert!(outer_pos.is_left() && inner_pos.is_right());
    let inner_component = inner_pos.component_index();
    let mut out = Vec::with_capacity(outer.len());
    for l in outer.iter() {
        stats.triples_scanned += 1;
        let value = l.0[outer_pos.component_index()];
        for r in index.matching(base, inner_component, value) {
            stats.pairs_considered += 1;
            if cond.check_pair(store, l, r) {
                out.push(project(l, r, output));
                stats.triples_emitted += 1;
            }
        }
    }
    TripleSet::from_vec(out)
}

/// The store's active domain, checked against `options.max_universe`: the
/// guard shared by the materialising [`universe`] and the streaming
/// universe/complement cursors (which enumerate `adom³` lazily but must
/// still refuse queries whose full drain would exceed the cap).
pub fn universe_domain(store: &Triplestore, options: &EvalOptions) -> Result<Vec<ObjectId>> {
    let adom = store.active_domain();
    let n = adom.len();
    let total = n.saturating_mul(n).saturating_mul(n);
    if total > options.max_universe {
        return Err(Error::LimitExceeded(format!(
            "universal relation would contain {total} triples (active domain of {n} objects); \
             the configured limit is {}",
            options.max_universe
        )));
    }
    Ok(adom)
}

/// Materialises the universal relation `U = adom³` over the store's active
/// domain, guarding against blow-up with `options.max_universe`.
pub fn universe(
    store: &Triplestore,
    options: &EvalOptions,
    stats: &mut EvalStats,
) -> Result<TripleSet> {
    let adom = universe_domain(store, options)?;
    let n = adom.len();
    let total = n.saturating_mul(n).saturating_mul(n);
    let mut out = Vec::with_capacity(total);
    for &a in &adom {
        for &b in &adom {
            for &c in &adom {
                out.push(Triple::new(a, b, c));
            }
        }
    }
    stats.triples_emitted += total as u64;
    // adom is sorted and deduplicated and the loops are lexicographic, so the
    // output is strictly increasing: take the zero-copy path.
    Ok(TripleSet::from_sorted_vec(out))
}

/// Joins `left ✶ right` picking the strategy by whether the condition set has
/// usable hash keys.
pub fn join_auto(
    left: &TripleSet,
    right: &TripleSet,
    output: &OutputSpec,
    cond: &CompiledConditions,
    store: &Triplestore,
    stats: &mut EvalStats,
) -> TripleSet {
    if cond.cross_equalities().is_empty() {
        nested_loop_join(left, right, output, cond, store, stats)
    } else {
        hash_join(left, right, output, cond, store, stats)
    }
}

/// Positions of a hash key restricted to one side, as component indices.
pub fn key_components(keys: &[(Pos, Pos)], left: bool) -> Vec<usize> {
    keys.iter()
        .map(|(l, r)| {
            if left {
                l.component_index()
            } else {
                r.component_index()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::{Conditions, TriplestoreBuilder, Value};

    fn store() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "p", "b");
        b.add_triple("E", "b", "p", "c");
        b.add_triple("E", "c", "q", "d");
        b.object_with_value("a", Value::int(1));
        b.object_with_value("c", Value::int(1));
        b.finish()
    }

    fn rel(store: &Triplestore) -> TripleSet {
        store.require_relation("E").unwrap().clone()
    }

    #[test]
    fn select_filters_by_constant() {
        let store = store();
        let e = rel(&store);
        let mut stats = EvalStats::new();
        let cond =
            CompiledConditions::compile(&Conditions::new().obj_eq_const(Pos::L2, "p"), &store);
        let out = select(&e, &cond, &store, &mut stats);
        assert_eq!(out.len(), 2);
        assert_eq!(stats.triples_scanned, 3);
        assert_eq!(stats.triples_emitted, 2);
    }

    #[test]
    fn nested_loop_and_hash_join_agree() {
        let store = store();
        let e = rel(&store);
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let cond = CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        let mut s1 = EvalStats::new();
        let mut s2 = EvalStats::new();
        let nl = nested_loop_join(&e, &e, &out_spec, &cond, &store, &mut s1);
        let hj = hash_join(&e, &e, &out_spec, &cond, &store, &mut s2);
        assert_eq!(nl, hj);
        // a→b→c and b→c→d compose.
        assert_eq!(
            store.display_triples(&nl),
            vec!["(a, p, c)".to_string(), "(b, p, d)".to_string()]
        );
        // The nested loop considered all 9 pairs, the hash join fewer.
        assert_eq!(s1.pairs_considered, 9);
        assert!(s2.pairs_considered < 9);
    }

    #[test]
    fn index_join_agrees_with_hash_join() {
        let store = store();
        let (base, index) = store.relation_with_index("E").unwrap();
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let cond = CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        let mut s1 = EvalStats::new();
        let mut s2 = EvalStats::new();
        let hj = hash_join(base, base, &out_spec, &cond, &store, &mut s1);
        let inlj = index_nested_loop_join(
            base,
            base,
            index,
            (Pos::L3, Pos::R1),
            &out_spec,
            &cond,
            &store,
            &mut s2,
        );
        assert_eq!(hj, inlj);
        assert_eq!(s1.pairs_considered, s2.pairs_considered);
    }

    #[test]
    fn prebuilt_tables_are_reusable() {
        let store = store();
        let e = rel(&store);
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let cond = CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        let keys = cond.cross_equalities();
        let mut stats = EvalStats::new();
        let table = JoinTable::build(&e, &keys, &mut stats);
        assert!(!table.is_empty());
        assert_eq!(table.len(), 3); // distinct first components a, b, c
        let first = hash_join_probe(&e, &table, &out_spec, &cond, &store, &mut stats);
        let second = hash_join_probe(&first, &table, &out_spec, &cond, &store, &mut stats);
        assert_eq!(first.len(), 2); // a→c, b→d
        assert_eq!(second.len(), 1); // a→d
                                     // Build scanned the 3 right triples exactly once.
        assert_eq!(stats.triples_scanned, 3 + 3 + 2);
    }

    #[test]
    fn single_column_keys_avoid_wide_variants() {
        let t = Triple::new(ObjectId(1), ObjectId(2), ObjectId(3));
        assert_eq!(key_of(&t, &[0]), JoinKey::One(ObjectId(1)));
        assert_eq!(key_of(&t, &[2, 0]), JoinKey::Two(ObjectId(3), ObjectId(1)));
        assert_eq!(
            key_of(&t, &[0, 1, 2]),
            JoinKey::Three([ObjectId(1), ObjectId(2), ObjectId(3)])
        );
        assert_eq!(
            key_of(&t, &[0, 0, 1, 1]),
            JoinKey::Wide(vec![ObjectId(1), ObjectId(1), ObjectId(2), ObjectId(2)])
        );
    }

    #[test]
    fn hash_join_without_keys_falls_back() {
        let store = store();
        let e = rel(&store);
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        // Only an inequality: no hash key available.
        let cond =
            CompiledConditions::compile(&Conditions::new().obj_neq(Pos::L1, Pos::R1), &store);
        let mut s = EvalStats::new();
        let out = hash_join(&e, &e, &out_spec, &cond, &store, &mut s);
        assert_eq!(s.pairs_considered, 9);
        assert_eq!(out.len(), 6); // ordered pairs of distinct triples, all projections distinct
    }

    #[test]
    fn join_with_data_condition() {
        let store = store();
        let e = rel(&store);
        // Join triples whose endpoints carry the same data value:
        // ρ(1) = ρ(3') pairs (a,..) with (..,c) etc.
        let cond =
            CompiledConditions::compile(&Conditions::new().data_eq(Pos::L1, Pos::R3), &store);
        let mut s = EvalStats::new();
        let out = nested_loop_join(
            &e,
            &e,
            &OutputSpec::new(Pos::L1, Pos::R2, Pos::R3),
            &cond,
            &store,
            &mut s,
        );
        // ρ(a)=1 matches ρ(c)=1: left triples starting at a, right triples ending at c.
        // Also ρ(c)=1 matches ρ(c)=1 and ρ(a)=1.
        assert!(out.iter().any(|t| store.display_triple(t) == "(a, p, c)"));
    }

    #[test]
    fn universe_size_and_limit() {
        let store = store();
        let mut s = EvalStats::new();
        let u = universe(&store, &EvalOptions::default(), &mut s).unwrap();
        // Active domain: a, p, b, c, q, d = 6 objects → 216 triples.
        assert_eq!(u.len(), 216);
        let tight = EvalOptions {
            max_universe: 100,
            ..EvalOptions::default()
        };
        let err = universe(&store, &tight, &mut s).unwrap_err();
        assert!(matches!(err, Error::LimitExceeded(_)));
    }

    #[test]
    fn join_auto_picks_strategy() {
        let store = store();
        let e = rel(&store);
        let out_spec = OutputSpec::new(Pos::L1, Pos::L2, Pos::R3);
        let eq_cond =
            CompiledConditions::compile(&Conditions::new().obj_eq(Pos::L3, Pos::R1), &store);
        let neq_cond =
            CompiledConditions::compile(&Conditions::new().obj_neq(Pos::L3, Pos::R1), &store);
        let mut s = EvalStats::new();
        let a = join_auto(&e, &e, &out_spec, &eq_cond, &store, &mut s);
        let b = join_auto(&e, &e, &out_spec, &neq_cond, &store, &mut s);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 9 - 2); // complement of the equality matches, before dedup
    }

    #[test]
    fn key_components_extraction() {
        let keys = vec![(Pos::L3, Pos::R1), (Pos::L2, Pos::R2)];
        assert_eq!(key_components(&keys, true), vec![2, 1]);
        assert_eq!(key_components(&keys, false), vec![0, 1]);
    }
}
