//! The production engine: fragment-aware strategy selection.
//!
//! [`SmartEngine`] walks the expression tree once per query and picks, for
//! every operator, the cheapest applicable physical strategy:
//!
//! * joins use hash joins keyed on the cross equalities of `θ` (the
//!   Proposition 4 optimisation), falling back to nested loops when no
//!   equality key exists;
//! * Kleene stars that match one of the two reachTA⁼ shapes are routed to
//!   the Proposition 5 reachability procedures; every other star is
//!   evaluated by semi-naive delta iteration;
//! * structurally repeated sub-expressions are evaluated once and memoised.
//!
//! The free functions [`evaluate`] and [`evaluate_with`] are the main entry
//! points used by examples, tests and downstream crates.

use crate::compile::CompiledConditions;
use crate::engine::{Engine, EvalOptions, EvalStats, Evaluation};
use crate::memo::Memo;
use crate::ops;
use crate::reach;
use crate::seminaive::semi_naive_star;
use trial_core::fragment::is_reachability_star;
use trial_core::{Expr, Pos, Result, TripleSet, Triplestore};

/// The default, optimisation-enabled evaluation engine.
#[derive(Debug, Clone, Default)]
pub struct SmartEngine {
    /// Evaluation options (limits and strategy switches).
    pub options: EvalOptions,
}

impl SmartEngine {
    /// Creates the engine with default options.
    pub fn new() -> Self {
        SmartEngine::default()
    }

    /// Creates the engine with explicit options.
    pub fn with_options(options: EvalOptions) -> Self {
        SmartEngine { options }
    }

    fn eval(
        &self,
        expr: &Expr,
        store: &Triplestore,
        memo: &mut Memo,
        stats: &mut EvalStats,
    ) -> Result<TripleSet> {
        if self.options.use_memo {
            if let Some(hit) = memo.get(expr) {
                stats.memo_hits += 1;
                return Ok(hit);
            }
        }
        let result = match expr {
            Expr::Rel(name) => store.require_relation(name)?.clone(),
            Expr::Universe => ops::universe(store, &self.options, stats)?,
            Expr::Empty => TripleSet::new(),
            Expr::Select { input, cond } => {
                let input = self.eval(input, store, memo, stats)?;
                let cond = CompiledConditions::compile(cond, store);
                ops::select(&input, &cond, store, stats)
            }
            Expr::Union(a, b) => {
                let a = self.eval(a, store, memo, stats)?;
                let b = self.eval(b, store, memo, stats)?;
                stats.triples_scanned += (a.len() + b.len()) as u64;
                a.union(&b)
            }
            Expr::Diff(a, b) => {
                let a = self.eval(a, store, memo, stats)?;
                let b = self.eval(b, store, memo, stats)?;
                stats.triples_scanned += (a.len() + b.len()) as u64;
                a.difference(&b)
            }
            Expr::Intersect(a, b) => {
                let a = self.eval(a, store, memo, stats)?;
                let b = self.eval(b, store, memo, stats)?;
                stats.triples_scanned += (a.len() + b.len()) as u64;
                a.intersection(&b)
            }
            Expr::Complement(e) => {
                let e = self.eval(e, store, memo, stats)?;
                let u = ops::universe(store, &self.options, stats)?;
                stats.triples_scanned += (e.len() + u.len()) as u64;
                u.difference(&e)
            }
            Expr::Join {
                left,
                right,
                output,
                cond,
            } => {
                let l = self.eval(left, store, memo, stats)?;
                let r = self.eval(right, store, memo, stats)?;
                let cond = CompiledConditions::compile(cond, store);
                ops::join_auto(&l, &r, output, &cond, store, stats)
            }
            Expr::Star {
                input,
                output,
                cond,
                direction,
            } => {
                let base = self.eval(input, store, memo, stats)?;
                let compiled = CompiledConditions::compile(cond, store);
                if self.options.use_reach_specialisation
                    && is_reachability_star(output, cond, *direction)
                {
                    // Distinguish the two reachTA= shapes by whether the
                    // label equality 2=2' is part of the condition.
                    let same_label = cond
                        .cross_equalities()
                        .iter()
                        .any(|&(l, r)| l == Pos::L2 && r == Pos::R2);
                    if same_label {
                        reach::reach_star_same_label(&base, stats)
                    } else {
                        reach::reach_star_plain(&base, stats)
                    }
                } else {
                    semi_naive_star(
                        &base,
                        output,
                        &compiled,
                        *direction,
                        store,
                        &self.options,
                        stats,
                    )?
                }
            }
        };
        if self.options.use_memo {
            memo.insert(expr, &result);
        }
        Ok(result)
    }
}

impl Engine for SmartEngine {
    fn name(&self) -> &'static str {
        "smart (hash joins + semi-naive + Prop. 5 reachability)"
    }

    fn evaluate(&self, expr: &Expr, store: &Triplestore) -> Result<Evaluation> {
        expr.validate()?;
        let mut stats = EvalStats::new();
        let mut memo = Memo::new();
        let result = self.eval(expr, store, &mut memo, &mut stats)?;
        Ok(Evaluation { result, stats })
    }
}

/// Evaluates `expr` over `store` with the default [`SmartEngine`].
pub fn evaluate(expr: &Expr, store: &Triplestore) -> Result<Evaluation> {
    SmartEngine::new().evaluate(expr, store)
}

/// Evaluates `expr` over `store` with explicit [`EvalOptions`].
pub fn evaluate_with(expr: &Expr, store: &Triplestore, options: EvalOptions) -> Result<Evaluation> {
    SmartEngine::with_options(options).evaluate(expr, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use trial_core::builder::{queries, ExprBuilderExt};
    use trial_core::{Conditions, TriplestoreBuilder};

    fn figure1() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in [
            ("St.Andrews", "BusOp1", "Edinburgh"),
            ("Edinburgh", "TrainOp1", "London"),
            ("London", "TrainOp2", "Brussels"),
            ("BusOp1", "part_of", "NatExpress"),
            ("TrainOp1", "part_of", "EastCoast"),
            ("TrainOp2", "part_of", "Eurostar"),
            ("EastCoast", "part_of", "NatExpress"),
        ] {
            b.add_triple("E", s, p, o);
        }
        b.finish()
    }

    /// A mixed bag of expressions covering every operator.
    fn expression_zoo() -> Vec<Expr> {
        vec![
            Expr::rel("E"),
            queries::example2("E"),
            queries::example2_extended("E"),
            queries::reach_forward("E"),
            queries::reach_same_label("E"),
            queries::reach_down("E"),
            queries::same_company_reachability("E"),
            queries::at_least_four_objects(),
            queries::at_least_six_objects(),
            Expr::rel("E").complement(),
            Expr::rel("E")
                .select(Conditions::new().obj_eq_const(trial_core::Pos::L2, "part_of"))
                .reach_forward(),
            Expr::rel("E").intersect_via_join(queries::example2("E")),
            Expr::rel("E").minus(queries::example2("E")),
            Expr::Universe.minus(Expr::rel("E")),
            Expr::Empty.union(Expr::rel("E")),
        ]
    }

    #[test]
    fn smart_and_naive_agree_on_figure1() {
        let store = figure1();
        let smart = SmartEngine::new();
        let naive = NaiveEngine::new();
        for expr in expression_zoo() {
            let a = smart.run(&expr, &store).unwrap();
            let b = naive.run(&expr, &store).unwrap();
            assert_eq!(a, b, "engines disagree on {expr}");
        }
    }

    #[test]
    fn smart_engine_does_less_join_work() {
        let store = figure1();
        let q = queries::same_company_reachability("E");
        let smart = SmartEngine::new().evaluate(&q, &store).unwrap();
        let naive = NaiveEngine::new().evaluate(&q, &store).unwrap();
        assert_eq!(smart.result, naive.result);
        assert!(smart.stats.work() <= naive.stats.work());
    }

    #[test]
    fn reach_specialisation_can_be_disabled() {
        let store = figure1();
        let q = queries::reach_forward("E");
        let with = SmartEngine::new().evaluate(&q, &store).unwrap();
        let without = SmartEngine::with_options(EvalOptions {
            use_reach_specialisation: false,
            ..EvalOptions::default()
        })
        .evaluate(&q, &store)
        .unwrap();
        assert_eq!(with.result, without.result);
        // The specialised path traverses edges; the generic path does joins.
        assert!(with.stats.reach_edges_traversed > 0);
        assert_eq!(without.stats.reach_edges_traversed, 0);
        assert!(without.stats.fixpoint_rounds > 0);
    }

    #[test]
    fn memo_avoids_recomputation() {
        let store = figure1();
        // example2_extended evaluates example2 twice.
        let q = queries::example2_extended("E");
        let with = SmartEngine::new().evaluate(&q, &store).unwrap();
        assert!(with.stats.memo_hits >= 1);
        let without = SmartEngine::with_options(EvalOptions {
            use_memo: false,
            ..EvalOptions::default()
        })
        .evaluate(&q, &store)
        .unwrap();
        assert_eq!(with.result, without.result);
        assert_eq!(without.stats.memo_hits, 0);
    }

    #[test]
    fn top_level_helpers() {
        let store = figure1();
        let eval = evaluate(&queries::example2("E"), &store).unwrap();
        assert_eq!(eval.result.len(), 3);
        let eval2 = evaluate_with(
            &queries::example2("E"),
            &store,
            EvalOptions {
                use_memo: false,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert_eq!(eval.result, eval2.result);
    }

    #[test]
    fn same_label_specialisation_used_for_labelled_reach() {
        let store = figure1();
        let q = queries::reach_same_label("E");
        let eval = SmartEngine::new().evaluate(&q, &store).unwrap();
        let naive = NaiveEngine::new().run(&q, &store).unwrap();
        assert_eq!(eval.result, naive);
        assert!(eval.stats.reach_edges_traversed > 0);
    }
}
