//! The cost-based query planner and the production [`SmartEngine`].
//!
//! Planning turns a logical [`Expr`] tree into a physical [`Plan`] over the
//! store's permutation indexes ([`trial_core::index`]), choosing for every
//! operator the cheapest applicable strategy:
//!
//! * **selection pushdown** — constant equalities move into
//!   [`PlanNode::IndexScan`] bindings answered from the matching permutation
//!   (SPO/POS/OSP) in `O(log |R|)`; nested selections are merged; a
//!   selection on an object name absent from the store folds to
//!   [`PlanNode::Empty`];
//! * **join strategy and order** — joins with cross equalities become
//!   [`PlanNode::HashJoin`]s (the Proposition 4 optimisation) with the
//!   *smaller* estimated side as the build side (arguments are swapped via
//!   the mirroring identity when needed), or
//!   [`PlanNode::IndexNestedLoopJoin`]s probing a base relation's cached
//!   permutation index when one side is a stored relation; key order is
//!   chosen by per-component distinct-value statistics;
//! * **recursion strategy** — Kleene stars matching a reachTA⁼ shape are
//!   routed to the Proposition 5 procedures ([`PlanNode::StarReach`]),
//!   walking the store's cached adjacency lists when the base is a stored
//!   relation; all other stars run as build-once semi-naive fixpoints
//!   ([`PlanNode::StarSemiNaive`]);
//! * **memoisation** — structurally repeated sub-expressions are wrapped in
//!   [`PlanNode::Memo`] slots and executed once.
//!
//! Cardinality estimates come from exact relation sizes and per-component
//! distinct counts (from [`trial_core::RelationIndex::distinct_counts`]) and
//! textbook selectivity heuristics everywhere else.
//!
//! The free functions [`evaluate`] and [`evaluate_with`] are the main entry
//! points used by examples, tests and downstream crates; [`explain`] renders
//! the chosen plan without running it.

use crate::cursor::{CancelCursor, QueryStream};
use crate::engine::{Engine, EvalOptions, EvalStats, Evaluation};
use crate::exec::Executor;
use crate::plan::{Plan, PlanNode};
use crate::stats::{ObserveSummary, StatsStore};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use trial_core::condition::{Cmp, ObjAtom, ObjOperand};
use trial_core::fragment::is_reachability_star;
use trial_core::{Conditions, Expr, ObjectId, Permutation, Pos, Result, Triplestore};
use trial_parser::PathExpr;

/// The default, optimisation-enabled evaluation engine: plans every query
/// with [`plan`] and executes the physical plan against the store's
/// permutation indexes.
///
/// An engine built with [`SmartEngine::with_stats`] also carries a shared
/// [`StatsStore`]: planning substitutes observed cardinalities for the
/// heuristic estimates wherever a plan shape has been executed before, and
/// every `evaluate_analyzed` run feeds its actual row counts back in — the
/// adaptive-planning feedback loop (see [`crate::stats`]).
#[derive(Debug, Clone, Default)]
pub struct SmartEngine {
    /// Evaluation options (limits and strategy switches).
    pub options: EvalOptions,
    /// Feedback statistics consulted while planning and fed by
    /// `evaluate_analyzed`, with the store epoch captured at construction
    /// (observations are dropped if the epoch moved underneath the request).
    stats: Option<(Arc<StatsStore>, u64)>,
}

impl SmartEngine {
    /// Creates the engine with default options.
    pub fn new() -> Self {
        SmartEngine::default()
    }

    /// Creates the engine with explicit options (and no feedback
    /// statistics: every estimate comes from the static heuristics).
    pub fn with_options(options: EvalOptions) -> Self {
        SmartEngine {
            options,
            stats: None,
        }
    }

    /// Creates the engine with explicit options and a shared feedback
    /// [`StatsStore`]. The store's current epoch is captured here: an
    /// `evaluate_analyzed` observation is only ingested if the store is
    /// still at that epoch (see [`StatsStore::observe_plan`]).
    pub fn with_stats(options: EvalOptions, stats: Arc<StatsStore>) -> Self {
        let epoch = stats.epoch();
        SmartEngine {
            options,
            stats: Some((stats, epoch)),
        }
    }

    /// The feedback statistics this engine consults, if any.
    pub fn stats(&self) -> Option<&StatsStore> {
        self.stats.as_ref().map(|(stats, _)| &**stats)
    }

    /// Per plan node (indexed like [`PlanNode::preorder`]), whether the
    /// node's estimate would come from observed statistics (`true`,
    /// `est_src=stats`) rather than the static heuristics — what the
    /// server's `/explain` reports.
    pub fn estimate_sources(&self, plan: &Plan) -> Vec<bool> {
        let nodes = plan.root.preorder();
        match self.stats() {
            Some(stats) => nodes
                .iter()
                .map(|node| stats.estimate_node(node).is_some())
                .collect(),
            None => vec![false; nodes.len()],
        }
    }

    /// Plans `expr` over `store` without executing it.
    pub fn plan(&self, expr: &Expr, store: &Triplestore) -> Result<Plan> {
        plan_with(expr, store, &self.options, self.stats(), None)
    }

    /// Plans `expr` with a result-cardinality limit pushed into the plan
    /// (see [`plan_limited`]). `None` plans for the full result.
    pub fn plan_limited(
        &self,
        expr: &Expr,
        store: &Triplestore,
        limit: Option<usize>,
    ) -> Result<Plan> {
        plan_query_with(expr, store, &self.options, self.stats(), limit, None, None)
    }

    /// Plans `expr` with an output order, a top-k bound and/or a limit
    /// compiled into the plan (see [`plan_query`]). With all three `None`
    /// this is identical to [`SmartEngine::plan`].
    pub fn plan_query(
        &self,
        expr: &Expr,
        store: &Triplestore,
        limit: Option<usize>,
        order: Option<Permutation>,
        topk: Option<usize>,
    ) -> Result<Plan> {
        plan_query_with(expr, store, &self.options, self.stats(), limit, order, topk)
    }

    /// Evaluates `expr` through a [`plan_query`] plan: the result set of an
    /// ordered query equals the unordered one (sets carry no order), and a
    /// top-k query returns exactly the `k` smallest distinct triples under
    /// `order`'s permutation key — deterministic in both execution modes,
    /// which is what the ordered differential suite exploits.
    pub fn evaluate_query(
        &self,
        expr: &Expr,
        store: &Triplestore,
        limit: Option<usize>,
        order: Option<Permutation>,
        topk: Option<usize>,
    ) -> Result<Evaluation> {
        let plan = self.plan_query(expr, store, limit, order, topk)?;
        let mut stats = EvalStats::new();
        let mut executor = Executor::new(store, self.options.clone(), &plan);
        let result = if self.options.streaming {
            executor.materialize(&plan.root, &mut stats)?
        } else {
            executor.run(&plan.root, &mut stats)?
        };
        Ok(Evaluation { result, stats })
    }

    /// Compiles `expr` into a streaming [`QueryStream`] whose rows arrive in
    /// `order`'s key order (when requested) and honour a top-k bound — the
    /// pull-based face of [`plan_query`] behind the server's
    /// `?order=`/`?topk=` parameters. Row order is deterministic whenever an
    /// order is requested: the root either delivers the permutation order
    /// natively or sits above an explicit sort/top-k operator.
    pub fn stream_query<'s>(
        &self,
        expr: &Expr,
        store: &'s Triplestore,
        limit: Option<usize>,
        order: Option<Permutation>,
        topk: Option<usize>,
    ) -> Result<QueryStream<'s>> {
        let plan = self.plan_query(expr, store, limit, order, topk)?;
        self.stream_plan(plan, store)
    }

    /// Compiles an already-built plan into a streaming [`QueryStream`] —
    /// the shared tail of [`SmartEngine::stream_query`] and
    /// [`SmartEngine::stream_path_query`].
    fn stream_plan<'s>(&self, plan: Plan, store: &'s Triplestore) -> Result<QueryStream<'s>> {
        let mut stats = EvalStats::new();
        let mut executor = Executor::new(store, self.options.clone(), &plan);
        let root = executor.cursor(&plan.root, &mut stats)?;
        // Exchange fan-out for `QueryStream::channel`: when parallelism is
        // on and the root (beneath any peeled limit) is an ordered,
        // morselizable pipeline of worthwhile size, attach one producer
        // pipeline per morsel. Ordered morsels are duplicate-free and their
        // in-order concatenation is exactly the sequential row sequence, so
        // the exchange changes *when* rows are computed, never which or in
        // what order.
        let morsels = if self.options.threads > 1 {
            let (inner, peeled) = match &plan.root {
                PlanNode::Limit { input, limit, .. } => (&**input, Some(*limit)),
                other => (other, None),
            };
            if inner.ordering().is_some() && inner.est() >= self.options.parallel_min_rows {
                // Adaptive morsel granularity: size the fan-out from the
                // (feedback-corrected) row estimate instead of always
                // carving thread-count-equal splits — a stream barely past
                // the parallel threshold gets two full morsels instead of
                // `threads` slivers, and only estimates several thresholds
                // deep fan out to the full degree.
                let parts = if self.options.parallel_min_rows == 0 {
                    self.options.threads
                } else {
                    inner
                        .est()
                        .div_ceil(self.options.parallel_min_rows)
                        .clamp(2, self.options.threads)
                };
                executor.morsel_cursors(inner, parts)?.map(|cursors| {
                    // Every exchange producer checks the shared token, so a
                    // deadline or consumer hang-up unwinds all lanes.
                    let cursors = cursors
                        .into_iter()
                        .map(|cursor| wrap_cancel(cursor, &self.options))
                        .collect();
                    (cursors, peeled)
                })
            } else {
                None
            }
        } else {
            None
        };
        let profile = executor.query_profile(&plan);
        let stream = QueryStream::new(plan, root, stats)
            .with_profile(profile)
            .with_cancel(self.options.cancel.clone());
        Ok(match morsels {
            Some((cursors, peeled)) => stream.with_morsels(cursors, peeled),
            None => stream,
        })
    }

    /// Compiles `expr` like [`SmartEngine::stream_query`] but **resumed
    /// strictly after** the row whose key under `order` is `after` — the
    /// engine half of cursor pagination. The plan is identical to the
    /// non-resumed ordered query's; the executor then seeks the root
    /// (`O(log n)` on index scans via
    /// [`trial_core::RangeCursor::seek`], linear skip otherwise), so page
    /// `n+1` never re-evaluates page `n`'s rows. Top-k queries cannot resume
    /// (their result is a bounded set, not a stream position): callers gate
    /// that out.
    pub fn stream_query_after<'s>(
        &self,
        expr: &Expr,
        store: &'s Triplestore,
        limit: Option<usize>,
        order: Permutation,
        after: [trial_core::ObjectId; 3],
    ) -> Result<QueryStream<'s>> {
        let plan = self.plan_query(expr, store, limit, Some(order), None)?;
        self.stream_plan_after(plan, store, order, after)
    }

    /// Seeks an already-built ordered plan strictly past `after` and wraps
    /// it in a [`QueryStream`] — the shared tail of the two `…_after` resume
    /// entry points.
    fn stream_plan_after<'s>(
        &self,
        plan: Plan,
        store: &'s Triplestore,
        order: Permutation,
        after: [trial_core::ObjectId; 3],
    ) -> Result<QueryStream<'s>> {
        let mut stats = EvalStats::new();
        let mut executor = Executor::new(store, self.options.clone(), &plan);
        let root = executor.cursor_seek(&plan.root, order, after, &mut stats)?;
        let profile = executor.query_profile(&plan);
        Ok(QueryStream::new(plan, root, stats)
            .with_profile(profile)
            .with_cancel(self.options.cancel.clone()))
    }

    /// Evaluates `expr` with a limit pushed into the physical plan: at most
    /// `limit` distinct triples are returned (`None` = unlimited).
    ///
    /// With streaming execution (the default) the result is the first
    /// `limit` distinct triples the cursor pipeline yields, and evaluation
    /// terminates the moment the limit is reached. With
    /// [`EvalOptions::streaming`]` = false` the full result is materialised
    /// and the **ordered prefix** is returned: the `limit` smallest triples
    /// under the limit input's delivered stream order — the canonical SPO
    /// prefix when the input is unordered. For ordered inputs this is
    /// exactly what the streaming pipeline yields, so the two modes agree
    /// deterministically; the differential suite checks both.
    pub fn evaluate_limited(
        &self,
        expr: &Expr,
        store: &Triplestore,
        limit: Option<usize>,
    ) -> Result<Evaluation> {
        let plan = self.plan_limited(expr, store, limit)?;
        let mut stats = EvalStats::new();
        let mut executor = Executor::new(store, self.options.clone(), &plan);
        let result = if self.options.streaming {
            // `materialize` runs the streaming pipeline but lets operators
            // whose output is naturally a set (scans, set ops, stars) build
            // it directly — full-result evaluations stay at materialized
            // speed while limited subtrees still terminate early.
            executor.materialize(&plan.root, &mut stats)?
        } else {
            executor.run(&plan.root, &mut stats)?
        };
        Ok(Evaluation { result, stats })
    }

    /// Evaluates `expr` like [`SmartEngine::evaluate_limited`] while also
    /// recording every plan node's **actual** output cardinality — the
    /// `EXPLAIN ANALYZE` entry point behind the server's
    /// `/explain?analyze=1`.
    ///
    /// Actuals are the cost-model feedback loop: comparing them to the
    /// per-node `est` exposes the selectivity mis-estimates that would
    /// mislead morsel sizing (and build-side choices). Node indexing follows
    /// [`PlanNode::preorder`] of the returned plan; a node is `None` when it
    /// was not individually materialised — the subtree beneath a streaming
    /// [`PlanNode::Limit`] runs as one pull-based pipeline and only the
    /// limit node itself observes a row count.
    pub fn evaluate_analyzed(
        &self,
        expr: &Expr,
        store: &Triplestore,
        limit: Option<usize>,
    ) -> Result<AnalyzedEvaluation> {
        self.evaluate_analyzed_query(expr, store, limit, None, None)
    }

    /// [`SmartEngine::evaluate_analyzed`] over a [`plan_query`] plan: the
    /// `EXPLAIN ANALYZE` path for ordered / top-k queries, behind the
    /// server's `/explain?analyze=1&order=…&topk=…`.
    pub fn evaluate_analyzed_query(
        &self,
        expr: &Expr,
        store: &Triplestore,
        limit: Option<usize>,
        order: Option<Permutation>,
        topk: Option<usize>,
    ) -> Result<AnalyzedEvaluation> {
        let options = EvalOptions {
            collect_node_stats: true,
            ..self.options.clone()
        };
        let plan = plan_query_with(expr, store, &options, self.stats(), limit, order, topk)?;
        self.analyzed_run(plan, store, options)
    }

    /// Executes an already-built plan with per-node actuals, profiles and
    /// feedback ingestion — the shared tail of the `EXPLAIN ANALYZE` entry
    /// points.
    fn analyzed_run(
        &self,
        plan: Plan,
        store: &Triplestore,
        options: EvalOptions,
    ) -> Result<AnalyzedEvaluation> {
        // Captured before execution: ingesting this run's actuals below
        // would otherwise make a cold (heuristic) plan report itself as
        // stats-sourced.
        let est_sources = self.estimate_sources(&plan);
        let mut stats = EvalStats::new();
        let mut executor = Executor::new(store, options.clone(), &plan);
        let result = if options.streaming {
            executor.materialize(&plan.root, &mut stats)?
        } else {
            executor.run(&plan.root, &mut stats)?
        };
        let actuals = executor.node_actuals(&plan);
        let profiles = executor
            .query_profile(&plan)
            .map(|profile| profile.snapshot())
            .unwrap_or_default();
        // The feedback loop: every analyzed run teaches the stats store the
        // observed cardinalities, gated on the epoch captured when this
        // engine was built.
        let feedback = self
            .stats
            .as_ref()
            .map(|(stats, epoch)| stats.observe_plan(&plan, &actuals, *epoch));
        Ok(AnalyzedEvaluation {
            plan,
            evaluation: Evaluation { result, stats },
            actuals,
            profiles,
            est_sources,
            feedback,
        })
    }

    /// Compiles `expr` into a streaming [`QueryStream`] over `store`,
    /// optionally bounded to `limit` distinct result triples.
    ///
    /// This is the pull-based entry point: pipeline breakers (hash-join
    /// build sides, star fixpoints, difference right sides, memo slots) run
    /// at compile time, everything else runs as the caller pulls. Dropping
    /// the stream abandons all remaining work, so a bounded consumer pays
    /// for the triples it reads, not for the full result — the behaviour the
    /// `streaming_vs_materialized` benchmark quantifies.
    pub fn stream<'s>(
        &self,
        expr: &Expr,
        store: &'s Triplestore,
        limit: Option<usize>,
    ) -> Result<QueryStream<'s>> {
        self.stream_query(expr, store, limit, None, None)
    }

    /// Plans a path query executed as a [`PlanNode::PathNfa`] product walk
    /// over `relation`, with the same limit/order/top-k machinery as
    /// [`SmartEngine::plan_query`] applied on top (see [`plan_path`]).
    ///
    /// This is the **NFA strategy** entry point. Path queries whose strategy
    /// resolves to the TriAL lowering instead go through the ordinary
    /// expression entry points with [`crate::rpq::lower`]'s output — that is
    /// the whole point of the lowering.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_path_query(
        &self,
        path: &PathExpr,
        relation: &str,
        store: &Triplestore,
        max_hops: Option<usize>,
        limit: Option<usize>,
        order: Option<Permutation>,
        topk: Option<usize>,
    ) -> Result<Plan> {
        plan_path(
            path,
            relation,
            store,
            &self.options,
            max_hops,
            limit,
            order,
            topk,
        )
    }

    /// [`SmartEngine::stream_query`] for the NFA path strategy: compiles the
    /// [`PlanNode::PathNfa`] plan and streams it with the same
    /// ordered/top-k/limit semantics.
    #[allow(clippy::too_many_arguments)]
    pub fn stream_path_query<'s>(
        &self,
        path: &PathExpr,
        relation: &str,
        store: &'s Triplestore,
        max_hops: Option<usize>,
        limit: Option<usize>,
        order: Option<Permutation>,
        topk: Option<usize>,
    ) -> Result<QueryStream<'s>> {
        let plan = self.plan_path_query(path, relation, store, max_hops, limit, order, topk)?;
        self.stream_plan(plan, store)
    }

    /// [`SmartEngine::stream_query_after`] for the NFA path strategy — the
    /// engine half of cursor pagination over `POST /path` responses.
    #[allow(clippy::too_many_arguments)]
    pub fn stream_path_query_after<'s>(
        &self,
        path: &PathExpr,
        relation: &str,
        store: &'s Triplestore,
        max_hops: Option<usize>,
        limit: Option<usize>,
        order: Permutation,
        after: [trial_core::ObjectId; 3],
    ) -> Result<QueryStream<'s>> {
        let plan =
            self.plan_path_query(path, relation, store, max_hops, limit, Some(order), None)?;
        self.stream_plan_after(plan, store, order, after)
    }

    /// [`SmartEngine::evaluate_analyzed_query`] for the NFA path strategy:
    /// `EXPLAIN ANALYZE` over a [`PlanNode::PathNfa`] plan. The feedback
    /// ingestion is a no-op (NFA walks carry no reusable plan-shape
    /// fingerprint) but actuals and profiles report like any other plan.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_analyzed_path_query(
        &self,
        path: &PathExpr,
        relation: &str,
        store: &Triplestore,
        max_hops: Option<usize>,
        limit: Option<usize>,
        order: Option<Permutation>,
        topk: Option<usize>,
    ) -> Result<AnalyzedEvaluation> {
        let options = EvalOptions {
            collect_node_stats: true,
            ..self.options.clone()
        };
        let plan = plan_path(
            path, relation, store, &options, max_hops, limit, order, topk,
        )?;
        self.analyzed_run(plan, store, options)
    }
}

/// Installs the cancellation checkpoint on an exchange producer pipeline:
/// with an armed [`crate::CancelToken`] every pull first consults the
/// stride-amortised checker and the lane ends early once the token latches;
/// the inert token wraps nothing and costs nothing. (The root pipeline is
/// not wrapped — [`QueryStream::next_triple`] carries its own checker.)
fn wrap_cancel<'s>(
    cursor: crate::cursor::BoxCursor<'s>,
    options: &EvalOptions,
) -> crate::cursor::BoxCursor<'s> {
    if !options.cancel.is_armed() {
        return cursor;
    }
    Box::new(CancelCursor {
        input: cursor,
        checker: options.cancel.checker(),
    })
}

/// The outcome of [`SmartEngine::evaluate_analyzed`]: the executed plan, the
/// evaluation itself, and each node's actual output cardinality.
#[derive(Debug, Clone)]
pub struct AnalyzedEvaluation {
    /// The physical plan that was executed (limit already pushed).
    pub plan: Plan,
    /// Result triples and work counters.
    pub evaluation: Evaluation,
    /// Actual output rows per plan node, indexed by the node's position in
    /// [`PlanNode::preorder`] over `plan.root`. `None` marks nodes executed
    /// only as part of a streaming pipeline (beneath a limit boundary)
    /// rather than individually materialised.
    pub actuals: Vec<Option<u64>>,
    /// Per-node wall-clock profiles (exact — `EXPLAIN ANALYZE` runs the
    /// profiler at stride 1), indexed like `actuals`. Unlike an actual, a
    /// profile's [`NodeProfile::rows`](crate::NodeProfile) is also present
    /// for streamed nodes: it counts the rows pulled through the node's
    /// cursor.
    pub profiles: Vec<crate::NodeProfile>,
    /// Per node (indexed like `actuals`), whether its estimate came from
    /// observed feedback statistics rather than the static heuristics —
    /// captured **before** this run's actuals were ingested, so a cold plan
    /// honestly reports `heuristic`.
    pub est_sources: Vec<bool>,
    /// What this run taught the engine's [`StatsStore`] (`None` when the
    /// engine has no statistics attached): ingested-node count and per-node
    /// relative estimate errors.
    pub feedback: Option<ObserveSummary>,
}

impl Engine for SmartEngine {
    fn name(&self) -> &'static str {
        "smart (planned: index scans + hash/index joins + semi-naive + Prop. 5 reachability)"
    }

    fn evaluate(&self, expr: &Expr, store: &Triplestore) -> Result<Evaluation> {
        self.evaluate_limited(expr, store, None)
    }
}

/// Evaluates `expr` over `store` with the default [`SmartEngine`].
pub fn evaluate(expr: &Expr, store: &Triplestore) -> Result<Evaluation> {
    SmartEngine::new().evaluate(expr, store)
}

/// Evaluates `expr` over `store` with explicit [`EvalOptions`].
pub fn evaluate_with(expr: &Expr, store: &Triplestore, options: EvalOptions) -> Result<Evaluation> {
    SmartEngine::with_options(options).evaluate(expr, store)
}

/// Plans `expr` and renders the physical plan in `EXPLAIN` style.
pub fn explain(expr: &Expr, store: &Triplestore) -> Result<String> {
    Ok(SmartEngine::new().plan(expr, store)?.explain())
}

/// Builds the physical plan for `expr` over `store`.
pub fn plan(expr: &Expr, store: &Triplestore, options: &EvalOptions) -> Result<Plan> {
    plan_with(expr, store, options, None, None)
}

/// [`plan`] with the adaptive-planner inputs: optional feedback statistics
/// (observed cardinalities override the heuristic estimates wherever a plan
/// shape has been executed before) and an optional **interesting order** —
/// the root output order the query will be asked for, pushed down so join
/// strategy and merge-key choice can deliver it without a final sort.
fn plan_with(
    expr: &Expr,
    store: &Triplestore,
    options: &EvalOptions,
    stats: Option<&StatsStore>,
    interesting: Option<Permutation>,
) -> Result<Plan> {
    expr.validate()?;
    let mut planner = Planner {
        store,
        options,
        stats,
        interesting,
        used_stats: false,
        universe_est: None,
        repeated: repeated_subexpressions(expr),
        slots: HashMap::new(),
    };
    let root = planner.plan_expr(expr)?;
    if planner.used_stats {
        if let Some(stats) = stats {
            stats.note_replan();
        }
    }
    Ok(Plan {
        root,
        memo_slots: planner.slots.len(),
        threads: options.threads.max(1),
    })
}

/// Builds the physical plan for a path query executed as an NFA product
/// walk: a [`PlanNode::PathNfa`] leaf over `relation`, with the ordinary
/// order / top-k / limit rewrites applied on top. The leaf materialises in
/// canonical SPO order, so `?order=spo` and SPO top-k bounds collapse to
/// plain streaming limits; other orders insert the usual sort breaker.
///
/// Fails fast when `relation` is not stored — the walk has nothing to
/// traverse, and the server wants the 404-equivalent before streaming.
#[allow(clippy::too_many_arguments)]
pub fn plan_path(
    path: &PathExpr,
    relation: &str,
    store: &Triplestore,
    options: &EvalOptions,
    max_hops: Option<usize>,
    limit: Option<usize>,
    order: Option<Permutation>,
    topk: Option<usize>,
) -> Result<Plan> {
    let base = store.require_relation(relation)?;
    // Stats-free estimate: one pair per (root, reachable node) is bounded by
    // nodes², but on sparse graphs the edge count is the better proxy — and
    // the leaf has no join above it that the number could mislead.
    let est = base.len().max(1);
    let mut root = PlanNode::PathNfa {
        relation: relation.to_owned(),
        path: path.clone(),
        max_hops,
        est,
    };
    if let Some(k) = topk {
        root = push_topk(root, k, order.unwrap_or(Permutation::Spo));
    } else if let Some(perm) = order {
        root = ensure_order(root, perm);
    }
    if let Some(k) = limit {
        root = push_limit(root, k);
    }
    Ok(Plan {
        root,
        memo_slots: 0,
        threads: options.threads.max(1),
    })
}

/// Builds the physical plan for `expr` with a [`PlanNode::Limit`] pushed as
/// deep as set semantics allow (`None` = unlimited, identical to [`plan`]).
///
/// Pushdown rules:
///
/// * nested limits fold to the smaller bound;
/// * a limit distributes through **union** — `limitₖ(a ∪ b)` needs at most
///   `k` distinct triples from each input (if either child limit truncated,
///   the outer limit is what stops the merge; if neither did, the union is
///   complete) — so both children are limited and the union stays wrapped;
/// * a limit of `0` folds the subtree to [`PlanNode::Empty`];
/// * everything else keeps the limit **above** it: limits never cross
///   filters, joins, differences or stars (those need to see rows the limit
///   would cut), but the streaming executor still terminates them early
///   because the limit stops *pulling*.
pub fn plan_limited(
    expr: &Expr,
    store: &Triplestore,
    options: &EvalOptions,
    limit: Option<usize>,
) -> Result<Plan> {
    let mut plan = plan(expr, store, options)?;
    if let Some(k) = limit {
        plan.root = push_limit(plan.root, k);
    }
    Ok(plan)
}

/// Rewrites `node` so at most `k` distinct triples are ever produced.
fn push_limit(node: PlanNode, k: usize) -> PlanNode {
    if k == 0 {
        return PlanNode::Empty;
    }
    match node {
        PlanNode::Empty => PlanNode::Empty,
        PlanNode::Limit { input, limit, .. } => push_limit(*input, k.min(limit)),
        PlanNode::Union { left, right, .. } => {
            let left = push_limit(*left, k);
            let right = push_limit(*right, k);
            let est = left.est().saturating_add(right.est()).min(k);
            limit_over(
                PlanNode::Union {
                    left: Box::new(left),
                    right: Box::new(right),
                    est,
                },
                k,
            )
        }
        other => limit_over(other, k),
    }
}

/// Wraps a node in a [`PlanNode::Limit`] of `k`.
fn limit_over(input: PlanNode, k: usize) -> PlanNode {
    let est = input.est().min(k);
    PlanNode::Limit {
        input: Box::new(input),
        limit: k,
        est,
    }
}

/// Builds the physical plan for an **ordered** (and optionally top-k /
/// limited) query — the entry point behind the server's
/// `?order=`/`?topk=`/`?limit=` parameters.
///
/// * With `topk = Some(k)` the plan computes the `k` smallest distinct
///   triples under `order`'s permutation key (`order` defaults to `spo`):
///   [`push_topk`] distributes the bound through unions, folds nested
///   top-ks, and turns it into a plain [`PlanNode::Limit`] wherever the
///   input already streams in the target order (the first `k` of an ordered
///   stream *are* the `k` smallest — early termination for free). Elsewhere
///   a [`PlanNode::TopK`] bounded heap does the work; no sort is ever
///   inserted on this path.
/// * With only `order = Some(p)` the plan's root is rewritten to stream in
///   `p`'s key order: unbound scans switch permutation and order-preserving
///   operators pass the requirement down ([`ensure_order`]); if no operator
///   below can deliver, an explicit [`PlanNode::Sort`] breaker is inserted
///   at the root.
/// * `limit` is then pushed as in [`plan_limited`] (it never disturbs the
///   delivered order — limits are order-preserving).
pub fn plan_query(
    expr: &Expr,
    store: &Triplestore,
    options: &EvalOptions,
    limit: Option<usize>,
    order: Option<Permutation>,
    topk: Option<usize>,
) -> Result<Plan> {
    plan_query_with(expr, store, options, None, limit, order, topk)
}

/// [`plan_query`] with feedback statistics. The requested order (explicit,
/// or the key a top-k bound ranks by) is handed to [`plan_with`] as the
/// **interesting order**, so the join planner can choose merge keys that
/// deliver it natively and the `ensure_order`/`push_topk` rewrites below
/// find an already-ordered root instead of inserting a breaker.
fn plan_query_with(
    expr: &Expr,
    store: &Triplestore,
    options: &EvalOptions,
    stats: Option<&StatsStore>,
    limit: Option<usize>,
    order: Option<Permutation>,
    topk: Option<usize>,
) -> Result<Plan> {
    let interesting = match topk {
        Some(_) => Some(order.unwrap_or(Permutation::Spo)),
        None => order,
    };
    let mut plan = plan_with(expr, store, options, stats, interesting)?;
    if let Some(k) = topk {
        plan.root = push_topk(plan.root, k, order.unwrap_or(Permutation::Spo));
    } else if let Some(perm) = order {
        plan.root = ensure_order(plan.root, perm);
    }
    if let Some(k) = limit {
        plan.root = push_limit(plan.root, k);
    }
    Ok(plan)
}

/// Rewrites a scan to stream sorted on `component`: an unbound scan
/// switches to the permutation keyed on it, a bound scan whose run's
/// [secondary order](Permutation::secondary) keys it declares that order
/// (the run is physically unchanged — it is already sorted both ways).
/// Other nodes must already be ordered on the component (checked by the
/// caller).
fn deliver_order(node: PlanNode, component: usize) -> PlanNode {
    if node.ordering().map(Permutation::key_component) == Some(component) {
        return node;
    }
    match node {
        PlanNode::IndexScan {
            relation,
            bound: None,
            residual,
            est,
            ..
        } => PlanNode::IndexScan {
            relation,
            bound: None,
            residual,
            order: Permutation::keyed_on(component),
            est,
        },
        PlanNode::IndexScan {
            relation,
            bound: Some((bc, id)),
            residual,
            est,
            ..
        } if Permutation::keyed_on(bc).secondary().key_component() == component => {
            PlanNode::IndexScan {
                relation,
                bound: Some((bc, id)),
                residual,
                order: Permutation::keyed_on(bc).secondary(),
                est,
            }
        }
        other => other,
    }
}

/// Rewrites `node` so its output streams in `perm`'s key order, inserting a
/// [`PlanNode::Sort`] breaker at the root only if the tree below cannot
/// deliver the order itself (see [`try_order`]).
fn ensure_order(node: PlanNode, perm: Permutation) -> PlanNode {
    match try_order(node, perm) {
        Ok(ordered) => ordered,
        Err(node) => {
            let est = node.est();
            PlanNode::Sort {
                input: Box::new(node),
                order: perm,
                est,
            }
        }
    }
}

/// Attempts to deliver `perm`'s order without a sort breaker: unbound index
/// scans switch to the permutation keyed on `perm`'s key component, filters
/// and the streamed (left) sides of difference/intersection pass the
/// requirement through, unions deliver when **both** sides do (the executor
/// then merge-unions them), and an existing sort is re-targeted. `Err`
/// hands the node back unchanged.
fn try_order(node: PlanNode, perm: Permutation) -> std::result::Result<PlanNode, PlanNode> {
    if node.ordering() == Some(perm) {
        return Ok(node);
    }
    match node {
        PlanNode::IndexScan {
            relation,
            bound: None,
            residual,
            est,
            ..
        } => Ok(PlanNode::IndexScan {
            relation,
            bound: None,
            residual,
            order: perm,
            est,
        }),
        // A bound run is also strictly sorted under its permutation's
        // secondary order ([`Permutation::secondary`]): declaring it
        // delivers `perm` with zero physical change — no sort breaker.
        PlanNode::IndexScan {
            relation,
            bound: Some((bc, id)),
            residual,
            est,
            ..
        } if Permutation::keyed_on(bc).secondary() == perm => Ok(PlanNode::IndexScan {
            relation,
            bound: Some((bc, id)),
            residual,
            order: perm,
            est,
        }),
        PlanNode::Filter { input, cond, est } => match try_order(*input, perm) {
            Ok(input) => Ok(PlanNode::Filter {
                input: Box::new(input),
                cond,
                est,
            }),
            Err(input) => Err(PlanNode::Filter {
                input: Box::new(input),
                cond,
                est,
            }),
        },
        PlanNode::Union { left, right, est } => match try_order(*left, perm) {
            Ok(l) => match try_order(*right, perm) {
                Ok(r) => Ok(PlanNode::Union {
                    left: Box::new(l),
                    right: Box::new(r),
                    est,
                }),
                Err(r) => Err(PlanNode::Union {
                    left: Box::new(l),
                    right: Box::new(r),
                    est,
                }),
            },
            Err(l) => Err(PlanNode::Union {
                left: Box::new(l),
                right,
                est,
            }),
        },
        PlanNode::Diff { left, right, est } => match try_order(*left, perm) {
            Ok(l) => Ok(PlanNode::Diff {
                left: Box::new(l),
                right,
                est,
            }),
            Err(l) => Err(PlanNode::Diff {
                left: Box::new(l),
                right,
                est,
            }),
        },
        PlanNode::Intersect { left, right, est } => match try_order(*left, perm) {
            Ok(l) => Ok(PlanNode::Intersect {
                left: Box::new(l),
                right,
                est,
            }),
            Err(l) => Err(PlanNode::Intersect {
                left: Box::new(l),
                right,
                est,
            }),
        },
        PlanNode::Sort { input, est, .. } => Ok(PlanNode::Sort {
            input,
            order: perm,
            est,
        }),
        other => Err(other),
    }
}

/// Rewrites `node` so it produces the `k` smallest distinct triples under
/// `perm`'s key: top-k bounds fold, distribute through unions (the k
/// smallest of a union are among the union of each side's k smallest), drop
/// same-order sorts (the heap imposes the order itself), and collapse to a
/// plain streaming [`PlanNode::Limit`] over inputs that already deliver the
/// order.
fn push_topk(node: PlanNode, k: usize, perm: Permutation) -> PlanNode {
    if k == 0 {
        return PlanNode::Empty;
    }
    match node {
        PlanNode::Empty => PlanNode::Empty,
        PlanNode::TopK {
            input,
            k: k2,
            order,
            ..
        } if order == perm => push_topk(*input, k.min(k2), perm),
        // A sort below a top-k of the same order is redundant: the heap
        // orders its survivors itself.
        PlanNode::Sort { input, order, .. } if order == perm => push_topk(*input, k, perm),
        PlanNode::Union { left, right, .. } => {
            let left = push_topk(*left, k, perm);
            let right = push_topk(*right, k, perm);
            let est = left.est().saturating_add(right.est()).min(k);
            topk_over(
                PlanNode::Union {
                    left: Box::new(left),
                    right: Box::new(right),
                    est,
                },
                k,
                perm,
            )
        }
        other => topk_over(other, k, perm),
    }
}

/// Wraps a node in the cheapest operator computing its `k` smallest under
/// `perm`: a streaming [`PlanNode::Limit`] when the input (possibly after
/// free order delivery) already streams in that order, a bounded-heap
/// [`PlanNode::TopK`] otherwise.
fn topk_over(input: PlanNode, k: usize, perm: Permutation) -> PlanNode {
    match try_order(input, perm) {
        Ok(ordered) => {
            // Ordered input: the first k distinct rows are the k smallest,
            // and the limit terminates the pipeline early.
            let est = ordered.est().min(k);
            PlanNode::Limit {
                input: Box::new(ordered),
                limit: k,
                est,
            }
        }
        Err(input) => {
            let est = input.est().min(k);
            PlanNode::TopK {
                input: Box::new(input),
                k,
                order: perm,
                est,
            }
        }
    }
}

/// Sub-expressions worth a memo slot: anything that performs work.
fn memoizable(expr: &Expr) -> bool {
    !matches!(expr, Expr::Rel(_) | Expr::Empty | Expr::Universe)
}

/// The set of sub-expressions occurring more than once.
fn repeated_subexpressions(expr: &Expr) -> HashSet<Expr> {
    let mut seen: HashSet<&Expr> = HashSet::new();
    let mut repeated: HashSet<Expr> = HashSet::new();
    for sub in expr.subexpressions() {
        if memoizable(sub) && !seen.insert(sub) {
            repeated.insert(sub.clone());
        }
    }
    repeated
}

struct Planner<'a> {
    store: &'a Triplestore,
    options: &'a EvalOptions,
    /// Observed-cardinality feedback consulted for every node built.
    stats: Option<&'a StatsStore>,
    /// The root output order the query will be asked for (interesting
    /// orders), pushed down into join-strategy choices.
    interesting: Option<Permutation>,
    /// Whether any node's estimate came from observed statistics.
    used_stats: bool,
    universe_est: Option<usize>,
    repeated: HashSet<Expr>,
    slots: HashMap<Expr, usize>,
}

impl Planner<'_> {
    fn optimize(&self) -> bool {
        self.options.optimize_plans
    }

    /// `|adom|³`, the cardinality of the universal relation.
    fn universe_est(&mut self) -> usize {
        *self.universe_est.get_or_insert_with(|| {
            let n = self.store.active_domain().len();
            n.saturating_mul(n).saturating_mul(n)
        })
    }

    /// Exact `(cardinality, distinct counts per component)` when the plan
    /// scans a stored relation unfiltered; `None` otherwise.
    fn scan_stats(&self, node: &PlanNode) -> Option<(usize, [usize; 3])> {
        let name = bare_scan(node)?;
        let (base, index) = self.store.relation_with_index(name)?;
        Some((base.len(), index.distinct_counts(base)))
    }

    /// Replaces a freshly built node's heuristic estimate with the observed
    /// cardinality for its plan shape, when feedback statistics know it.
    /// Applied bottom-up (children before their parent's strategy choice),
    /// so a corrected child estimate steers join orientation, build-side and
    /// merge-vs-probe decisions — the adaptive re-planning step.
    fn apply_stats(&mut self, node: PlanNode) -> PlanNode {
        let Some(stats) = self.stats else { return node };
        match stats.estimate_node(&node) {
            Some(rows) => {
                self.used_stats = true;
                node.with_est(rows as usize)
            }
            None => node,
        }
    }

    fn plan_expr(&mut self, expr: &Expr) -> Result<PlanNode> {
        if self.options.use_memo && memoizable(expr) && self.repeated.contains(expr) {
            let slot = match self.slots.get(expr) {
                Some(&slot) => slot,
                None => {
                    let next = self.slots.len();
                    self.slots.insert(expr.clone(), next);
                    next
                }
            };
            let input = self.plan_inner(expr)?;
            let input = self.apply_stats(input);
            return Ok(PlanNode::Memo {
                slot,
                input: Box::new(input),
            });
        }
        let node = self.plan_inner(expr)?;
        Ok(self.apply_stats(node))
    }

    fn plan_inner(&mut self, expr: &Expr) -> Result<PlanNode> {
        Ok(match expr {
            Expr::Rel(name) => {
                let est = self.store.require_relation(name)?.len();
                PlanNode::IndexScan {
                    relation: name.clone(),
                    bound: None,
                    residual: Conditions::new(),
                    order: Permutation::Spo,
                    est,
                }
            }
            Expr::Universe => PlanNode::Universe {
                est: self.universe_est(),
            },
            Expr::Empty => PlanNode::Empty,
            Expr::Select { input, cond } => self.plan_select(input, cond)?,
            Expr::Union(a, b) => {
                let left = self.plan_expr(a)?;
                let right = self.plan_expr(b)?;
                let est = left.est().saturating_add(right.est());
                PlanNode::Union {
                    left: Box::new(left),
                    right: Box::new(right),
                    est,
                }
            }
            Expr::Diff(a, b) => {
                let left = self.plan_expr(a)?;
                let right = self.plan_expr(b)?;
                let est = left.est();
                PlanNode::Diff {
                    left: Box::new(left),
                    right: Box::new(right),
                    est,
                }
            }
            Expr::Intersect(a, b) => {
                let left = self.plan_expr(a)?;
                let right = self.plan_expr(b)?;
                let est = left.est().min(right.est());
                PlanNode::Intersect {
                    left: Box::new(left),
                    right: Box::new(right),
                    est,
                }
            }
            Expr::Complement(e) => {
                let input = self.plan_expr(e)?;
                let est = self.universe_est().saturating_sub(input.est());
                PlanNode::Complement {
                    input: Box::new(input),
                    est,
                }
            }
            Expr::Join {
                left,
                right,
                output,
                cond,
            } => self.plan_join(left, right, output, cond)?,
            Expr::Star {
                input,
                output,
                cond,
                direction,
            } => {
                let input_plan = self.plan_expr(input)?;
                let est = star_est(input_plan.est(), self.universe_est());
                if self.options.use_reach_specialisation
                    && is_reachability_star(output, cond, *direction)
                {
                    // Distinguish the two reachTA⁼ shapes by whether the
                    // label equality 2=2' is part of the condition.
                    let same_label = cond
                        .cross_equalities()
                        .iter()
                        .any(|&(l, r)| l == Pos::L2 && r == Pos::R2);
                    let relation = bare_scan(&input_plan).map(str::to_owned);
                    PlanNode::StarReach {
                        input: Box::new(input_plan),
                        same_label,
                        relation,
                        est,
                    }
                } else {
                    PlanNode::StarSemiNaive {
                        input: Box::new(input_plan),
                        output: *output,
                        cond: cond.clone(),
                        direction: *direction,
                        est,
                    }
                }
            }
        })
    }

    /// Plans `σ_cond(input)`: merges selection chains, then pushes constant
    /// equalities into the scan when the input is a stored relation.
    fn plan_select(&mut self, input: &Expr, cond: &Conditions) -> Result<PlanNode> {
        // Merge σ_c1(σ_c2(e)) into σ_{c1 ∧ c2}(e).
        let mut combined = cond.clone();
        let mut inner = input;
        if self.optimize() {
            while let Expr::Select { input, cond } = inner {
                combined = combined.and(cond.clone());
                inner = input;
            }
        }
        let input_plan = self.plan_expr(inner)?;
        Ok(self.attach_selection(input_plan, combined))
    }

    /// Attaches selection conditions to a plan, pushing them into index
    /// scans where possible.
    fn attach_selection(&mut self, input: PlanNode, cond: Conditions) -> PlanNode {
        if cond.is_empty() {
            return input;
        }
        if self.optimize() {
            // Selections distribute through the order-preserving set
            // operations — σ(a ∪ b) = σ(a) ∪ σ(b), σ(a − b) = σ(a) − σ(b),
            // σ(a ∩ b) = σ(a) ∩ σ(b) — which carries constant equalities all
            // the way down to the index scans on both sides.
            match input {
                PlanNode::Union { left, right, .. } => {
                    let left = self.attach_selection(*left, cond.clone());
                    let right = self.attach_selection(*right, cond);
                    let est = left.est().saturating_add(right.est());
                    return PlanNode::Union {
                        left: Box::new(left),
                        right: Box::new(right),
                        est,
                    };
                }
                PlanNode::Diff { left, right, .. } => {
                    let left = self.attach_selection(*left, cond.clone());
                    let right = self.attach_selection(*right, cond);
                    let est = left.est();
                    return PlanNode::Diff {
                        left: Box::new(left),
                        right: Box::new(right),
                        est,
                    };
                }
                PlanNode::Intersect { left, right, .. } => {
                    let left = self.attach_selection(*left, cond.clone());
                    let right = self.attach_selection(*right, cond);
                    let est = left.est().min(right.est());
                    return PlanNode::Intersect {
                        left: Box::new(left),
                        right: Box::new(right),
                        est,
                    };
                }
                _ => {}
            }
            if let PlanNode::IndexScan {
                relation,
                bound: None,
                residual,
                est,
                ..
            } = &input
            {
                // An equality with an object name absent from the store can
                // never hold: the whole selection is empty.
                if cond.theta.iter().any(|a| {
                    a.cmp == Cmp::Eq
                        && matches!(&a.rhs, ObjOperand::Const(name)
                            if self.store.object_id(name).is_none())
                }) {
                    return PlanNode::Empty;
                }
                let stats = self
                    .store
                    .relation_with_index(relation)
                    .map(|(base, ix)| ix.distinct_counts(base));
                // Bind the most selective constant equality (the component
                // with the most distinct values) through the permutation
                // index; everything else stays as a residual filter.
                let mut best: Option<(usize, ObjectId, usize)> = None;
                for atom in &cond.theta {
                    if atom.cmp != Cmp::Eq {
                        continue;
                    }
                    let ObjOperand::Const(name) = &atom.rhs else {
                        continue;
                    };
                    let Some(id) = self.store.object_id(name) else {
                        continue;
                    };
                    let component = atom.lhs.component_index();
                    let distinct = stats.map(|d| d[component]).unwrap_or(1);
                    if best.map(|(_, _, d)| distinct > d).unwrap_or(true) {
                        best = Some((component, id, distinct));
                    }
                }
                if let Some((component, id, distinct)) = best {
                    let residual_cond = Conditions {
                        theta: cond
                            .theta
                            .iter()
                            .filter(|a| {
                                !(a.cmp == Cmp::Eq
                                    && a.lhs.component_index() == component
                                    && matches!(&a.rhs, ObjOperand::Const(n)
                                        if self.store.object_id(n) == Some(id)))
                            })
                            .cloned()
                            .collect::<Vec<ObjAtom>>(),
                        eta: cond.eta.clone(),
                    };
                    // Integer division underflows a nonzero relation to 0
                    // bound rows whenever `est < distinct`; clamp so only a
                    // provably empty relation estimates empty.
                    let bound_est = (est / distinct.max(1)).max(usize::from(*est > 0));
                    let est = selectivity_est(bound_est, &residual_cond);
                    return PlanNode::IndexScan {
                        relation: relation.clone(),
                        bound: Some((component, id)),
                        residual: residual_cond.and(residual.clone()),
                        order: Permutation::Spo,
                        est: est.max(1),
                    };
                }
                // No bindable constant: fold the whole selection into the
                // scan's residual — one filtered pass over the relation
                // instead of a scan followed by a Filter operator.
                let est = selectivity_est(*est, &cond);
                return PlanNode::IndexScan {
                    relation: relation.clone(),
                    bound: None,
                    residual: cond.and(residual.clone()),
                    order: Permutation::Spo,
                    est: est.max(1),
                };
            }
            // Merge stacked filters produced by earlier planning stages.
            if let PlanNode::Filter {
                input: deeper,
                cond: existing,
                ..
            } = input
            {
                let merged = existing.and(cond);
                let est = selectivity_est(deeper.est(), &merged);
                return PlanNode::Filter {
                    input: deeper,
                    cond: merged,
                    est,
                };
            }
        }
        let est = selectivity_est(input.est(), &cond);
        PlanNode::Filter {
            input: Box::new(input),
            cond,
            est,
        }
    }

    /// Plans a triple join: picks nested-loop, hash, or index nested-loop
    /// strategy and the argument order.
    fn plan_join(
        &mut self,
        left: &Expr,
        right: &Expr,
        output: &trial_core::OutputSpec,
        cond: &Conditions,
    ) -> Result<PlanNode> {
        let left_plan = self.plan_expr(left)?;
        let right_plan = self.plan_expr(right)?;
        let mut keys = cond.cross_equalities();
        keys.sort();
        keys.dedup();
        let est = self.join_est(&left_plan, &right_plan, &keys, cond);

        if keys.is_empty() {
            return Ok(PlanNode::NestedLoopJoin {
                left: Box::new(left_plan),
                right: Box::new(right_plan),
                output: *output,
                cond: cond.clone(),
                est,
            });
        }
        if !self.optimize() {
            return Ok(PlanNode::HashJoin {
                left: Box::new(left_plan),
                right: Box::new(right_plan),
                output: *output,
                cond: cond.clone(),
                keys,
                swapped: false,
                est,
            });
        }

        // Index nested-loop join: probe a stored relation's cached
        // permutation index instead of building a per-query hash table. The
        // inner side must be an unfiltered stored relation and should not be
        // smaller than the probing side.
        let right_inner = bare_scan(&right_plan).is_some() && left_plan.est() <= right_plan.est();
        let left_inner = bare_scan(&left_plan).is_some() && right_plan.est() <= left_plan.est();

        // Sort-merge join: when both inputs can stream sorted on the two
        // sides of the cross equality *for free* — an unbound scan switches
        // to the permutation keyed on the joined component (e.g. POS ⋈ SPO
        // on 2=1'), a **bound** scan declares its run's secondary order
        // ([`Permutation::secondary`]: a POS-bound run is also OSP-sorted),
        // an already-ordered operator qualifies as-is — the join is a single
        // synchronized pass with no build side and no hash table. Only
        // single-key joins qualify: a merge synchronizes on one equality and
        // would re-check further keys pair-by-pair across whole
        // duplicate-run cross products, while a hash join keys on the
        // composite and never touches non-matching pairs. An index
        // nested-loop probe still wins when its outer side is much smaller
        // than the two linear scans a merge would read (factor 8: a probe
        // costs a binary search per outer row, a merge reads both inputs
        // end to end).
        let deliverable = |node: &PlanNode, component: usize| {
            node.ordering().map(Permutation::key_component) == Some(component)
                || matches!(node, PlanNode::IndexScan { bound: None, .. })
                || matches!(node, PlanNode::IndexScan { bound: Some((bc, _)), .. }
                    if Permutation::keyed_on(*bc).secondary().key_component() == component)
        };
        // Interesting orders: an identity-output merge join emits a
        // subsequence of its ordered left input, so merging on the requested
        // root order's component delivers that order natively — the final
        // sort (or top-k heap) dissolves. When that is on the table it
        // outbids the index nested-loop probe, whose scrambled output would
        // force a sort breaker back in at the root.
        let interesting_key = if self.options.use_merge_join && keys.len() == 1 {
            self.interesting
                .filter(|_| *output == trial_core::OutputSpec::IDENTITY)
                .and_then(|perm| {
                    keys.iter().copied().find(|&(l, r)| {
                        l.component_index() == perm.key_component()
                            && deliverable(&left_plan, l.component_index())
                            && deliverable(&right_plan, r.component_index())
                    })
                })
        } else {
            None
        };
        let merge_cost = left_plan.est().saturating_add(right_plan.est());
        let inlj_outer_est = if right_inner {
            left_plan.est()
        } else {
            right_plan.est()
        };
        let prefer_inlj = (right_inner || left_inner)
            && inlj_outer_est.saturating_mul(8) < merge_cost
            && interesting_key.is_none();
        if self.options.use_merge_join && keys.len() == 1 && !prefer_inlj {
            let chosen = interesting_key.or_else(|| {
                keys.iter().copied().find(|&(l, r)| {
                    deliverable(&left_plan, l.component_index())
                        && deliverable(&right_plan, r.component_index())
                })
            });
            if let Some(key) = chosen {
                return Ok(PlanNode::MergeJoin {
                    left: Box::new(deliver_order(left_plan, key.0.component_index())),
                    right: Box::new(deliver_order(right_plan, key.1.component_index())),
                    output: *output,
                    cond: cond.clone(),
                    key,
                    est,
                });
            }
        }

        if right_inner || left_inner {
            // Keep the written orientation when the right side qualifies;
            // otherwise mirror the join so the stored relation is inner.
            let (outer, inner, output, cond, keys, swapped) =
                orient_join(right_inner, left_plan, right_plan, output, cond, keys);
            let relation = bare_scan(&inner).expect("checked above").to_owned();
            let probe = self.best_probe_key(&keys, &relation);
            return Ok(PlanNode::IndexNestedLoopJoin {
                outer: Box::new(outer),
                relation,
                probe,
                output,
                cond,
                swapped,
                est,
            });
        }

        // Hash join: build the table on the smaller estimated side.
        let keep_order = right_plan.est() <= left_plan.est();
        let (left_plan, right_plan, output, cond, keys, swapped) =
            orient_join(keep_order, left_plan, right_plan, output, cond, keys);
        Ok(PlanNode::HashJoin {
            left: Box::new(left_plan),
            right: Box::new(right_plan),
            output,
            cond,
            keys,
            swapped,
            est,
        })
    }

    /// The cross equality whose inner component has the most distinct values
    /// (most selective index probe).
    fn best_probe_key(&self, keys: &[(Pos, Pos)], relation: &str) -> (Pos, Pos) {
        let distinct = self
            .store
            .relation_with_index(relation)
            .map(|(base, ix)| ix.distinct_counts(base))
            .unwrap_or([1, 1, 1]);
        *keys
            .iter()
            .max_by_key(|(_, rp)| distinct[rp.component_index()])
            .expect("keyed joins have at least one key")
    }

    /// Textbook join cardinality: `|L|·|R| / Π max(V(L,a), V(R,b))` over the
    /// equality keys, degraded by the remaining conditions' selectivity.
    fn join_est(
        &self,
        left: &PlanNode,
        right: &PlanNode,
        keys: &[(Pos, Pos)],
        cond: &Conditions,
    ) -> usize {
        let l = left.est().max(1);
        let r = right.est().max(1);
        let l_stats = self.scan_stats(left);
        let r_stats = self.scan_stats(right);
        let mut est = l.saturating_mul(r) as f64;
        for (lp, rp) in keys {
            let vl = l_stats
                .map(|(_, d)| d[lp.component_index()])
                .unwrap_or_else(|| l.min(1000));
            let vr = r_stats
                .map(|(_, d)| d[rp.component_index()])
                .unwrap_or_else(|| r.min(1000));
            est /= vl.max(vr).max(1) as f64;
        }
        let non_key = cond.len().saturating_sub(keys.len());
        est *= 0.5f64.powi(non_key as i32);
        (est.ceil() as usize).max(1)
    }
}

/// The two join arguments in execution order: `(probe/outer, build/inner,
/// output, cond, keys, swapped)`. With `keep_order` the written orientation
/// is preserved; otherwise the arguments are swapped through the mirroring
/// identity and the keys are re-derived from the mirrored conditions.
fn orient_join(
    keep_order: bool,
    left_plan: PlanNode,
    right_plan: PlanNode,
    output: &trial_core::OutputSpec,
    cond: &Conditions,
    keys: Vec<(Pos, Pos)>,
) -> (
    PlanNode,
    PlanNode,
    trial_core::OutputSpec,
    Conditions,
    Vec<(Pos, Pos)>,
    bool,
) {
    if keep_order {
        (left_plan, right_plan, *output, cond.clone(), keys, false)
    } else {
        let cond = cond.mirrored();
        let mut keys = cond.cross_equalities();
        keys.sort();
        keys.dedup();
        (right_plan, left_plan, output.mirrored(), cond, keys, true)
    }
}

/// The relation name if `node` scans a stored relation without binding or
/// residual filter.
fn bare_scan(node: &PlanNode) -> Option<&str> {
    match node {
        PlanNode::IndexScan {
            relation,
            bound: None,
            residual,
            ..
        } if residual.is_empty() => Some(relation),
        _ => None,
    }
}

/// Star output estimate: between the base size and the universal relation.
fn star_est(input_est: usize, universe_est: usize) -> usize {
    input_est
        .saturating_mul(input_est)
        .min(universe_est)
        .max(input_est)
}

/// Selection selectivity heuristic: equalities keep ~20% of rows,
/// inequalities ~80%.
///
/// Returns 0 only when the input is **provably empty** (`input_est == 0`);
/// otherwise every intermediate is clamped to at least one row, so a long
/// chain of equalities cannot underflow a nonzero estimate to 0 — an
/// estimate [`push_limit`] and the Empty-propagation rewrites would treat
/// as "no rows ever", turning a mis-estimate into a wrong plan shape.
fn selectivity_est(input_est: usize, cond: &Conditions) -> usize {
    if input_est == 0 {
        return 0;
    }
    let mut est = input_est as f64;
    for atom in &cond.theta {
        est = (est
            * match atom.cmp {
                Cmp::Eq => 0.2,
                Cmp::Neq => 0.8,
            })
        .max(1.0);
    }
    for atom in &cond.eta {
        est = (est
            * match atom.cmp {
                Cmp::Eq => 0.25,
                Cmp::Neq => 0.75,
            })
        .max(1.0);
    }
    est.ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEngine;
    use trial_core::builder::{queries, ExprBuilderExt};
    use trial_core::{Conditions, TriplestoreBuilder};

    fn figure1() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in [
            ("St.Andrews", "BusOp1", "Edinburgh"),
            ("Edinburgh", "TrainOp1", "London"),
            ("London", "TrainOp2", "Brussels"),
            ("BusOp1", "part_of", "NatExpress"),
            ("TrainOp1", "part_of", "EastCoast"),
            ("TrainOp2", "part_of", "Eurostar"),
            ("EastCoast", "part_of", "NatExpress"),
        ] {
            b.add_triple("E", s, p, o);
        }
        b.finish()
    }

    /// A mixed bag of expressions covering every operator.
    fn expression_zoo() -> Vec<Expr> {
        vec![
            Expr::rel("E"),
            queries::example2("E"),
            queries::example2_extended("E"),
            queries::reach_forward("E"),
            queries::reach_same_label("E"),
            queries::reach_down("E"),
            queries::same_company_reachability("E"),
            queries::at_least_four_objects(),
            queries::at_least_six_objects(),
            Expr::rel("E").complement(),
            Expr::rel("E")
                .select(Conditions::new().obj_eq_const(trial_core::Pos::L2, "part_of"))
                .reach_forward(),
            Expr::rel("E").intersect_via_join(queries::example2("E")),
            Expr::rel("E").minus(queries::example2("E")),
            Expr::Universe.minus(Expr::rel("E")),
            Expr::Empty.union(Expr::rel("E")),
        ]
    }

    /// A synthetic store large enough to clear morsel thresholds.
    fn grid(n: u32) -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for i in 0..n {
            b.add_triple(
                "E",
                format!("s{}", i % 50),
                format!("p{}", i % 7),
                format!("o{i}"),
            );
        }
        // Predicates double as subjects so self-joins on 2=1' are nonempty.
        for p in 0..7 {
            b.add_triple("E", format!("p{p}"), "part_of", "hub");
        }
        b.finish()
    }

    #[test]
    fn channel_yields_exactly_the_stream_rows() {
        let store = grid(4_000);
        let exprs = [
            Expr::rel("E"),
            Expr::rel("E").select(Conditions::new().obj_eq_const(trial_core::Pos::L2, "p3")),
            queries::example2("E"),
        ];
        for threads in [1usize, 4] {
            let engine = SmartEngine::with_options(EvalOptions {
                threads,
                parallel_min_rows: 64,
                ..EvalOptions::default()
            });
            for expr in &exprs {
                for order in [None, Some(Permutation::Pos)] {
                    for limit in [None, Some(100)] {
                        let mut reference = engine
                            .stream_query(expr, &store, limit, order, None)
                            .unwrap();
                        let mut expected = Vec::new();
                        while let Some(t) = reference.next_triple() {
                            expected.push(t);
                        }
                        let stream = engine
                            .stream_query(expr, &store, limit, order, None)
                            .unwrap();
                        let (got, stats) = stream.channel(4, |exchange| {
                            let mut rows = Vec::new();
                            while let Some(t) = exchange.next_triple() {
                                rows.push(t);
                            }
                            rows
                        });
                        assert_eq!(
                            got, expected,
                            "channel diverged: {expr} threads={threads} order={order:?} limit={limit:?}"
                        );
                        let _ = stats;
                    }
                }
            }
        }
    }

    #[test]
    fn channel_fans_out_over_ordered_scans() {
        let store = grid(4_000);
        let engine = SmartEngine::with_options(EvalOptions {
            threads: 4,
            parallel_min_rows: 64,
            ..EvalOptions::default()
        });
        let stream = engine
            .stream_query(&Expr::rel("E"), &store, None, Some(Permutation::Spo), None)
            .unwrap();
        assert!(stream.parallelized(), "plain ordered scan should fan out");
        let (count, stats) = stream.channel(4, |exchange| {
            let mut n = 0u64;
            while exchange.next_triple().is_some() {
                n += 1;
            }
            n
        });
        assert_eq!(count, 4_007);
        assert!(stats.parallel_morsels > 0);
        // A join root has no contiguous morsels: single-producer fallback.
        let joined = engine
            .stream_query(&queries::example2("E"), &store, None, None, None)
            .unwrap();
        assert!(!joined.parallelized());
    }

    #[test]
    fn dropping_the_channel_consumer_terminates_producers() {
        let store = grid(4_000);
        for threads in [1usize, 4] {
            let engine = SmartEngine::with_options(EvalOptions {
                threads,
                parallel_min_rows: 64,
                ..EvalOptions::default()
            });
            let stream = engine
                .stream_query(&Expr::rel("E"), &store, None, Some(Permutation::Spo), None)
                .unwrap();
            // Consume three rows, then hang up: channel() must return (the
            // scope joins every producer) rather than deadlock on a full
            // lane.
            let (got, _stats) = stream.channel(1, |exchange| {
                (0..3).filter_map(|_| exchange.next_triple()).count()
            });
            assert_eq!(got, 3, "threads={threads}");
        }
    }

    #[test]
    fn stream_query_after_resumes_without_replay() {
        let store = grid(500);
        let engine = SmartEngine::new();
        let exprs = [
            Expr::rel("E"),
            Expr::rel("E").select(Conditions::new().obj_eq_const(trial_core::Pos::L2, "p3")),
            // Join output needs an explicit sort: exercises the skip
            // fallback rather than the storage-layer seek.
            queries::example2("E"),
        ];
        for expr in &exprs {
            for order in Permutation::ALL {
                let mut full = engine
                    .stream_query(expr, &store, None, Some(order), None)
                    .unwrap();
                let mut all = Vec::new();
                while let Some(t) = full.next_triple() {
                    all.push(t);
                }
                assert!(!all.is_empty(), "empty reference for {expr}");
                for i in [0, all.len() / 2, all.len() - 1] {
                    let after = order.key(&all[i]);
                    let mut resumed = engine
                        .stream_query_after(expr, &store, None, order, after)
                        .unwrap();
                    let mut rest = Vec::new();
                    while let Some(t) = resumed.next_triple() {
                        rest.push(t);
                    }
                    assert_eq!(rest, all[i + 1..].to_vec(), "{expr} order={order} i={i}");
                    // A limited resume yields the next page exactly.
                    let mut page = engine
                        .stream_query_after(expr, &store, Some(3), order, after)
                        .unwrap();
                    let mut rows = Vec::new();
                    while let Some(t) = page.next_triple() {
                        rows.push(t);
                    }
                    let want: Vec<trial_core::Triple> =
                        all[i + 1..].iter().take(3).copied().collect();
                    assert_eq!(rows, want, "{expr} order={order} i={i} (paged)");
                }
            }
        }
    }

    #[test]
    fn smart_and_naive_agree_on_figure1() {
        let store = figure1();
        let smart = SmartEngine::new();
        let naive = NaiveEngine::new();
        for expr in expression_zoo() {
            let a = smart.run(&expr, &store).unwrap();
            let b = naive.run(&expr, &store).unwrap();
            assert_eq!(a, b, "engines disagree on {expr}");
        }
    }

    #[test]
    fn unoptimized_plans_agree_too() {
        let store = figure1();
        let smart = SmartEngine::with_options(EvalOptions {
            optimize_plans: false,
            ..EvalOptions::default()
        });
        let naive = NaiveEngine::new();
        for expr in expression_zoo() {
            let a = smart.run(&expr, &store).unwrap();
            let b = naive.run(&expr, &store).unwrap();
            assert_eq!(a, b, "engines disagree on {expr}");
        }
    }

    #[test]
    fn smart_engine_does_less_join_work() {
        let store = figure1();
        let q = queries::same_company_reachability("E");
        let smart = SmartEngine::new().evaluate(&q, &store).unwrap();
        let naive = NaiveEngine::new().evaluate(&q, &store).unwrap();
        assert_eq!(smart.result, naive.result);
        assert!(smart.stats.work() <= naive.stats.work());
    }

    #[test]
    fn reach_specialisation_can_be_disabled() {
        let store = figure1();
        let q = queries::reach_forward("E");
        let with = SmartEngine::new().evaluate(&q, &store).unwrap();
        let without = SmartEngine::with_options(EvalOptions {
            use_reach_specialisation: false,
            ..EvalOptions::default()
        })
        .evaluate(&q, &store)
        .unwrap();
        assert_eq!(with.result, without.result);
        // The specialised path traverses edges; the generic path does joins.
        assert!(with.stats.reach_edges_traversed > 0);
        assert_eq!(without.stats.reach_edges_traversed, 0);
        assert!(without.stats.fixpoint_rounds > 0);
    }

    #[test]
    fn memo_avoids_recomputation() {
        let store = figure1();
        // example2_extended evaluates example2 twice.
        let q = queries::example2_extended("E");
        let with = SmartEngine::new().evaluate(&q, &store).unwrap();
        assert!(with.stats.memo_hits >= 1);
        let without = SmartEngine::with_options(EvalOptions {
            use_memo: false,
            ..EvalOptions::default()
        })
        .evaluate(&q, &store)
        .unwrap();
        assert_eq!(with.result, without.result);
        assert_eq!(without.stats.memo_hits, 0);
    }

    #[test]
    fn top_level_helpers() {
        let store = figure1();
        let eval = evaluate(&queries::example2("E"), &store).unwrap();
        assert_eq!(eval.result.len(), 3);
        let eval2 = evaluate_with(
            &queries::example2("E"),
            &store,
            EvalOptions {
                use_memo: false,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert_eq!(eval.result, eval2.result);
    }

    #[test]
    fn same_label_specialisation_used_for_labelled_reach() {
        let store = figure1();
        let q = queries::reach_same_label("E");
        let eval = SmartEngine::new().evaluate(&q, &store).unwrap();
        let naive = NaiveEngine::new().run(&q, &store).unwrap();
        assert_eq!(eval.result, naive);
        assert!(eval.stats.reach_edges_traversed > 0);
    }

    #[test]
    fn selections_are_pushed_into_index_scans() {
        let store = figure1();
        let q =
            Expr::rel("E").select(Conditions::new().obj_eq_const(trial_core::Pos::L2, "part_of"));
        let plan = SmartEngine::new().plan(&q, &store).unwrap();
        match &plan.root {
            PlanNode::IndexScan {
                bound: Some((component, _)),
                residual,
                ..
            } => {
                assert_eq!(*component, 1);
                assert!(residual.is_empty());
            }
            other => panic!("expected a bound IndexScan, got:\n{}", other.explain()),
        }
        // An unknown constant folds the scan to Empty.
        let q = Expr::rel("E").select(Conditions::new().obj_eq_const(trial_core::Pos::L2, "nope"));
        let plan = SmartEngine::new().plan(&q, &store).unwrap();
        assert_eq!(plan.root, PlanNode::Empty);
        assert!(SmartEngine::new().run(&q, &store).unwrap().is_empty());
    }

    #[test]
    fn nested_selections_merge() {
        let store = figure1();
        let q = Expr::rel("E")
            .select(Conditions::new().obj_eq_const(trial_core::Pos::L2, "part_of"))
            .select(Conditions::new().obj_neq(trial_core::Pos::L1, trial_core::Pos::L3));
        let plan = SmartEngine::new().plan(&q, &store).unwrap();
        match &plan.root {
            PlanNode::IndexScan {
                bound: Some(_),
                residual,
                ..
            } => assert_eq!(residual.len(), 1),
            other => panic!("expected one bound IndexScan, got:\n{}", other.explain()),
        }
        let smart = SmartEngine::new().run(&q, &store).unwrap();
        let naive = NaiveEngine::new().run(&q, &store).unwrap();
        assert_eq!(smart, naive);
    }

    #[test]
    fn joins_against_relations_use_the_index() {
        let store = figure1();
        // E ✶ E with an equality key: both sides are stored relations whose
        // permutations deliver the key order for free, so the planner merges
        // POS against SPO instead of probing or hashing.
        let plan = SmartEngine::new()
            .plan(&queries::example2("E"), &store)
            .unwrap();
        match &plan.root {
            PlanNode::MergeJoin {
                left, right, key, ..
            } => {
                assert_eq!(*key, (Pos::L2, Pos::R1));
                assert_eq!(left.ordering(), Some(trial_core::Permutation::Pos));
                assert_eq!(right.ordering(), Some(trial_core::Permutation::Spo));
            }
            other => panic!("expected MergeJoin, got:\n{}", other.explain()),
        }
        // With merge joins disabled the same query probes the cached
        // permutation index (the historical plan shape).
        let plan = SmartEngine::with_options(EvalOptions {
            use_merge_join: false,
            ..EvalOptions::default()
        })
        .plan(&queries::example2("E"), &store)
        .unwrap();
        match &plan.root {
            PlanNode::IndexNestedLoopJoin {
                relation, probe, ..
            } => {
                assert_eq!(relation, "E");
                assert_eq!(*probe, (Pos::L2, Pos::R1));
            }
            other => panic!("expected IndexNestedLoopJoin, got:\n{}", other.explain()),
        }
        // A bound scan (pinned to the bound component's POS run) delivers
        // the key component 3 through its *secondary* order — a bound POS
        // run is also OSP-sorted — so on this small store (where the
        // factor-8 probe gate does not fire) the join merges OSP against
        // SPO with no sort and no hash table.
        let probing = Expr::rel("E")
            .select(Conditions::new().obj_eq_const(Pos::L2, "part_of"))
            .join(
                Expr::rel("E"),
                trial_core::output(Pos::L1, Pos::L2, Pos::R3),
                Conditions::new().obj_eq(Pos::L3, Pos::R1),
            );
        let plan = SmartEngine::new().plan(&probing, &store).unwrap();
        match &plan.root {
            PlanNode::MergeJoin {
                left, right, key, ..
            } => {
                assert_eq!(*key, (Pos::L3, Pos::R1));
                assert_eq!(left.ordering(), Some(trial_core::Permutation::Osp));
                assert_eq!(right.ordering(), Some(trial_core::Permutation::Spo));
            }
            other => panic!("expected MergeJoin, got:\n{}", other.explain()),
        }
        // When the bound outer is ≫ smaller than the two runs a merge would
        // read end-to-end, the index nested-loop probe still wins.
        let mut big = TriplestoreBuilder::new();
        for i in 0..40 {
            big.add_triple("E", format!("s{i}"), format!("p{i}"), format!("o{i}"));
        }
        big.add_triple("E", "TrainOp1", "part_of", "EastCoast");
        let big = big.finish();
        let plan = SmartEngine::new().plan(&probing, &big).unwrap();
        assert!(
            matches!(plan.root, PlanNode::IndexNestedLoopJoin { .. }),
            "expected IndexNestedLoopJoin, got:\n{}",
            plan.root.explain()
        );
        // Without a hashable key the join stays a nested loop.
        let neq = Expr::rel("E").join(
            Expr::rel("E"),
            trial_core::output(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new().obj_neq(Pos::L1, Pos::R1),
        );
        let plan = SmartEngine::new().plan(&neq, &store).unwrap();
        assert!(matches!(plan.root, PlanNode::NestedLoopJoin { .. }));
    }

    #[test]
    fn hash_join_builds_on_the_smaller_side() {
        let store = figure1();
        // Left side: a filtered (smaller) derivation; right side: the full
        // relation twice joined (larger estimate). Neither side qualifies
        // for an index probe once filtered, so a HashJoin is chosen and the
        // smaller side must end up as the build (right) input.
        let small = Expr::rel("E").select(Conditions::new().obj_eq_const(Pos::L2, "part_of"));
        let big = Expr::rel("E").join(
            Expr::rel("E"),
            trial_core::output(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new()
                .obj_eq(Pos::L3, Pos::R1)
                .data_eq(Pos::L1, Pos::R3),
        );
        let q = big.clone().join(
            small.clone(),
            trial_core::output(Pos::L1, Pos::L2, Pos::R3),
            Conditions::new().obj_eq(Pos::L3, Pos::R1),
        );
        let plan = SmartEngine::new().plan(&q, &store).unwrap();
        match &plan.root {
            PlanNode::HashJoin {
                left,
                right,
                swapped,
                ..
            } => {
                assert!(right.est() <= left.est(), "build side should be smaller");
                assert!(!swapped, "written order already had the smaller side right");
            }
            PlanNode::IndexNestedLoopJoin { .. } => {
                panic!("filtered sides must not be index-probed")
            }
            other => panic!("expected HashJoin, got:\n{}", other.explain()),
        }
        let smart = SmartEngine::new().run(&q, &store).unwrap();
        let naive = NaiveEngine::new().run(&q, &store).unwrap();
        assert_eq!(smart, naive);
    }

    #[test]
    fn explain_covers_every_operator() {
        let store = figure1();
        let q = queries::example2("E")
            .union(queries::reach_forward("E"))
            .minus(Expr::rel("E").complement())
            .intersect(Expr::Universe)
            .select(Conditions::new().obj_neq(trial_core::Pos::L1, trial_core::Pos::L2));
        let text = explain(&q, &store).unwrap();
        for needle in [
            "Intersect",
            "Diff",
            "Union",
            "Complement",
            "Universe",
            "IndexScan",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn streaming_and_materialized_execution_agree() {
        let store = figure1();
        let streaming = SmartEngine::new();
        let materialized = SmartEngine::with_options(EvalOptions {
            streaming: false,
            ..EvalOptions::default()
        });
        for expr in expression_zoo() {
            let a = streaming.run(&expr, &store).unwrap();
            let b = materialized.run(&expr, &store).unwrap();
            assert_eq!(a, b, "execution modes disagree on {expr}");
        }
    }

    #[test]
    fn limits_push_through_unions_and_fold() {
        let store = figure1();
        let q = Expr::rel("E").union(queries::example2("E"));
        let plan = SmartEngine::new()
            .plan_limited(&q, &store, Some(2))
            .unwrap();
        // Limit(2) over the union, and each union child individually limited.
        let PlanNode::Limit {
            input, limit: 2, ..
        } = &plan.root
        else {
            panic!("expected a root Limit, got:\n{}", plan.root.explain());
        };
        let PlanNode::Union { left, right, .. } = &**input else {
            panic!(
                "expected a Union under the Limit, got:\n{}",
                input.explain()
            );
        };
        assert!(matches!(&**left, PlanNode::Limit { limit: 2, .. }));
        assert!(matches!(&**right, PlanNode::Limit { limit: 2, .. }));
        // Limit 0 folds the whole tree to Empty.
        let empty = SmartEngine::new()
            .plan_limited(&q, &store, Some(0))
            .unwrap();
        assert_eq!(empty.root, PlanNode::Empty);
        // No limit plans identically to plan().
        let unlimited = SmartEngine::new().plan_limited(&q, &store, None).unwrap();
        assert_eq!(unlimited, SmartEngine::new().plan(&q, &store).unwrap());
    }

    #[test]
    fn streams_deliver_distinct_triples_and_stop_at_the_limit() {
        let store = figure1();
        let engine = SmartEngine::new();
        for expr in expression_zoo() {
            let full = engine.run(&expr, &store).unwrap();
            for limit in [0usize, 1, 3, usize::MAX] {
                let mut stream = engine.stream(&expr, &store, Some(limit)).unwrap();
                let mut got = Vec::new();
                while let Some(t) = stream.next_triple() {
                    got.push(t);
                }
                let expected = full.len().min(limit);
                assert_eq!(got.len(), expected, "wrong row count for {expr} @ {limit}");
                // Distinct and a subset of the full result.
                let as_set: trial_core::TripleSet = got.iter().copied().collect();
                assert_eq!(as_set.len(), got.len(), "duplicates streamed for {expr}");
                assert!(got.iter().all(|t| full.contains(t)));
            }
            // An unlimited stream reproduces the full result exactly.
            let (set, _) = engine.stream(&expr, &store, None).unwrap().collect_set();
            assert_eq!(set, full, "unlimited stream diverges on {expr}");
        }
    }

    #[test]
    fn bounded_streams_skip_work() {
        let store = figure1();
        let engine = SmartEngine::new();
        let q = queries::example2("E");
        let full = engine.evaluate(&q, &store).unwrap();
        let mut stream = engine.stream(&q, &store, Some(1)).unwrap();
        assert!(stream.next_triple().is_some());
        assert!(
            stream.stats().work() < full.stats.work(),
            "bounded stream should do strictly less work ({} vs {})",
            stream.stats().work(),
            full.stats.work()
        );
        // Counting drains everything without building a result set.
        let (count, _) = engine.stream(&q, &store, None).unwrap().count();
        assert_eq!(count as usize, full.result.len());
    }

    #[test]
    fn selections_push_through_set_operations() {
        let store = figure1();
        let cond = Conditions::new().obj_eq_const(trial_core::Pos::L2, "part_of");
        let q = Expr::rel("E").union(Expr::rel("E")).select(cond.clone());
        let plan = SmartEngine::new().plan(&q, &store).unwrap();
        // The selection reaches both scans as index bindings.
        let PlanNode::Union { left, right, .. } = &plan.root else {
            panic!("expected Union at the root, got:\n{}", plan.root.explain());
        };
        for side in [&**left, &**right] {
            assert!(
                matches!(side, PlanNode::IndexScan { bound: Some(_), .. }),
                "expected a bound IndexScan, got:\n{}",
                side.explain()
            );
        }
        let smart = SmartEngine::new().run(&q, &store).unwrap();
        let naive = NaiveEngine::new().run(&q, &store).unwrap();
        assert_eq!(smart, naive);
        // Same law for difference and intersection.
        for q in [
            Expr::rel("E")
                .minus(queries::example2("E"))
                .select(cond.clone()),
            Expr::rel("E")
                .intersect(queries::example2("E"))
                .select(cond.clone()),
        ] {
            let smart = SmartEngine::new().run(&q, &store).unwrap();
            let naive = NaiveEngine::new().run(&q, &store).unwrap();
            assert_eq!(smart, naive, "pushdown broke {q}");
        }
    }

    #[test]
    fn explain_marks_pipeline_boundaries() {
        let store = figure1();
        let q = queries::example2("E").union(queries::reach_forward("E"));
        let plan = SmartEngine::new()
            .plan_limited(&q, &store, Some(5))
            .unwrap();
        let text = plan.explain();
        assert!(text.contains("Limit 5"), "{text}");
        assert!(text.contains("[pipelined]"), "{text}");
        assert!(text.contains("[breaker]"), "{text}");
    }

    #[test]
    fn parallel_execution_agrees_with_every_engine() {
        let store = figure1();
        let sequential = SmartEngine::with_options(EvalOptions {
            threads: 1,
            ..EvalOptions::default()
        });
        for threads in [2usize, 4] {
            // parallel_min_rows: 0 forces the morsel paths even on the tiny
            // Figure 1 store, so this exercises the real worker pool.
            let parallel = SmartEngine::with_options(EvalOptions {
                threads,
                parallel_min_rows: 0,
                ..EvalOptions::default()
            });
            let mut saw_morsels = false;
            for expr in expression_zoo() {
                let seq = sequential.evaluate(&expr, &store).unwrap();
                let par = parallel.evaluate(&expr, &store).unwrap();
                assert_eq!(
                    seq.result, par.result,
                    "parallel diverges at {threads} threads on {expr}"
                );
                assert_eq!(seq.stats.parallel_morsels, 0);
                saw_morsels |= par.stats.parallel_morsels > 0;
                // The non-streaming reference interpreter parallelises too.
                let par_mat = SmartEngine::with_options(EvalOptions {
                    streaming: false,
                    ..parallel.options.clone()
                })
                .evaluate(&expr, &store)
                .unwrap();
                assert_eq!(
                    seq.result, par_mat.result,
                    "materialized diverges on {expr}"
                );
            }
            assert!(saw_morsels, "the parallel paths never ran");
        }
    }

    #[test]
    fn parallel_sides_share_memo_slots() {
        // Both union sides are the same memoizable star: with overlapping
        // side evaluation the sibling executors must share the memo slot, so
        // the closure is computed exactly once (one side computes under the
        // slot lock, the other blocks and then hits) and work counters stay
        // identical to the single-threaded run.
        let store = figure1();
        let q = queries::reach_forward("E").union(queries::reach_forward("E"));
        let seq = SmartEngine::with_options(EvalOptions {
            threads: 1,
            ..EvalOptions::default()
        })
        .evaluate(&q, &store)
        .unwrap();
        for threads in [2usize, 4] {
            let par = SmartEngine::with_options(EvalOptions {
                threads,
                parallel_min_rows: 0,
                ..EvalOptions::default()
            })
            .evaluate(&q, &store)
            .unwrap();
            assert_eq!(seq.result, par.result);
            assert_eq!(
                seq.stats.reach_edges_traversed, par.stats.reach_edges_traversed,
                "memoized star recomputed at {threads} threads"
            );
            assert_eq!(seq.stats.pairs_considered, par.stats.pairs_considered);
            assert_eq!(seq.stats.memo_hits, par.stats.memo_hits);
            assert!(par.stats.memo_hits >= 1);
        }
    }

    #[test]
    fn parallel_streams_respect_limits() {
        let store = figure1();
        let parallel = SmartEngine::with_options(EvalOptions {
            threads: 4,
            parallel_min_rows: 0,
            ..EvalOptions::default()
        });
        let sequential = SmartEngine::with_options(EvalOptions {
            threads: 1,
            ..EvalOptions::default()
        });
        for expr in expression_zoo() {
            let full = sequential.run(&expr, &store).unwrap();
            for limit in [0usize, 1, 3, usize::MAX] {
                let par = parallel
                    .evaluate_limited(&expr, &store, Some(limit))
                    .unwrap()
                    .result;
                let seq = sequential
                    .evaluate_limited(&expr, &store, Some(limit))
                    .unwrap()
                    .result;
                assert_eq!(
                    par.len(),
                    full.len().min(limit),
                    "length for {expr}@{limit}"
                );
                // The limited pipeline is the sequential fallback, so the
                // *same* triples come back regardless of the thread count.
                assert_eq!(par, seq, "limited results diverge on {expr}@{limit}");
            }
        }
    }

    #[test]
    fn explain_tags_parallel_operators() {
        let store = figure1();
        let q = queries::example2("E");
        let parallel = SmartEngine::with_options(EvalOptions {
            threads: 4,
            ..EvalOptions::default()
        });
        let text = parallel.plan(&q, &store).unwrap().explain();
        assert!(text.contains("[parallel×4]"), "missing tag in:\n{text}");
        let sequential = SmartEngine::with_options(EvalOptions {
            threads: 1,
            ..EvalOptions::default()
        });
        let text = sequential.plan(&q, &store).unwrap().explain();
        assert!(!text.contains("parallel"), "unexpected tag in:\n{text}");
    }

    #[test]
    fn evaluate_analyzed_reports_per_node_actuals() {
        let store = figure1();
        let engine = SmartEngine::new();
        let q = queries::example2("E");
        let analyzed = engine.evaluate_analyzed(&q, &store, None).unwrap();
        let nodes = analyzed.plan.root.preorder();
        assert_eq!(analyzed.actuals.len(), nodes.len());
        // Every node materialised individually: all actuals present, and the
        // root's actual equals the result cardinality.
        assert!(analyzed.actuals.iter().all(Option::is_some));
        assert_eq!(
            analyzed.actuals[0],
            Some(analyzed.evaluation.result.len() as u64)
        );
        // The analyzed run returns the same result as a plain evaluation.
        assert_eq!(analyzed.evaluation.result, engine.run(&q, &store).unwrap());
        // Under a limit, the limit node reports its actual while the
        // streamed subtree beneath it reports None.
        let analyzed = engine.evaluate_analyzed(&q, &store, Some(1)).unwrap();
        assert!(matches!(analyzed.plan.root, PlanNode::Limit { .. }));
        assert_eq!(analyzed.actuals[0], Some(1));
        assert!(analyzed.actuals[1..].iter().all(Option::is_none));
        // Actual collection also works on a parallel run.
        let parallel = SmartEngine::with_options(EvalOptions {
            threads: 4,
            parallel_min_rows: 0,
            ..EvalOptions::default()
        });
        let a = parallel.evaluate_analyzed(&q, &store, None).unwrap();
        assert!(a.actuals.iter().all(Option::is_some));
        assert_eq!(a.evaluation.result, engine.run(&q, &store).unwrap());
    }

    #[test]
    fn evaluate_analyzed_reports_per_node_profiles() {
        let store = figure1();
        let engine = SmartEngine::new();
        let q = queries::example2("E");
        let analyzed = engine.evaluate_analyzed(&q, &store, None).unwrap();
        let nodes = analyzed.plan.root.preorder();
        assert_eq!(analyzed.profiles.len(), nodes.len());
        // Materialised analyze: profile rows mirror the actuals exactly.
        for (profile, actual) in analyzed.profiles.iter().zip(&analyzed.actuals) {
            assert_eq!(profile.rows, *actual);
        }
        // Inclusive timing: no child can have spent longer than the root.
        let root_us = analyzed.profiles[0].elapsed_us;
        assert!(analyzed
            .profiles
            .iter()
            .all(|p| p.elapsed_us <= root_us.max(1)));
        // Under a limit the subtree streams: actuals are None but the
        // profiles still report rows pulled through each cursor, and the
        // root's streamed row count equals the limit.
        let analyzed = engine.evaluate_analyzed(&q, &store, Some(1)).unwrap();
        assert!(matches!(analyzed.plan.root, PlanNode::Limit { .. }));
        assert_eq!(analyzed.profiles[0].rows, Some(1));
        assert!(analyzed.profiles.iter().all(|p| p.rows.is_some()));
        assert!(analyzed.actuals[1..].iter().all(Option::is_none));
    }

    #[test]
    fn sampled_streams_expose_query_profiles() {
        let store = figure1();
        let engine = SmartEngine::with_options(EvalOptions {
            profile_sample: 2,
            ..EvalOptions::default()
        });
        let q = queries::example2("E");
        let mut stream = engine.stream(&q, &store, None).unwrap();
        let profile = stream.profile().expect("profiler active");
        let preorder_len = stream.plan().root.preorder().len();
        let mut rows = 0u64;
        while stream.next_triple().is_some() {
            rows += 1;
        }
        let profiles = profile.snapshot();
        assert_eq!(profiles.len(), preorder_len);
        assert_eq!(profile.stride(), 2);
        // The root cursor flushed on exhaustion: its row count is final.
        assert_eq!(profiles[0].rows, Some(rows));
        // With the profiler off, streams carry no handle.
        let plain = SmartEngine::with_options(EvalOptions {
            profile_sample: 0,
            ..EvalOptions::default()
        });
        assert!(plain.stream(&q, &store, None).unwrap().profile().is_none());
    }

    #[test]
    fn merge_joins_run_without_hash_tables() {
        let store = figure1();
        let q = queries::example2("E");
        let merged = SmartEngine::new().evaluate(&q, &store).unwrap();
        let hashed = SmartEngine::with_options(EvalOptions {
            use_merge_join: false,
            ..EvalOptions::default()
        })
        .evaluate(&q, &store)
        .unwrap();
        let naive = NaiveEngine::new().run(&q, &store).unwrap();
        assert_eq!(merged.result, naive);
        assert_eq!(hashed.result, naive);
        // The acceptance bar: a two-sided ordered scan join allocates no
        // hash table at all.
        assert_eq!(merged.stats.hash_tables_built, 0);
        assert_eq!(merged.stats.joins_executed, 1);
        // The streaming cursor path is equally allocation-free.
        let (set, stats) = SmartEngine::new()
            .stream(&q, &store, None)
            .unwrap()
            .collect_set();
        assert_eq!(set, naive);
        assert_eq!(stats.hash_tables_built, 0);
    }

    #[test]
    fn order_delivery_prefers_index_permutations_over_sorts() {
        use trial_core::Permutation;
        let store = figure1();
        let engine = SmartEngine::new();
        // A bare scan delivers any order by switching permutation: no Sort.
        for perm in Permutation::ALL {
            let plan = engine
                .plan_query(&Expr::rel("E"), &store, None, Some(perm), None)
                .unwrap();
            assert_eq!(plan.root.ordering(), Some(perm), "{}", plan.explain());
            assert!(
                !plan.explain().contains("Sort"),
                "scan order should be free:\n{}",
                plan.explain()
            );
        }
        // A join output has no order to pass through: a Sort breaker lands
        // at the root, tagged with the order it imposes.
        let plan = engine
            .plan_query(
                &queries::example2("E"),
                &store,
                None,
                Some(Permutation::Pos),
                None,
            )
            .unwrap();
        assert!(
            matches!(plan.root, PlanNode::Sort { .. }),
            "{}",
            plan.explain()
        );
        assert_eq!(plan.root.ordering(), Some(Permutation::Pos));
        assert!(plan.explain().contains("[sort pos]"), "{}", plan.explain());
        // Order-preserving operators pass the requirement down to the scans:
        // a union delivers by merge-unioning two re-ordered scans.
        let plan = engine
            .plan_query(
                &Expr::rel("E").union(Expr::rel("E")),
                &store,
                None,
                Some(Permutation::Osp),
                None,
            )
            .unwrap();
        assert!(
            matches!(plan.root, PlanNode::Union { .. }),
            "{}",
            plan.explain()
        );
        assert_eq!(plan.root.ordering(), Some(Permutation::Osp));
    }

    #[test]
    fn ordered_streams_yield_sorted_rows() {
        use trial_core::Permutation;
        let store = figure1();
        let engine = SmartEngine::new();
        for q in [
            Expr::rel("E"),
            Expr::rel("E").union(Expr::rel("E")),
            queries::example2("E"),
            queries::reach_forward("E"),
        ] {
            let full = engine.run(&q, &store).unwrap();
            for perm in Permutation::ALL {
                let mut stream = engine
                    .stream_query(&q, &store, None, Some(perm), None)
                    .unwrap();
                let mut rows = Vec::new();
                while let Some(t) = stream.next_triple() {
                    rows.push(t);
                }
                assert!(
                    rows.windows(2).all(|w| perm.key(&w[0]) < perm.key(&w[1])),
                    "rows not strictly {perm}-sorted for {q}"
                );
                let as_set: trial_core::TripleSet = rows.iter().copied().collect();
                assert_eq!(
                    as_set, full,
                    "ordered stream lost rows for {q} under {perm}"
                );
            }
        }
    }

    #[test]
    fn topk_returns_the_k_smallest_and_folds_to_limits_when_ordered() {
        use trial_core::Permutation;
        let store = figure1();
        let engine = SmartEngine::new();
        let q = queries::example2("E");
        let full = engine.run(&q, &store).unwrap();
        for perm in Permutation::ALL {
            let mut expected = full.as_slice().to_vec();
            expected.sort_unstable_by_key(|t| perm.key(t));
            for k in [0usize, 1, 2, full.len(), full.len() + 5] {
                let eval = engine
                    .evaluate_query(&q, &store, None, Some(perm), Some(k))
                    .unwrap();
                let want: trial_core::TripleSet = expected.iter().take(k).copied().collect();
                assert_eq!(eval.result, want, "top-{k} under {perm} diverges");
                // The bounded heap never buffers more than k rows.
                assert!(
                    eval.stats.topk_buffered_peak <= k as u64,
                    "heap exceeded k: {} > {k}",
                    eval.stats.topk_buffered_peak
                );
            }
        }
        // Over an input that already streams in the requested order, the
        // planner collapses top-k to a plain limit: early termination, no
        // heap at all.
        let plan = engine
            .plan_query(
                &Expr::rel("E"),
                &store,
                None,
                Some(Permutation::Pos),
                Some(3),
            )
            .unwrap();
        assert!(
            matches!(plan.root, PlanNode::Limit { limit: 3, .. }),
            "{}",
            plan.explain()
        );
        let eval = engine
            .evaluate_query(
                &Expr::rel("E"),
                &store,
                None,
                Some(Permutation::Pos),
                Some(3),
            )
            .unwrap();
        assert_eq!(
            eval.stats.topk_buffered_peak, 0,
            "limit path must skip the heap"
        );
        assert_eq!(eval.result.len(), 3);
    }

    #[test]
    fn plans_stay_stable_for_repeated_calls() {
        let store = figure1();
        let q = queries::same_company_reachability("E");
        let p1 = SmartEngine::new().plan(&q, &store).unwrap();
        let p2 = SmartEngine::new().plan(&q, &store).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.explain(), p2.explain());
    }

    #[test]
    fn bound_scans_merge_against_each_other_via_secondary_orders() {
        // Two label-bound scans joined on their third components: each bound
        // POS run is also OSP-sorted, so the planner merges OSP against OSP
        // with no sort and no hash table.
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in [
            ("a", "x", "c"),
            ("d", "x", "e"),
            ("g", "x", "h"),
            ("b", "y", "c"),
            ("f", "y", "e"),
            ("i", "z", "c"),
        ] {
            b.add_triple("E", s, p, o);
        }
        let store = b.finish();
        let q = Expr::rel("E")
            .select(Conditions::new().obj_eq_const(Pos::L2, "x"))
            .join(
                Expr::rel("E").select(Conditions::new().obj_eq_const(Pos::L2, "y")),
                trial_core::OutputSpec::IDENTITY,
                Conditions::new().obj_eq(Pos::L3, Pos::R3),
            );
        let plan = SmartEngine::new().plan(&q, &store).unwrap();
        match &plan.root {
            PlanNode::MergeJoin {
                left, right, key, ..
            } => {
                assert_eq!(*key, (Pos::L3, Pos::R3));
                assert_eq!(left.ordering(), Some(trial_core::Permutation::Osp));
                assert_eq!(right.ordering(), Some(trial_core::Permutation::Osp));
                // Identity output: the merge itself claims the left order.
                assert_eq!(plan.root.ordering(), Some(trial_core::Permutation::Osp));
            }
            other => panic!("expected MergeJoin, got:\n{}", other.explain()),
        }
        assert!(
            plan.root
                .preorder()
                .iter()
                .all(|n| !matches!(n, PlanNode::Sort { .. })),
            "no sort should be needed:\n{}",
            plan.explain()
        );
        let eval = SmartEngine::new()
            .evaluate_query(&q, &store, None, None, None)
            .unwrap();
        assert_eq!(eval.stats.hash_tables_built, 0);
        let naive = NaiveEngine::new().run(&q, &store).unwrap();
        assert_eq!(eval.result, naive);
    }

    #[test]
    fn interesting_orders_flip_probes_to_order_delivering_merges() {
        // On a store where the bound outer is tiny the probe gate normally
        // picks an index nested-loop join — which cannot deliver any order.
        let mut b = TriplestoreBuilder::new();
        for i in 0..40 {
            b.add_triple("E", format!("s{i}"), format!("p{i}"), format!("o{i}"));
        }
        b.add_triple("E", "TrainOp1", "part_of", "EastCoast");
        b.add_triple("E", "EastCoast", "part_of", "NatExpress");
        let store = b.finish();
        let q = Expr::rel("E")
            .select(Conditions::new().obj_eq_const(Pos::L2, "part_of"))
            .join(
                Expr::rel("E"),
                trial_core::OutputSpec::IDENTITY,
                Conditions::new().obj_eq(Pos::L3, Pos::R1),
            );
        let engine = SmartEngine::new();
        let cold = engine.plan(&q, &store).unwrap();
        assert!(
            matches!(cold.root, PlanNode::IndexNestedLoopJoin { .. }),
            "without an order request the probe should win:\n{}",
            cold.explain()
        );
        // Requesting OSP order makes the key's order interesting: the bound
        // scan's secondary order delivers it, so the planner flips to a
        // merge join and the requested order arrives sort-free.
        let ordered = engine
            .plan_query(&q, &store, None, Some(Permutation::Osp), None)
            .unwrap();
        match &ordered.root {
            PlanNode::MergeJoin { left, key, .. } => {
                assert_eq!(*key, (Pos::L3, Pos::R1));
                assert_eq!(left.ordering(), Some(trial_core::Permutation::Osp));
            }
            other => panic!("expected MergeJoin, got:\n{}", other.explain()),
        }
        assert!(
            ordered
                .root
                .preorder()
                .iter()
                .all(|n| !matches!(n, PlanNode::Sort { .. })),
            "the interesting order must arrive without a sort:\n{}",
            ordered.explain()
        );
        // Both shapes agree with the naive engine.
        let naive = NaiveEngine::new().run(&q, &store).unwrap();
        assert_eq!(engine.run(&q, &store).unwrap(), naive);
        let eval = engine
            .evaluate_query(&q, &store, None, Some(Permutation::Osp), None)
            .unwrap();
        assert_eq!(eval.result, naive);
    }

    #[test]
    fn selectivity_estimates_never_underflow_nonempty_inputs() {
        // A long chain of equalities decays geometrically but must bottom
        // out at one row while the input is nonempty: rounding to 0 would
        // let Empty-propagation rewrites discard rows that still exist.
        let mut cond = Conditions::new();
        for _ in 0..30 {
            cond = cond.obj_eq(Pos::L1, Pos::L3).data_eq(Pos::L1, Pos::L2);
        }
        assert_eq!(selectivity_est(0, &cond), 0, "provably empty stays empty");
        assert!(selectivity_est(1, &cond) >= 1);
        assert!(selectivity_est(7, &cond) >= 1);
        assert!(selectivity_est(1_000_000, &cond) >= 1);
        assert_eq!(selectivity_est(500, &Conditions::new()), 500);
        // End to end: the heavily-filtered scan plans with a nonzero
        // estimate and does not fold to an Empty node.
        let store = figure1();
        let q = Expr::rel("E").select(cond);
        let plan = SmartEngine::new().plan(&q, &store).unwrap();
        assert!(
            plan.root.est() >= 1,
            "nonempty input must keep est >= 1:\n{}",
            plan.explain()
        );
        assert!(!matches!(plan.root, PlanNode::Empty));
    }

    #[test]
    fn feedback_stats_shrink_estimate_errors_without_changing_results() {
        let store = grid(4_000);
        let stats = Arc::new(StatsStore::new());
        let engine = SmartEngine::with_stats(EvalOptions::default(), Arc::clone(&stats));
        // The heuristic badly over-estimates this self-equality filter
        // (20% of 4 007 rows vs. 0 actual matches), so the first analyzed
        // run reports a large error and teaches the stats store better.
        let q = Expr::rel("E").select(Conditions::new().obj_eq(Pos::L1, Pos::L3));
        let cold = engine.evaluate_analyzed(&q, &store, None).unwrap();
        assert!(
            cold.est_sources.iter().all(|s| !s),
            "a cold engine has no stats to draw on"
        );
        let cold_feedback = cold.feedback.as_ref().expect("stats engine gives feedback");
        assert!(cold_feedback.ingested > 0);
        let warm = engine.evaluate_analyzed(&q, &store, None).unwrap();
        assert!(
            warm.est_sources.iter().any(|s| *s),
            "the second run must use observed estimates"
        );
        assert!(stats.replans() >= 1, "stats-driven replans are counted");
        let err_sum = |s: &crate::stats::ObserveSummary| s.est_errors.iter().sum::<u64>();
        let warm_feedback = warm.feedback.as_ref().unwrap();
        assert!(
            err_sum(warm_feedback) < err_sum(cold_feedback),
            "estimate error must shrink: cold {:?} vs warm {:?}",
            cold_feedback.est_errors,
            warm_feedback.est_errors
        );
        // Feedback changes estimates, never answers.
        assert_eq!(cold.evaluation.result, warm.evaluation.result);
        let naive = NaiveEngine::new().run(&q, &store).unwrap();
        assert_eq!(warm.evaluation.result, naive);
    }
}
