//! The [`Engine`] trait, evaluation options and instrumentation counters.

use crate::cancel::CancelToken;
use trial_core::{Expr, Result, TripleSet, Triplestore};

/// Counters describing *how much work* an evaluation performed.
///
/// The paper's complexity results (Theorem 3, Propositions 4 and 5) are
/// statements about the number of elementary steps, not about wall-clock
/// time on a particular machine. Engines therefore count their dominant
/// operations so that benchmarks can verify the *shape* of the bounds
/// (quadratic vs. cubic vs. `|O|·|T|`) directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Candidate pairs of triples inspected by join operators (the inner
    /// loop of Procedure 1 / the probe count of a hash join).
    pub pairs_considered: u64,
    /// Triples emitted by joins and selections before deduplication.
    pub triples_emitted: u64,
    /// Triples scanned by selections and set operations.
    pub triples_scanned: u64,
    /// Fixpoint rounds executed across all Kleene stars.
    pub fixpoint_rounds: u64,
    /// Number of join operations executed (including the joins performed
    /// inside star fixpoints).
    pub joins_executed: u64,
    /// Edges traversed by the specialised reachability procedures of
    /// Proposition 5 (BFS relaxations).
    pub reach_edges_traversed: u64,
    /// Sub-expression evaluations answered from the memo cache.
    pub memo_hits: u64,
    /// Morsels executed on parallel worker threads (0 for a fully
    /// single-threaded evaluation — the signal behind the server's
    /// parallel/sequential query counters).
    pub parallel_morsels: u64,
    /// Hash tables built by join operators (hash-join build sides, including
    /// the build-once tables inside star fixpoints). A merge join performs
    /// none — this counter is how the ordered test-suite asserts that a
    /// two-sided ordered scan join really runs allocation-free.
    pub hash_tables_built: u64,
    /// Peak number of candidate rows buffered by any top-k heap — bounded by
    /// `k` by construction, which is what makes `?topk=` memory-safe over
    /// arbitrarily large inputs. Merged with `max`, not `+` (it is a high
    /// watermark, not a volume).
    pub topk_buffered_peak: u64,
}

impl EvalStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        EvalStats::default()
    }

    /// Sums counters element-wise (useful when aggregating across runs).
    pub fn merge(&mut self, other: &EvalStats) {
        self.pairs_considered += other.pairs_considered;
        self.triples_emitted += other.triples_emitted;
        self.triples_scanned += other.triples_scanned;
        self.fixpoint_rounds += other.fixpoint_rounds;
        self.joins_executed += other.joins_executed;
        self.reach_edges_traversed += other.reach_edges_traversed;
        self.memo_hits += other.memo_hits;
        self.parallel_morsels += other.parallel_morsels;
        self.hash_tables_built += other.hash_tables_built;
        self.topk_buffered_peak = self.topk_buffered_peak.max(other.topk_buffered_peak);
    }

    /// A single scalar summarising the dominant work performed: the sum of
    /// pair inspections, scans and reachability edge traversals. Benchmarks
    /// plot this against `|T|` to observe the growth exponent.
    pub fn work(&self) -> u64 {
        self.pairs_considered + self.triples_scanned + self.reach_edges_traversed
    }
}

/// The outcome of evaluating an expression: the result triples plus the work
/// counters accumulated while computing them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Evaluation {
    /// The triples in `e(T)`.
    pub result: TripleSet,
    /// Work counters.
    pub stats: EvalStats,
}

/// Tunable limits and switches for evaluation.
///
/// Not `Copy`: the embedded [`CancelToken`] is reference-counted, so options
/// propagate through the engine by (cheap) `clone()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOptions {
    /// Maximum number of triples the universal relation `U` (and therefore a
    /// complement) may materialise before evaluation aborts with
    /// [`trial_core::Error::LimitExceeded`]. `U` has `|adom|³` triples, so
    /// this guards against accidentally cubing a large store.
    pub max_universe: usize,
    /// Upper bound on fixpoint rounds per Kleene star. The semantics needs
    /// at most `|adom|³` rounds (Procedure 2 of the paper); the default is
    /// effectively unlimited and exists to catch engine bugs.
    pub max_fixpoint_rounds: u64,
    /// If `true` (default), the [`crate::SmartEngine`] may route
    /// reachability-shaped stars to the Proposition 5 procedures.
    pub use_reach_specialisation: bool,
    /// If `true` (default), the [`crate::SmartEngine`] memoises repeated
    /// sub-expressions (as [`crate::plan::PlanNode::Memo`] nodes).
    pub use_memo: bool,
    /// If `true` (default), the planner applies its cost-based rewrites —
    /// selection pushdown into index scans, join-argument swapping, index
    /// nested-loop joins, and build-once star tables. When `false` the plan
    /// mirrors the written expression operator by operator (every join
    /// rebuilds its hash table, stars included), which is the baseline the
    /// `planned_vs_unplanned` benchmark measures against.
    pub optimize_plans: bool,
    /// If `true` (default), the [`crate::SmartEngine`] executes plans as a
    /// pull-based cursor pipeline (see the *Execution model* section of the
    /// crate docs): operators stream and only genuine pipeline breakers
    /// materialise, so limit-bounded queries terminate early. When `false`
    /// every operator materialises its full result — the reference
    /// interpreter the `streaming_vs_materialized` bench and the
    /// differential suite compare against.
    pub streaming: bool,
    /// If `true` (default), the planner may compile a join into a
    /// [`crate::plan::PlanNode::MergeJoin`] when both inputs can stream in a
    /// sort order keyed on the join component — typically two index scans
    /// served from complementary permutations (POS ⋈ SPO on a shared
    /// component). Merge joins are fully pipelined and build **no hash
    /// table** ([`EvalStats::hash_tables_built`] stays untouched). When
    /// `false` the planner falls back to hash / index nested-loop joins —
    /// the differential arm the ordered test-suite compares against.
    pub use_merge_join: bool,
    /// Degree of intra-query parallelism: the number of worker threads
    /// morsel-parallel operators may use (see the *Parallel execution*
    /// section of the crate docs). `1` (the built-in default) is exactly the
    /// historical single-threaded path and stays the differential reference;
    /// `n > 1` lets qualifying operators — hash-join builds and probes,
    /// index/plain nested-loop joins, filtered scans, star fixpoint rounds,
    /// reachability BFS fan-outs, and the blocking sides of
    /// difference/intersection/complement — split their input into morsels
    /// executed on a scoped worker pool. Results are identical for every
    /// value (the differential suite proves it); only wall-clock changes.
    ///
    /// The environment variable `TRIAL_EVAL_THREADS` overrides the default
    /// (read once per process), which is how CI runs the whole test suite a
    /// second time with parallelism on.
    ///
    /// The requested degree is honoured as-is: values above the host's
    /// available parallelism **oversubscribe** (morsel workers are scoped
    /// and joined per operator, so this is bounded churn, not a fork bomb —
    /// and it is exactly what the differential suite uses to exercise the
    /// multi-thread paths on small machines). Speedup is physically capped
    /// by the core count; [`crate::available_threads`] reports it, and
    /// `trial-serve --eval-threads 0` auto-detects it.
    pub threads: usize,
    /// Inputs smaller than this many rows are never split into morsels —
    /// below it, thread spawn/join overhead dwarfs the work. Tests set it to
    /// 0 to force the parallel code paths on tiny stores.
    pub parallel_min_rows: usize,
    /// If `true`, the executor records each plan node's **actual** output
    /// cardinality alongside the planner's estimate (surfaced by
    /// [`crate::SmartEngine::evaluate_analyzed`] and the server's
    /// `/explain?analyze=1`), making cost-model mis-estimates that would
    /// mislead morsel sizing observable — and runs the per-node wall-clock
    /// profiler at stride 1 (every cursor pull timed), so `EXPLAIN ANALYZE`
    /// reports exact `elapsed_us` per operator. Off by default: the counters
    /// cost a hash-map insert per operator plus two clock reads per row.
    pub collect_node_stats: bool,
    /// Sampling stride for per-node wall-clock profiling on **regular**
    /// (non-analyze) evaluations: `0` disables the profiler entirely (the
    /// default — zero overhead), `n ≥ 1` wraps every cursor in a timing
    /// shim that measures one in `n` pulls and scales the estimate by `n`
    /// (see [`crate::profile::NodeProfile`]). Row counts stay exact at any
    /// stride. The server's slow-query flight recorder turns this on to
    /// attach per-operator timings to sampled production queries.
    ///
    /// The environment variable `TRIAL_PROFILE_SAMPLE` overrides the default
    /// (read once per process), which is how CI reruns the whole suite with
    /// the profiling shims active.
    pub profile_sample: u32,
    /// Cooperative cancellation/deadline handle (see [`crate::cancel`]).
    /// The default is the inert token — no deadline, no cancellation, and a
    /// single-branch fast path at every checkpoint. When armed, the token is
    /// honored at cursor pull boundaries, morsel worker loops, exchange
    /// pumps, fixpoint rounds, BFS frontiers, and hash/sort/top-k builds:
    /// Result-returning layers fail with [`trial_core::Error::Cancelled`]
    /// and infallible cursor pulls end their stream early.
    pub cancel: CancelToken,
}

/// The process-wide default for [`EvalOptions::threads`]: the
/// `TRIAL_EVAL_THREADS` environment variable if set to a positive integer
/// (read once), otherwise 1.
pub fn default_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("TRIAL_EVAL_THREADS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// The process-wide default for [`EvalOptions::profile_sample`]: the
/// `TRIAL_PROFILE_SAMPLE` environment variable if set to a non-negative
/// integer (read once), otherwise 0 (profiling off).
pub fn default_profile_sample() -> u32 {
    static DEFAULT: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("TRIAL_PROFILE_SAMPLE")
            .ok()
            .and_then(|raw| raw.trim().parse::<u32>().ok())
            .unwrap_or(0)
    })
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_universe: 20_000_000,
            max_fixpoint_rounds: u64::MAX,
            use_reach_specialisation: true,
            use_memo: true,
            optimize_plans: true,
            streaming: true,
            use_merge_join: true,
            threads: default_threads(),
            parallel_min_rows: 2048,
            collect_node_stats: false,
            profile_sample: default_profile_sample(),
            cancel: CancelToken::none(),
        }
    }
}

/// A query evaluation strategy for TriAL\* expressions.
///
/// Implementations must agree on semantics — the test-suite checks them
/// against each other — and differ only in the algorithms used.
pub trait Engine {
    /// Human-readable engine name, used in benchmark reports.
    fn name(&self) -> &'static str;

    /// Computes `e(T)` together with work counters.
    fn evaluate(&self, expr: &Expr, store: &Triplestore) -> Result<Evaluation>;

    /// Convenience: evaluate and discard the statistics.
    fn run(&self, expr: &Expr, store: &Triplestore) -> Result<TripleSet> {
        Ok(self.evaluate(expr, store)?.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_and_work() {
        let mut a = EvalStats {
            pairs_considered: 10,
            triples_emitted: 5,
            triples_scanned: 3,
            fixpoint_rounds: 2,
            joins_executed: 1,
            reach_edges_traversed: 7,
            memo_hits: 1,
            parallel_morsels: 4,
            hash_tables_built: 2,
            topk_buffered_peak: 5,
        };
        let b = EvalStats {
            pairs_considered: 1,
            triples_emitted: 1,
            triples_scanned: 1,
            fixpoint_rounds: 1,
            joins_executed: 1,
            reach_edges_traversed: 1,
            memo_hits: 1,
            parallel_morsels: 2,
            hash_tables_built: 1,
            topk_buffered_peak: 3,
        };
        a.merge(&b);
        assert_eq!(a.pairs_considered, 11);
        assert_eq!(a.fixpoint_rounds, 3);
        assert_eq!(a.memo_hits, 2);
        assert_eq!(a.parallel_morsels, 6);
        assert_eq!(a.hash_tables_built, 3);
        // The heap peak is a high watermark: merge takes the max.
        assert_eq!(a.topk_buffered_peak, 5);
        assert_eq!(a.work(), 11 + 4 + 8);
        assert_eq!(EvalStats::new(), EvalStats::default());
    }

    #[test]
    fn default_options_are_permissive() {
        let opts = EvalOptions::default();
        assert!(opts.use_reach_specialisation);
        assert!(opts.use_memo);
        assert!(opts.optimize_plans);
        assert!(opts.streaming);
        assert!(opts.use_merge_join);
        assert!(opts.max_universe >= 1_000_000);
        assert_eq!(opts.max_fixpoint_rounds, u64::MAX);
        // The default degree comes from TRIAL_EVAL_THREADS (or 1), so the
        // suite can run with parallelism on; it is always at least 1.
        assert!(opts.threads >= 1);
        assert_eq!(opts.threads, default_threads());
        assert!(opts.parallel_min_rows > 0);
        assert!(!opts.collect_node_stats);
        // The default stride comes from TRIAL_PROFILE_SAMPLE (or 0), so CI
        // can rerun the suite with the profiling shims active.
        assert_eq!(opts.profile_sample, default_profile_sample());
        // The default token is inert: no deadline, nothing to cancel.
        assert!(!opts.cancel.is_armed());
    }
}
