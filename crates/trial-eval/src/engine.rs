//! The [`Engine`] trait, evaluation options and instrumentation counters.

use trial_core::{Expr, Result, TripleSet, Triplestore};

/// Counters describing *how much work* an evaluation performed.
///
/// The paper's complexity results (Theorem 3, Propositions 4 and 5) are
/// statements about the number of elementary steps, not about wall-clock
/// time on a particular machine. Engines therefore count their dominant
/// operations so that benchmarks can verify the *shape* of the bounds
/// (quadratic vs. cubic vs. `|O|·|T|`) directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Candidate pairs of triples inspected by join operators (the inner
    /// loop of Procedure 1 / the probe count of a hash join).
    pub pairs_considered: u64,
    /// Triples emitted by joins and selections before deduplication.
    pub triples_emitted: u64,
    /// Triples scanned by selections and set operations.
    pub triples_scanned: u64,
    /// Fixpoint rounds executed across all Kleene stars.
    pub fixpoint_rounds: u64,
    /// Number of join operations executed (including the joins performed
    /// inside star fixpoints).
    pub joins_executed: u64,
    /// Edges traversed by the specialised reachability procedures of
    /// Proposition 5 (BFS relaxations).
    pub reach_edges_traversed: u64,
    /// Sub-expression evaluations answered from the memo cache.
    pub memo_hits: u64,
}

impl EvalStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        EvalStats::default()
    }

    /// Sums counters element-wise (useful when aggregating across runs).
    pub fn merge(&mut self, other: &EvalStats) {
        self.pairs_considered += other.pairs_considered;
        self.triples_emitted += other.triples_emitted;
        self.triples_scanned += other.triples_scanned;
        self.fixpoint_rounds += other.fixpoint_rounds;
        self.joins_executed += other.joins_executed;
        self.reach_edges_traversed += other.reach_edges_traversed;
        self.memo_hits += other.memo_hits;
    }

    /// A single scalar summarising the dominant work performed: the sum of
    /// pair inspections, scans and reachability edge traversals. Benchmarks
    /// plot this against `|T|` to observe the growth exponent.
    pub fn work(&self) -> u64 {
        self.pairs_considered + self.triples_scanned + self.reach_edges_traversed
    }
}

/// The outcome of evaluating an expression: the result triples plus the work
/// counters accumulated while computing them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Evaluation {
    /// The triples in `e(T)`.
    pub result: TripleSet,
    /// Work counters.
    pub stats: EvalStats,
}

/// Tunable limits and switches for evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Maximum number of triples the universal relation `U` (and therefore a
    /// complement) may materialise before evaluation aborts with
    /// [`trial_core::Error::LimitExceeded`]. `U` has `|adom|³` triples, so
    /// this guards against accidentally cubing a large store.
    pub max_universe: usize,
    /// Upper bound on fixpoint rounds per Kleene star. The semantics needs
    /// at most `|adom|³` rounds (Procedure 2 of the paper); the default is
    /// effectively unlimited and exists to catch engine bugs.
    pub max_fixpoint_rounds: u64,
    /// If `true` (default), the [`crate::SmartEngine`] may route
    /// reachability-shaped stars to the Proposition 5 procedures.
    pub use_reach_specialisation: bool,
    /// If `true` (default), the [`crate::SmartEngine`] memoises repeated
    /// sub-expressions (as [`crate::plan::PlanNode::Memo`] nodes).
    pub use_memo: bool,
    /// If `true` (default), the planner applies its cost-based rewrites —
    /// selection pushdown into index scans, join-argument swapping, index
    /// nested-loop joins, and build-once star tables. When `false` the plan
    /// mirrors the written expression operator by operator (every join
    /// rebuilds its hash table, stars included), which is the baseline the
    /// `planned_vs_unplanned` benchmark measures against.
    pub optimize_plans: bool,
    /// If `true` (default), the [`crate::SmartEngine`] executes plans as a
    /// pull-based cursor pipeline (see the *Execution model* section of the
    /// crate docs): operators stream and only genuine pipeline breakers
    /// materialise, so limit-bounded queries terminate early. When `false`
    /// every operator materialises its full result — the reference
    /// interpreter the `streaming_vs_materialized` bench and the
    /// differential suite compare against.
    pub streaming: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            max_universe: 20_000_000,
            max_fixpoint_rounds: u64::MAX,
            use_reach_specialisation: true,
            use_memo: true,
            optimize_plans: true,
            streaming: true,
        }
    }
}

/// A query evaluation strategy for TriAL\* expressions.
///
/// Implementations must agree on semantics — the test-suite checks them
/// against each other — and differ only in the algorithms used.
pub trait Engine {
    /// Human-readable engine name, used in benchmark reports.
    fn name(&self) -> &'static str;

    /// Computes `e(T)` together with work counters.
    fn evaluate(&self, expr: &Expr, store: &Triplestore) -> Result<Evaluation>;

    /// Convenience: evaluate and discard the statistics.
    fn run(&self, expr: &Expr, store: &Triplestore) -> Result<TripleSet> {
        Ok(self.evaluate(expr, store)?.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_and_work() {
        let mut a = EvalStats {
            pairs_considered: 10,
            triples_emitted: 5,
            triples_scanned: 3,
            fixpoint_rounds: 2,
            joins_executed: 1,
            reach_edges_traversed: 7,
            memo_hits: 1,
        };
        let b = EvalStats {
            pairs_considered: 1,
            triples_emitted: 1,
            triples_scanned: 1,
            fixpoint_rounds: 1,
            joins_executed: 1,
            reach_edges_traversed: 1,
            memo_hits: 1,
        };
        a.merge(&b);
        assert_eq!(a.pairs_considered, 11);
        assert_eq!(a.fixpoint_rounds, 3);
        assert_eq!(a.memo_hits, 2);
        assert_eq!(a.work(), 11 + 4 + 8);
        assert_eq!(EvalStats::new(), EvalStats::default());
    }

    #[test]
    fn default_options_are_permissive() {
        let opts = EvalOptions::default();
        assert!(opts.use_reach_specialisation);
        assert!(opts.use_memo);
        assert!(opts.optimize_plans);
        assert!(opts.streaming);
        assert!(opts.max_universe >= 1_000_000);
        assert_eq!(opts.max_fixpoint_rounds, u64::MAX);
    }
}
