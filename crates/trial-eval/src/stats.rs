//! Feedback-driven planner statistics: observed cardinalities keyed by
//! normalized plan-shape fingerprints.
//!
//! The planner's heuristics (the textbook 0.2/0.8 selectivities in
//! `selectivity_est`, the `|L|·|R|/max(V)` join formula) are static — they
//! never learn from the exact per-node actual row counts that
//! [`SmartEngine::evaluate_analyzed`](crate::SmartEngine::evaluate_analyzed)
//! already produces. A [`StatsStore`] closes that loop:
//!
//! * **ingest** — [`StatsStore::observe_plan`] walks an executed plan in
//!   preorder next to its actual row counts and records, per node, an
//!   exponentially-decayed moving average of the observed cardinality under
//!   the node's [`fingerprint`];
//! * **estimate** — while planning, the planner asks
//!   [`StatsStore::estimate`] for every operator it builds and replaces the
//!   heuristic estimate with the observed one when the fingerprint is known
//!   (`est_src=stats` in the server's `/explain`), which flows into every
//!   downstream decision: join strategy and orientation, build-side choice,
//!   merge-vs-probe gates, and morsel granularity;
//! * **invalidate** — statistics describe one immutable store snapshot.
//!   [`StatsStore::invalidate`] atomically clears the table and adopts the
//!   new epoch when the underlying data changes (`/load`), and
//!   [`StatsStore::observe_plan`] drops observations recorded against a
//!   stale epoch so an in-flight `analyze` of the old snapshot can never
//!   pollute the fresh table.
//!
//! # Fingerprints
//!
//! A [`fingerprint`] hashes the **logical shape** of an operator — scanned
//! relation, pushed-down binding, condition structure, child shapes — and
//! deliberately ignores everything the feedback loop itself changes:
//! cardinality estimates, chosen scan orders, and the physical join variant
//! (a hash join, merge join and index nested-loop probe of the same logical
//! join share one fingerprint, with the two argument orientations
//! normalized so `A ⋈ B` and the mirrored `B ⋈ A` also coincide). Were the
//! estimate part of the key, the first correction would orphan every
//! previously-learned entry; were the join variant part of it, a plan
//! flipped by feedback could never find the observation that flipped it.
//!
//! Constant bindings hash the raw [`ObjectId`], which is only meaningful
//! within one store epoch — exactly the lifetime the epoch invalidation
//! enforces.

use crate::plan::{Plan, PlanNode};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Decay of the exponentially-weighted moving average: a fresh observation
/// contributes half of the stored value, so stale cardinalities fade in a
/// few observations without letting one outlier overwrite history.
const EWMA_ALPHA: f64 = 0.5;

/// Observed-cardinality statistics for one store (one epoch at a time).
///
/// Thread-safe and cheap to share: estimates take a read lock, ingestion and
/// invalidation a write lock, and the replan counter is a lone atomic.
#[derive(Debug, Default)]
pub struct StatsStore {
    inner: RwLock<Inner>,
    /// Number of plans that consulted at least one observed estimate.
    replans: AtomicU64,
    /// Bumped whenever the table's contents change (ingestion that recorded
    /// at least one node, or an epoch invalidation). Cache keys include it
    /// so fragments planned against stale statistics are not re-served once
    /// the table has learned better cardinalities.
    generation: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    /// The store epoch the entries describe.
    epoch: u64,
    /// Fingerprint → decayed observed cardinality.
    entries: HashMap<u64, f64>,
}

/// What one [`StatsStore::observe_plan`] call recorded: how many nodes were
/// ingested and the estimate error of every node that reported an actual.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObserveSummary {
    /// Nodes whose observed cardinality entered the table.
    pub ingested: usize,
    /// Per observed node, `|est − actual| · 100 / max(actual, 1)` — the
    /// relative estimate error in percent, the quantity the server's
    /// `est_error` histogram tracks over time.
    pub est_errors: Vec<u64>,
}

impl StatsStore {
    /// An empty table at epoch 0.
    pub fn new() -> Self {
        StatsStore::default()
    }

    /// The epoch the current entries describe.
    pub fn epoch(&self) -> u64 {
        self.inner.read().expect("stats lock poisoned").epoch
    }

    /// Number of fingerprints with an observed cardinality.
    pub fn entries(&self) -> usize {
        self.inner
            .read()
            .expect("stats lock poisoned")
            .entries
            .len()
    }

    /// How many plans consulted at least one observed estimate.
    pub fn replans(&self) -> u64 {
        self.replans.load(Ordering::Relaxed)
    }

    /// Called by the planner when a plan used at least one observed
    /// estimate.
    pub fn note_replan(&self) {
        self.replans.fetch_add(1, Ordering::Relaxed);
    }

    /// A counter that changes whenever the table's contents change. Two
    /// calls returning the same value bracket a window in which every plan
    /// against this store would come out identical — the property result
    /// caches key on.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The observed cardinality for a fingerprint, if any (never 0: an
    /// estimate of "provably empty" is the planner's call, not feedback's).
    pub fn estimate(&self, fingerprint: u64) -> Option<u64> {
        let inner = self.inner.read().expect("stats lock poisoned");
        inner
            .entries
            .get(&fingerprint)
            .map(|&rows| (rows.round() as u64).max(1))
    }

    /// [`StatsStore::estimate`] through a node's [`fingerprint`]: the
    /// observed cardinality the planner would substitute for this operator's
    /// heuristic estimate (`None` → the heuristic stands, `est_src=heuristic`).
    pub fn estimate_node(&self, node: &PlanNode) -> Option<u64> {
        self.estimate(fingerprint(node)?)
    }

    /// Ingests an executed plan's actual row counts (indexed like
    /// [`PlanNode::preorder`], as produced by
    /// [`SmartEngine::evaluate_analyzed`](crate::SmartEngine::evaluate_analyzed)).
    ///
    /// `epoch` is the store epoch the evaluation ran against: observations
    /// from any other epoch are dropped whole, so a slow `analyze` completing
    /// after a `/load` cannot seed the new table with the old snapshot's
    /// cardinalities.
    pub fn observe_plan(&self, plan: &Plan, actuals: &[Option<u64>], epoch: u64) -> ObserveSummary {
        let mut summary = ObserveSummary::default();
        let nodes = plan.root.preorder();
        let mut inner = self.inner.write().expect("stats lock poisoned");
        if inner.epoch != epoch {
            return summary;
        }
        for (node, actual) in nodes.iter().zip(actuals) {
            let Some(actual) = *actual else { continue };
            let est = node.est() as u64;
            summary
                .est_errors
                .push(est.abs_diff(actual).saturating_mul(100) / actual.max(1));
            let Some(fp) = fingerprint(node) else {
                continue;
            };
            let entry = inner.entries.entry(fp);
            entry
                .and_modify(|rows| *rows += EWMA_ALPHA * (actual as f64 - *rows))
                .or_insert(actual as f64);
            summary.ingested += 1;
        }
        if summary.ingested > 0 {
            self.generation.fetch_add(1, Ordering::Release);
        }
        summary
    }

    /// Clears the table and adopts `epoch` — the data changed underneath, so
    /// every observed cardinality (and every raw [`ObjectId`] baked into a
    /// fingerprint) is meaningless. A no-op when already at `epoch`, making
    /// it safe to call eagerly. Counters survive: replans are a lifetime
    /// total.
    pub fn invalidate(&self, epoch: u64) {
        let mut inner = self.inner.write().expect("stats lock poisoned");
        if inner.epoch != epoch {
            inner.entries.clear();
            inner.epoch = epoch;
            self.generation.fetch_add(1, Ordering::Release);
        }
    }
}

use trial_core::ObjectId;

/// The normalized plan-shape fingerprint of one operator (see the module
/// docs for what it keys on and what it deliberately ignores). `None` for
/// operators whose cardinality is structural or already exact — limits,
/// sorts, top-k bounds, the universe, the empty relation — and for memo
/// slots, which are transparent (their input's fingerprint is the shape).
pub fn fingerprint(node: &PlanNode) -> Option<u64> {
    fn hash_one<T: Hash>(tag: &str, value: &T) -> u64 {
        let mut h = DefaultHasher::new();
        tag.hash(&mut h);
        value.hash(&mut h);
        h.finish()
    }
    // The two orientations of a join describe the same logical operator
    // (the planner mirrors freely to pick build sides), so hash both and
    // keep the smaller: `min` is orientation-invariant.
    fn join_fp(
        tag: &str,
        left: Option<u64>,
        right: Option<u64>,
        cond: &trial_core::Conditions,
        output: &trial_core::OutputSpec,
    ) -> u64 {
        let forward = hash_one(tag, &(left, right, cond, output.0));
        let mirrored = hash_one(tag, &(right, left, &cond.mirrored(), output.mirrored().0));
        forward.min(mirrored)
    }
    // A stored relation probed by an index nested-loop join has no child
    // plan node; give it the same fingerprint a bare scan of it would get so
    // the probe and the equivalent hash/merge join coincide.
    fn bare_scan_fp(relation: &str) -> u64 {
        hash_one(
            "scan",
            &(
                relation,
                None::<(usize, ObjectId)>,
                &trial_core::Conditions::new(),
            ),
        )
    }
    Some(match node {
        PlanNode::IndexScan {
            relation,
            bound,
            residual,
            // `order` and `est` are exactly what feedback rewrites.
            ..
        } => hash_one("scan", &(relation, bound, residual)),
        PlanNode::Filter { input, cond, .. } => hash_one("filter", &(fingerprint(input), cond)),
        PlanNode::HashJoin {
            left,
            right,
            output,
            cond,
            ..
        }
        | PlanNode::MergeJoin {
            left,
            right,
            output,
            cond,
            ..
        }
        | PlanNode::NestedLoopJoin {
            left,
            right,
            output,
            cond,
            ..
        } => join_fp("join", fingerprint(left), fingerprint(right), cond, output),
        PlanNode::IndexNestedLoopJoin {
            outer,
            relation,
            output,
            cond,
            ..
        } => join_fp(
            "join",
            fingerprint(outer),
            Some(bare_scan_fp(relation)),
            cond,
            output,
        ),
        // Union and intersection are commutative: order-normalize the
        // children. Difference is not.
        PlanNode::Union { left, right, .. } => {
            let (a, b) = (fingerprint(left), fingerprint(right));
            hash_one("union", &(a.min(b), a.max(b)))
        }
        PlanNode::Intersect { left, right, .. } => {
            let (a, b) = (fingerprint(left), fingerprint(right));
            hash_one("intersect", &(a.min(b), a.max(b)))
        }
        PlanNode::Diff { left, right, .. } => {
            hash_one("diff", &(fingerprint(left), fingerprint(right)))
        }
        PlanNode::Complement { input, .. } => hash_one("complement", &fingerprint(input)),
        PlanNode::StarSemiNaive {
            input,
            output,
            cond,
            direction,
            ..
        } => hash_one("star", &(fingerprint(input), output.0, cond, direction)),
        PlanNode::StarReach {
            input,
            same_label,
            relation,
            ..
        } => hash_one("star-reach", &(fingerprint(input), same_label, relation)),
        // Transparent: a memo slot's shape is its input's shape.
        PlanNode::Memo { input, .. } => return fingerprint(input),
        // Structural or exact cardinalities — nothing to learn, and a
        // limit's "actual" measures the bound, not the operator beneath it.
        // An NFA walk's cardinality is dominated by the graph, not by a
        // reusable plan shape, so it stays out of the feedback loop too.
        PlanNode::Universe { .. }
        | PlanNode::Empty
        | PlanNode::PathNfa { .. }
        | PlanNode::Limit { .. }
        | PlanNode::Sort { .. }
        | PlanNode::TopK { .. } => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::{output, Conditions, Permutation, Pos};

    fn scan(rel: &str, est: usize) -> PlanNode {
        PlanNode::IndexScan {
            relation: rel.to_owned(),
            bound: None,
            residual: Conditions::new(),
            order: Permutation::Spo,
            est,
        }
    }

    fn plan_of(root: PlanNode) -> Plan {
        Plan {
            root,
            memo_slots: 0,
            threads: 1,
        }
    }

    #[test]
    fn fingerprints_ignore_estimates_and_orders() {
        assert_eq!(fingerprint(&scan("E", 7)), fingerprint(&scan("E", 999)));
        let reordered = PlanNode::IndexScan {
            relation: "E".into(),
            bound: None,
            residual: Conditions::new(),
            order: Permutation::Pos,
            est: 7,
        };
        assert_eq!(fingerprint(&scan("E", 7)), fingerprint(&reordered));
        assert_ne!(fingerprint(&scan("E", 7)), fingerprint(&scan("F", 7)));
    }

    #[test]
    fn join_fingerprints_are_variant_and_orientation_invariant() {
        let out = output(Pos::L1, Pos::R3, Pos::L3);
        let cond = Conditions::new().obj_eq(Pos::L2, Pos::R1);
        let hash = PlanNode::HashJoin {
            left: Box::new(scan("E", 7)),
            right: Box::new(scan("F", 3)),
            output: out,
            cond: cond.clone(),
            keys: vec![(Pos::L2, Pos::R1)],
            swapped: false,
            est: 7,
        };
        let merge = PlanNode::MergeJoin {
            left: Box::new(scan("E", 7)),
            right: Box::new(scan("F", 3)),
            output: out,
            cond: cond.clone(),
            key: (Pos::L2, Pos::R1),
            est: 21,
        };
        // The planner-mirrored orientation: B ⋈ A with mirrored cond/output.
        let mirrored = PlanNode::HashJoin {
            left: Box::new(scan("F", 3)),
            right: Box::new(scan("E", 7)),
            output: out.mirrored(),
            cond: cond.mirrored(),
            keys: cond.mirrored().cross_equalities(),
            swapped: true,
            est: 7,
        };
        // The index-probe variant of the same logical join.
        let inlj = PlanNode::IndexNestedLoopJoin {
            outer: Box::new(scan("E", 7)),
            relation: "F".into(),
            probe: (Pos::L2, Pos::R1),
            output: out,
            cond: cond.clone(),
            swapped: false,
            est: 7,
        };
        let fp = fingerprint(&hash);
        assert_eq!(fp, fingerprint(&merge));
        assert_eq!(fp, fingerprint(&mirrored));
        assert_eq!(fp, fingerprint(&inlj));
        // A different output spec is a different operator.
        let projected = PlanNode::HashJoin {
            left: Box::new(scan("E", 7)),
            right: Box::new(scan("F", 3)),
            output: trial_core::OutputSpec::IDENTITY,
            cond,
            keys: vec![(Pos::L2, Pos::R1)],
            swapped: false,
            est: 7,
        };
        assert_ne!(fp, fingerprint(&projected));
    }

    #[test]
    fn memo_is_transparent_and_bounds_are_excluded() {
        let inner = scan("E", 7);
        let memo = PlanNode::Memo {
            slot: 0,
            input: Box::new(inner.clone()),
        };
        assert_eq!(fingerprint(&memo), fingerprint(&inner));
        let limit = PlanNode::Limit {
            input: Box::new(inner.clone()),
            limit: 5,
            est: 5,
        };
        assert_eq!(fingerprint(&limit), None);
        assert_eq!(fingerprint(&PlanNode::Empty), None);
        assert_eq!(fingerprint(&PlanNode::Universe { est: 27 }), None);
    }

    #[test]
    fn observe_then_estimate_round_trips_with_decay() {
        let stats = StatsStore::new();
        let node = scan("E", 100);
        let fp = fingerprint(&node).unwrap();
        assert_eq!(stats.estimate(fp), None);
        let summary = stats.observe_plan(&plan_of(node.clone()), &[Some(10)], 0);
        assert_eq!(summary.ingested, 1);
        // est 100 vs actual 10 → 900% relative error.
        assert_eq!(summary.est_errors, vec![900]);
        assert_eq!(stats.estimate(fp), Some(10));
        assert_eq!(stats.entries(), 1);
        // EWMA: a second observation of 20 moves the estimate halfway.
        stats.observe_plan(&plan_of(node.clone()), &[Some(20)], 0);
        assert_eq!(stats.estimate(fp), Some(15));
        // Observed zeros clamp to 1: emptiness is the planner's call.
        stats.observe_plan(&plan_of(node.clone()), &[Some(0)], 0);
        stats.observe_plan(&plan_of(node), &[Some(0)], 0);
        assert_eq!(stats.estimate(fp), Some(4));
    }

    #[test]
    fn invalidation_clears_entries_and_gates_stale_observations() {
        let stats = StatsStore::new();
        let node = scan("E", 100);
        let fp = fingerprint(&node).unwrap();
        stats.observe_plan(&plan_of(node.clone()), &[Some(10)], 0);
        assert_eq!(stats.estimate(fp), Some(10));
        stats.invalidate(3);
        assert_eq!(stats.epoch(), 3);
        assert_eq!(stats.entries(), 0);
        assert_eq!(stats.estimate(fp), None);
        // A stale in-flight evaluation (epoch 0) must not repopulate.
        let dropped = stats.observe_plan(&plan_of(node.clone()), &[Some(10)], 0);
        assert_eq!(dropped.ingested, 0);
        assert_eq!(stats.estimate(fp), None);
        // The current epoch ingests normally; re-invalidating the same
        // epoch is a no-op.
        stats.observe_plan(&plan_of(node), &[Some(12)], 3);
        stats.invalidate(3);
        assert_eq!(stats.estimate(fp), Some(12));
    }

    #[test]
    fn replans_count_monotonically() {
        let stats = StatsStore::new();
        assert_eq!(stats.replans(), 0);
        stats.note_replan();
        stats.note_replan();
        assert_eq!(stats.replans(), 2);
    }
}
