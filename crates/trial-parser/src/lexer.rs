//! Tokeniser for the TriAL expression syntax.

use trial_core::{Error, Result};

/// A lexical token with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

/// The kinds of tokens produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`E`, `UNION`, `rho`, `null`, …).
    Ident(String),
    /// An integer literal (used for positions and integer data values).
    Int(i64),
    /// A double-quoted string literal (a string data value).
    Str(String),
    /// A single-quoted object constant (`'Edinburgh'`).
    ObjConst(String),
    /// `'` — the prime marker of positions `1'`, `2'`, `3'`.
    Prime,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// End of input.
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::ObjConst(s) => write!(f, "object constant '{s}'"),
            TokenKind::Prime => write!(f, "'"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Neq => write!(f, "!="),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '.' || c == ':' || c == '/' || c == '#' || c == '-'
}

/// Tokenises an input string.
///
/// Single-quoted runs are lexed as object constants. A bare apostrophe that
/// immediately follows a digit (as in `3'`) is the prime marker; the lexer
/// distinguishes the two by whether a closing quote appears before any
/// whitespace/punctuation that would be illegal inside an object name.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = input.chars().collect();
    let mut byte_offsets: Vec<usize> = Vec::with_capacity(chars.len() + 1);
    {
        let mut off = 0;
        for c in &chars {
            byte_offsets.push(off);
            off += c.len_utf8();
        }
        byte_offsets.push(off);
    }
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let n = chars.len();
    let mut prev_was_digit = false;
    while i < n {
        let c = chars[i];
        let offset = byte_offsets[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
                prev_was_digit = false;
                continue;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    offset,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    offset,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset,
                });
                i += 1;
            }
            '|' => {
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    offset,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset,
                });
                i += 1;
            }
            '!' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    tokens.push(Token {
                        kind: TokenKind::Neq,
                        offset,
                    });
                    i += 2;
                } else {
                    return Err(Error::Parse {
                        message: "expected `=` after `!`".into(),
                        offset,
                    });
                }
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                while j < n && chars[j] != '"' {
                    s.push(chars[j]);
                    j += 1;
                }
                if j >= n {
                    return Err(Error::Parse {
                        message: "unterminated string literal".into(),
                        offset,
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset,
                });
                i = j + 1;
            }
            '\'' => {
                if prev_was_digit {
                    // Prime marker of a position like 3'.
                    tokens.push(Token {
                        kind: TokenKind::Prime,
                        offset,
                    });
                    i += 1;
                } else {
                    // Object constant 'Name'.
                    let mut s = String::new();
                    let mut j = i + 1;
                    while j < n && chars[j] != '\'' {
                        s.push(chars[j]);
                        j += 1;
                    }
                    if j >= n {
                        return Err(Error::Parse {
                            message: "unterminated object constant".into(),
                            offset,
                        });
                    }
                    tokens.push(Token {
                        kind: TokenKind::ObjConst(s),
                        offset,
                    });
                    i = j + 1;
                }
            }
            '-' | '0'..='9' => {
                let negative = c == '-';
                let mut j = if negative { i + 1 } else { i };
                if negative && (j >= n || !chars[j].is_ascii_digit()) {
                    return Err(Error::Parse {
                        message: "expected digits after `-`".into(),
                        offset,
                    });
                }
                let start = j;
                while j < n && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let digits: String = chars[start..j].iter().collect();
                let mut value: i64 = digits.parse().map_err(|_| Error::Parse {
                    message: format!("integer literal `{digits}` out of range"),
                    offset,
                })?;
                if negative {
                    value = -value;
                }
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    offset,
                });
                i = j;
                prev_was_digit = true;
                continue;
            }
            c if is_ident_start(c) => {
                let mut j = i;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let ident: String = chars[i..j].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    offset,
                });
                i = j;
            }
            other => {
                return Err(Error::Parse {
                    message: format!("unexpected character `{other}`"),
                    offset,
                });
            }
        }
        prev_was_digit = false;
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: byte_offsets[n],
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_join_expression() {
        let ks = kinds("(E JOIN[1,3',3 | 2=1'] E)");
        assert_eq!(
            ks,
            vec![
                TokenKind::LParen,
                TokenKind::Ident("E".into()),
                TokenKind::Ident("JOIN".into()),
                TokenKind::LBracket,
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Int(3),
                TokenKind::Prime,
                TokenKind::Comma,
                TokenKind::Int(3),
                TokenKind::Pipe,
                TokenKind::Int(2),
                TokenKind::Eq,
                TokenKind::Int(1),
                TokenKind::Prime,
                TokenKind::RBracket,
                TokenKind::Ident("E".into()),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_constants() {
        let ks = kinds("1!='Edinburgh' rho(2)=\"hello\" rho(3)=-42 null");
        assert!(ks.contains(&TokenKind::ObjConst("Edinburgh".into())));
        assert!(ks.contains(&TokenKind::Str("hello".into())));
        assert!(ks.contains(&TokenKind::Int(-42)));
        assert!(ks.contains(&TokenKind::Neq));
        assert!(ks.contains(&TokenKind::Ident("null".into())));
        assert!(ks.contains(&TokenKind::Ident("rho".into())));
    }

    #[test]
    fn prime_vs_object_constant() {
        // After a digit, ' is a prime; elsewhere it opens an object constant.
        assert_eq!(kinds("3'")[..2], [TokenKind::Int(3), TokenKind::Prime]);
        assert_eq!(kinds("'x'")[0], TokenKind::ObjConst("x".into()));
        // Whitespace between digit and quote breaks the prime association.
        assert_eq!(kinds("3 'x'")[1], TokenKind::ObjConst("x".into()));
    }

    #[test]
    fn identifiers_allow_uri_like_names() {
        let ks = kinds("http://example.org/city#Edinburgh foaf:knows part_of");
        assert_eq!(
            ks[0],
            TokenKind::Ident("http://example.org/city#Edinburgh".into())
        );
        assert_eq!(ks[1], TokenKind::Ident("foaf:knows".into()));
        assert_eq!(ks[2], TokenKind::Ident("part_of".into()));
    }

    #[test]
    fn error_cases() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("!x").is_err());
        assert!(tokenize("- x").is_err());
        assert!(tokenize("€").is_err() || !tokenize("€").unwrap().is_empty());
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = tokenize("E UNION F").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 2);
        assert_eq!(toks[2].offset, 8);
    }
}
