//! # trial-parser
//!
//! A concrete text syntax for TriAL / TriAL\* expressions, matching the
//! [`Display`](std::fmt::Display) rendering of
//! [`trial_core::Expr`] — so `parse(&expr.to_string())` round-trips.
//!
//! The syntax follows the paper's notation as closely as ASCII allows:
//!
//! ```text
//! (E JOIN[1,3',3 | 2=1'] E)                  e = E ✶^{1,3',3}_{2=1'} E        (Example 2)
//! STAR(E JOIN[1,2,3' | 3=1'])                (E ✶^{1,2,3'}_{3=1'})^*          (Reach→)
//! STAR(JOIN[1',2',3 | 1=2'] E)               (✶^{1',2',3}_{1=2'} E)^*         (Reach⇓)
//! SELECT[2='part_of'](E)                     σ_{2=part_of}(E)
//! (E UNION F)   (E MINUS F)   (E INTERSECT F)   COMPL(E)   U   EMPTY
//! rho(1)=rho(2')  rho(3)!="London"  1!='Edinburgh'
//! ```
//!
//! ```
//! use trial_parser::parse;
//! use trial_core::builder::queries;
//!
//! let q = parse("STAR(STAR(E JOIN[1,3',3 | 2=1']) JOIN[1,2,3' | 3=1',2=2'])").unwrap();
//! assert_eq!(q, queries::same_company_reachability("E"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod path;
pub mod pretty;

pub use parser::parse;
pub use path::{parse_path, PathExpr};
pub use pretty::pretty;
