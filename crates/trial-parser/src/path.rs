//! Regular path expressions (RPQs) over edge labels.
//!
//! The paper's central theorem is that TriAL* captures regular path
//! queries; this module provides the navigational surface that makes the
//! claim executable. A [`PathExpr`] denotes a regular language over edge
//! labels: a pair `(x, y)` matches iff some directed path from `x` to `y`
//! spells a word of that language (reading each traversed triple's middle
//! element as a letter).
//!
//! ## Grammar
//!
//! ```text
//! path    := alt
//! alt     := seq ( '|' seq )*
//! seq     := postfix ( '/' postfix )*
//! postfix := primary ( '*' | '+' | '?' )*
//! primary := atom | '(' alt ')'
//! atom    := label | 'quoted label'
//! ```
//!
//! `/` is concatenation, `|` alternation; `*`, `+`, `?` are the usual
//! closures (zero-or-more, one-or-more, optional). Postfix binds tightest,
//! then `/`, then `|` — `a/b*|c` reads as `(a/(b*))|c`. Bare labels use the
//! same identifier characters as TriAL relation names **except `/`** (which
//! is the concatenation operator here); labels containing arbitrary
//! characters — URIs in particular — are single-quoted: `'http://ex.org/p'`.
//!
//! [`PathExpr`]'s [`Display`](std::fmt::Display) form always re-parses to
//! the same AST (round-tripping is tested), which is what lets the engine
//! cache and log path queries by their text.

use std::fmt;
use trial_core::{Error, Result};

/// A regular path expression over edge labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathExpr {
    /// A single edge label: matches `(x, y)` iff some triple `(x, label, y)`
    /// exists.
    Atom(String),
    /// Concatenation `p₁/p₂/…` (at least two parts).
    Seq(Vec<PathExpr>),
    /// Alternation `p₁|p₂|…` (at least two parts).
    Alt(Vec<PathExpr>),
    /// Kleene star `p*`: zero or more repetitions (includes every node's
    /// identity pair).
    Star(Box<PathExpr>),
    /// `p+`: one or more repetitions.
    Plus(Box<PathExpr>),
    /// `p?`: zero or one occurrence (includes every node's identity pair).
    Opt(Box<PathExpr>),
}

impl PathExpr {
    /// `true` if the expression contains a Kleene closure (`*` or `+`) —
    /// the shapes whose lowering needs a TriAL star (and whose NFA-product
    /// traversal can revisit nodes). `?` is *not* a closure: it only adds
    /// identity pairs, and lowers to a plain union.
    pub fn has_closure(&self) -> bool {
        match self {
            PathExpr::Atom(_) => false,
            PathExpr::Seq(parts) | PathExpr::Alt(parts) => parts.iter().any(Self::has_closure),
            PathExpr::Star(_) | PathExpr::Plus(_) => true,
            PathExpr::Opt(inner) => inner.has_closure(),
        }
    }

    /// Every distinct atom label, in first-appearance order.
    pub fn labels(&self) -> Vec<&str> {
        fn walk<'e>(e: &'e PathExpr, out: &mut Vec<&'e str>) {
            match e {
                PathExpr::Atom(label) => {
                    if !out.contains(&label.as_str()) {
                        out.push(label);
                    }
                }
                PathExpr::Seq(parts) | PathExpr::Alt(parts) => {
                    for p in parts {
                        walk(p, out);
                    }
                }
                PathExpr::Star(inner) | PathExpr::Plus(inner) | PathExpr::Opt(inner) => {
                    walk(inner, out)
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

/// `true` for characters allowed in a bare (unquoted) atom label. The set
/// matches TriAL identifier characters minus `/`, which is the path
/// concatenation operator.
fn is_label_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | ':' | '#' | '-')
}

/// Parses a regular path expression.
///
/// Errors carry the byte offset of the failing character, like
/// [`crate::parse`], so the server can report them structurally.
pub fn parse_path(input: &str) -> Result<PathExpr> {
    let chars: Vec<char> = input.chars().collect();
    let mut offsets: Vec<usize> = Vec::with_capacity(chars.len() + 1);
    let mut off = 0;
    for c in &chars {
        offsets.push(off);
        off += c.len_utf8();
    }
    offsets.push(off);
    let mut parser = PathParser {
        chars,
        offsets,
        index: 0,
    };
    parser.skip_ws();
    let expr = parser.parse_alt()?;
    parser.skip_ws();
    if parser.index < parser.chars.len() {
        return Err(parser.error(format!(
            "unexpected trailing `{}`",
            parser.chars[parser.index]
        )));
    }
    Ok(expr)
}

struct PathParser {
    chars: Vec<char>,
    offsets: Vec<usize>,
    index: usize,
}

impl PathParser {
    fn error(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            message: message.into(),
            offset: self.offsets[self.index.min(self.chars.len())],
        }
    }

    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.index)
            .is_some_and(|c| c.is_whitespace())
        {
            self.index += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.index).copied()
    }

    fn parse_alt(&mut self) -> Result<PathExpr> {
        let mut parts = vec![self.parse_seq()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.index += 1;
                self.skip_ws();
                parts.push(self.parse_seq()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            PathExpr::Alt(parts)
        })
    }

    fn parse_seq(&mut self) -> Result<PathExpr> {
        let mut parts = vec![self.parse_postfix()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('/') {
                self.index += 1;
                self.skip_ws();
                parts.push(self.parse_postfix()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            PathExpr::Seq(parts)
        })
    }

    fn parse_postfix(&mut self) -> Result<PathExpr> {
        let mut expr = self.parse_primary()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.index += 1;
                    expr = PathExpr::Star(Box::new(expr));
                }
                Some('+') => {
                    self.index += 1;
                    expr = PathExpr::Plus(Box::new(expr));
                }
                Some('?') => {
                    self.index += 1;
                    expr = PathExpr::Opt(Box::new(expr));
                }
                _ => return Ok(expr),
            }
        }
    }

    fn parse_primary(&mut self) -> Result<PathExpr> {
        match self.peek() {
            Some('(') => {
                self.index += 1;
                self.skip_ws();
                let inner = self.parse_alt()?;
                self.skip_ws();
                if self.peek() != Some(')') {
                    return Err(self.error("expected `)`"));
                }
                self.index += 1;
                Ok(inner)
            }
            Some('\'') => {
                let open = self.index;
                self.index += 1;
                let mut label = String::new();
                while let Some(c) = self.peek() {
                    if c == '\'' {
                        self.index += 1;
                        if label.is_empty() {
                            self.index = open;
                            return Err(self.error("empty quoted label"));
                        }
                        return Ok(PathExpr::Atom(label));
                    }
                    label.push(c);
                    self.index += 1;
                }
                self.index = open;
                Err(self.error("unterminated quoted label"))
            }
            Some(c) if is_label_char(c) => {
                let mut label = String::new();
                while let Some(c) = self.peek() {
                    if is_label_char(c) {
                        label.push(c);
                        self.index += 1;
                    } else {
                        break;
                    }
                }
                Ok(PathExpr::Atom(label))
            }
            Some(c) => Err(self.error(format!(
                "expected an edge label, `(` or a quoted label, found `{c}`"
            ))),
            None => Err(self.error("expected an edge label, found end of input")),
        }
    }
}

/// Precedence levels for parenthesis-free rendering: alternation binds
/// loosest, postfix closures tightest.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
enum Prec {
    Alt,
    Seq,
    Postfix,
}

fn write_prec(e: &PathExpr, min: Prec, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let own = match e {
        PathExpr::Alt(_) => Prec::Alt,
        PathExpr::Seq(_) => Prec::Seq,
        _ => Prec::Postfix,
    };
    let parens = own < min;
    if parens {
        f.write_str("(")?;
    }
    match e {
        PathExpr::Atom(label) => {
            if !label.is_empty() && label.chars().all(is_label_char) {
                f.write_str(label)?;
            } else {
                write!(f, "'{label}'")?;
            }
        }
        PathExpr::Seq(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    f.write_str("/")?;
                }
                write_prec(p, Prec::Seq, f)?;
            }
        }
        PathExpr::Alt(parts) => {
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    f.write_str("|")?;
                }
                write_prec(p, Prec::Seq, f)?;
            }
        }
        PathExpr::Star(inner) => {
            write_prec(inner, Prec::Postfix, f)?;
            f.write_str("*")?;
        }
        PathExpr::Plus(inner) => {
            write_prec(inner, Prec::Postfix, f)?;
            f.write_str("+")?;
        }
        PathExpr::Opt(inner) => {
            write_prec(inner, Prec::Postfix, f)?;
            f.write_str("?")?;
        }
    }
    if parens {
        f.write_str(")")?;
    }
    Ok(())
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_prec(self, Prec::Alt, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(s: &str) -> PathExpr {
        PathExpr::Atom(s.to_owned())
    }

    #[test]
    fn parse_atoms_and_operators() {
        assert_eq!(parse_path("next").unwrap(), atom("next"));
        assert_eq!(
            parse_path("a/b").unwrap(),
            PathExpr::Seq(vec![atom("a"), atom("b")])
        );
        assert_eq!(
            parse_path("a|b").unwrap(),
            PathExpr::Alt(vec![atom("a"), atom("b")])
        );
        assert_eq!(
            parse_path("a*").unwrap(),
            PathExpr::Star(Box::new(atom("a")))
        );
        assert_eq!(
            parse_path("a+").unwrap(),
            PathExpr::Plus(Box::new(atom("a")))
        );
        assert_eq!(
            parse_path("a?").unwrap(),
            PathExpr::Opt(Box::new(atom("a")))
        );
    }

    #[test]
    fn precedence_postfix_over_seq_over_alt() {
        // a/b*|c == (a/(b*)) | c
        assert_eq!(
            parse_path("a/b*|c").unwrap(),
            PathExpr::Alt(vec![
                PathExpr::Seq(vec![atom("a"), PathExpr::Star(Box::new(atom("b")))]),
                atom("c"),
            ])
        );
        // Parentheses override: (a/b)* and a/(b|c).
        assert_eq!(
            parse_path("(a/b)*").unwrap(),
            PathExpr::Star(Box::new(PathExpr::Seq(vec![atom("a"), atom("b")])))
        );
        assert_eq!(
            parse_path("a/(b|c)").unwrap(),
            PathExpr::Seq(vec![atom("a"), PathExpr::Alt(vec![atom("b"), atom("c")])])
        );
    }

    #[test]
    fn stacked_postfix_operators() {
        assert_eq!(
            parse_path("a*?").unwrap(),
            PathExpr::Opt(Box::new(PathExpr::Star(Box::new(atom("a")))))
        );
    }

    #[test]
    fn quoted_labels_carry_arbitrary_characters() {
        assert_eq!(
            parse_path("'http://example.org/knows'").unwrap(),
            atom("http://example.org/knows")
        );
        assert_eq!(
            parse_path("'has space'/b").unwrap(),
            PathExpr::Seq(vec![atom("has space"), atom("b")])
        );
    }

    #[test]
    fn uri_characters_without_slash_stay_bare() {
        assert_eq!(parse_path("foaf:knows").unwrap(), atom("foaf:knows"));
        assert_eq!(parse_path("part_of").unwrap(), atom("part_of"));
        assert_eq!(parse_path("a-b.c#d").unwrap(), atom("a-b.c#d"));
    }

    #[test]
    fn display_round_trips() {
        let zoo = [
            "next",
            "a/b/c",
            "a|b|c",
            "a*",
            "a+",
            "a?",
            "a/b*|c",
            "(a/b)*",
            "a/(b|c)+/d",
            "((a|b)/c)?",
            "'http://example.org/knows'/name",
            "a**",
        ];
        for text in zoo {
            let parsed = parse_path(text).unwrap_or_else(|e| panic!("parse `{text}`: {e}"));
            let rendered = parsed.to_string();
            let reparsed = parse_path(&rendered)
                .unwrap_or_else(|e| panic!("reparse `{rendered}` (from `{text}`): {e}"));
            assert_eq!(
                reparsed, parsed,
                "round-trip failed: `{text}` → `{rendered}`"
            );
        }
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(
            parse_path(" a / b | c ").unwrap(),
            parse_path("a/b|c").unwrap()
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let offset_of = |input: &str| match parse_path(input) {
            Err(Error::Parse { offset, .. }) => offset,
            other => panic!("expected a parse error for `{input}`, got {other:?}"),
        };
        assert_eq!(offset_of(""), 0);
        assert_eq!(offset_of("a//b"), 2); // empty concatenation operand
        assert_eq!(offset_of("a/"), 2); // trailing operator
        assert_eq!(offset_of("(a"), 2); // missing `)`
        assert_eq!(offset_of("a)b"), 1); // stray `)`
        assert_eq!(offset_of("*a"), 0); // postfix with no operand
        assert_eq!(offset_of("'unterminated"), 0);
        assert_eq!(offset_of("''"), 0); // empty quoted label
    }

    #[test]
    fn closure_detection_and_labels() {
        let e = parse_path("a/(b|c)+/d?").unwrap();
        assert!(e.has_closure());
        assert_eq!(e.labels(), vec!["a", "b", "c", "d"]);
        let flat = parse_path("a/b?|a").unwrap();
        assert!(!flat.has_closure());
        assert_eq!(flat.labels(), vec!["a", "b"]);
    }
}
