//! An indented, multi-line pretty-printer for TriAL expressions.
//!
//! The single-line [`Display`](std::fmt::Display) form of
//! [`trial_core::Expr`] is compact but hard to read for nested queries like
//! the paper's query `Q`. [`pretty`] renders the same syntax over multiple
//! lines with indentation; the output still parses back with
//! [`crate::parse`].

use trial_core::{Expr, StarDirection};

/// Renders an expression over multiple lines with two-space indentation.
pub fn pretty(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(expr, 0, &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_expr(expr: &Expr, level: usize, out: &mut String) {
    match expr {
        Expr::Rel(_) | Expr::Universe | Expr::Empty => {
            indent(level, out);
            out.push_str(&expr.to_string());
        }
        Expr::Select { input, cond } => {
            indent(level, out);
            out.push_str(&format!("SELECT[{cond}](\n"));
            write_expr(input, level + 1, out);
            out.push('\n');
            indent(level, out);
            out.push(')');
        }
        Expr::Complement(inner) => {
            indent(level, out);
            out.push_str("COMPL(\n");
            write_expr(inner, level + 1, out);
            out.push('\n');
            indent(level, out);
            out.push(')');
        }
        Expr::Union(a, b) | Expr::Diff(a, b) | Expr::Intersect(a, b) => {
            let op = match expr {
                Expr::Union(..) => "UNION",
                Expr::Diff(..) => "MINUS",
                _ => "INTERSECT",
            };
            indent(level, out);
            out.push_str("(\n");
            write_expr(a, level + 1, out);
            out.push('\n');
            indent(level + 1, out);
            out.push_str(op);
            out.push('\n');
            write_expr(b, level + 1, out);
            out.push('\n');
            indent(level, out);
            out.push(')');
        }
        Expr::Join {
            left,
            right,
            output,
            cond,
        } => {
            let spec = if cond.is_empty() {
                format!("JOIN[{output}]")
            } else {
                format!("JOIN[{output} | {cond}]")
            };
            indent(level, out);
            out.push_str("(\n");
            write_expr(left, level + 1, out);
            out.push('\n');
            indent(level + 1, out);
            out.push_str(&spec);
            out.push('\n');
            write_expr(right, level + 1, out);
            out.push('\n');
            indent(level, out);
            out.push(')');
        }
        Expr::Star {
            input,
            output,
            cond,
            direction,
        } => {
            let spec = if cond.is_empty() {
                format!("JOIN[{output}]")
            } else {
                format!("JOIN[{output} | {cond}]")
            };
            indent(level, out);
            out.push_str("STAR(\n");
            match direction {
                StarDirection::Right => {
                    write_expr(input, level + 1, out);
                    out.push('\n');
                    indent(level + 1, out);
                    out.push_str(&spec);
                }
                StarDirection::Left => {
                    indent(level + 1, out);
                    out.push_str(&spec);
                    out.push('\n');
                    write_expr(input, level + 1, out);
                }
            }
            out.push('\n');
            indent(level, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use trial_core::builder::queries;

    #[test]
    fn pretty_output_parses_back() {
        let exprs = vec![
            queries::example2("E"),
            queries::example2_extended("E"),
            queries::reach_forward("E"),
            queries::reach_down("E"),
            queries::same_company_reachability("E"),
            queries::at_least_six_objects(),
            Expr::rel("E").complement(),
            Expr::rel("E")
                .select(trial_core::Conditions::new().obj_eq_const(trial_core::Pos::L2, "part_of")),
        ];
        for e in exprs {
            let text = pretty(&e);
            let parsed =
                parse(&text).unwrap_or_else(|err| panic!("pretty output\n{text}\nfailed: {err}"));
            assert_eq!(parsed, e);
        }
    }

    #[test]
    fn pretty_is_indented_and_multiline() {
        let q = queries::same_company_reachability("E");
        let text = pretty(&q);
        assert!(text.lines().count() > 5);
        assert!(text.contains("  STAR("));
        assert!(text.starts_with("STAR("));
    }

    #[test]
    fn atoms_render_on_one_line() {
        assert_eq!(pretty(&Expr::rel("E")), "E");
        assert_eq!(pretty(&Expr::Universe), "U");
        assert_eq!(pretty(&Expr::Empty), "EMPTY");
    }
}
