//! Recursive-descent parser for the TriAL expression syntax.

use crate::lexer::{tokenize, Token, TokenKind};
use trial_core::{Cmp, Conditions, Error, Expr, OutputSpec, Pos, Result, Side, Value};

/// Parses a TriAL / TriAL\* expression from its textual form.
///
/// The accepted grammar (informally):
///
/// ```text
/// expr     := term ( binop term )*
/// binop    := UNION | MINUS | INTERSECT | JOIN spec
/// term     := EMPTY | U | ident
///           | SELECT spec ( expr )
///           | COMPL ( expr )
///           | STAR ( expr JOIN spec )          -- right Kleene closure
///           | STAR ( JOIN spec expr )          -- left Kleene closure
///           | ( expr )
/// spec     := [ pos , pos , pos ( | cond ( , cond )* )? ]
/// cond     := pos (=|!=) (pos | 'object')
///           | rho ( pos ) (=|!=) ( rho ( pos ) | value )
/// value    := integer | "string" | null | ( value , … )
/// pos      := 1 | 2 | 3 | 1' | 2' | 3'
/// ```
///
/// Binary operators are left-associative and have equal precedence, so
/// unparenthesised chains group as `((a op b) op c)`. The
/// [`Display`](std::fmt::Display) form of [`Expr`] always parenthesises, so
/// round-tripping is unambiguous.
pub fn parse(input: &str) -> Result<Expr> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, index: 0 };
    let expr = parser.parse_expr()?;
    parser.expect_eof()?;
    expr.validate()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    index: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.index].kind
    }

    fn peek_offset(&self) -> usize {
        self.tokens[self.index].offset
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.index].kind.clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            message: message.into(),
            offset: self.peek_offset(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing {}", self.peek())))
        }
    }

    fn ident_is(&self, word: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == word)
    }

    fn parse_expr(&mut self) -> Result<Expr> {
        let mut left = self.parse_term()?;
        loop {
            if self.ident_is("UNION") {
                self.advance();
                let right = self.parse_term()?;
                left = left.union(right);
            } else if self.ident_is("MINUS") {
                self.advance();
                let right = self.parse_term()?;
                left = left.minus(right);
            } else if self.ident_is("INTERSECT") {
                self.advance();
                let right = self.parse_term()?;
                left = left.intersect(right);
            } else if self.ident_is("JOIN") {
                self.advance();
                let (output, cond) = self.parse_spec()?;
                let right = self.parse_term()?;
                left = left.join(right, output, cond);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.advance();
                let inner = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(word) => match word.as_str() {
                "EMPTY" => {
                    self.advance();
                    Ok(Expr::Empty)
                }
                "U" => {
                    self.advance();
                    Ok(Expr::Universe)
                }
                "SELECT" => {
                    self.advance();
                    let (output, cond) = self.parse_select_spec()?;
                    if output.is_some() {
                        return Err(self.error("SELECT takes only conditions, not an output list"));
                    }
                    self.expect(&TokenKind::LParen)?;
                    let inner = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(inner.select(cond))
                }
                "COMPL" => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let inner = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(inner.complement())
                }
                "STAR" => {
                    self.advance();
                    self.expect(&TokenKind::LParen)?;
                    let star = self.parse_star_body()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(star)
                }
                "UNION" | "MINUS" | "INTERSECT" | "JOIN" => {
                    Err(self.error(format!("`{word}` is a keyword, not a relation name")))
                }
                _ => {
                    self.advance();
                    Ok(Expr::rel(word))
                }
            },
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }

    /// Parses the body of `STAR( … )`: either `expr JOIN spec` (right) or
    /// `JOIN spec expr` (left).
    ///
    /// The right form is mildly ambiguous because `JOIN spec` is also a
    /// binary operator: in `STAR(A JOIN[s1] B JOIN[s2])` the first `JOIN`
    /// combines `A` and `B` while the second is the star's own join. The
    /// disambiguation rule is that the star's join spec is the one
    /// immediately followed by the closing parenthesis (a term can never
    /// start with `)`).
    fn parse_star_body(&mut self) -> Result<Expr> {
        if self.ident_is("JOIN") {
            self.advance();
            let (output, cond) = self.parse_spec()?;
            let inner = self.parse_expr()?;
            return Ok(inner.left_star(output, cond));
        }
        let mut left = self.parse_term()?;
        loop {
            if self.ident_is("UNION") {
                self.advance();
                left = left.union(self.parse_term()?);
            } else if self.ident_is("MINUS") {
                self.advance();
                left = left.minus(self.parse_term()?);
            } else if self.ident_is("INTERSECT") {
                self.advance();
                left = left.intersect(self.parse_term()?);
            } else if self.ident_is("JOIN") {
                self.advance();
                let (output, cond) = self.parse_spec()?;
                if matches!(self.peek(), TokenKind::RParen) {
                    // This JOIN is the star's own join.
                    return Ok(left.right_star(output, cond));
                }
                left = left.join(self.parse_term()?, output, cond);
            } else {
                return Err(self.error("expected JOIN inside STAR(...)"));
            }
        }
    }

    /// Parses a join spec `[i,j,k]` or `[i,j,k | conds]`.
    fn parse_spec(&mut self) -> Result<(OutputSpec, Conditions)> {
        self.expect(&TokenKind::LBracket)?;
        let i = self.parse_pos()?;
        self.expect(&TokenKind::Comma)?;
        let j = self.parse_pos()?;
        self.expect(&TokenKind::Comma)?;
        let k = self.parse_pos()?;
        let cond = if matches!(self.peek(), TokenKind::Pipe) {
            self.advance();
            self.parse_conditions()?
        } else {
            Conditions::new()
        };
        self.expect(&TokenKind::RBracket)?;
        Ok((OutputSpec::new(i, j, k), cond))
    }

    /// Parses a selection spec `[conds]` (no output positions).
    ///
    /// Returns `(None, conds)`; the `Option` is reserved for error reporting
    /// if an output list is mistakenly supplied.
    fn parse_select_spec(&mut self) -> Result<(Option<OutputSpec>, Conditions)> {
        self.expect(&TokenKind::LBracket)?;
        let cond = if matches!(self.peek(), TokenKind::RBracket) {
            Conditions::new()
        } else {
            self.parse_conditions()?
        };
        self.expect(&TokenKind::RBracket)?;
        Ok((None, cond))
    }

    fn parse_conditions(&mut self) -> Result<Conditions> {
        let mut cond = Conditions::new();
        loop {
            cond = self.parse_condition(cond)?;
            if matches!(self.peek(), TokenKind::Comma) {
                self.advance();
            } else {
                return Ok(cond);
            }
        }
    }

    fn parse_condition(&mut self, cond: Conditions) -> Result<Conditions> {
        if self.ident_is("rho") {
            // Data condition: rho(p) op (rho(q) | value)
            self.advance();
            self.expect(&TokenKind::LParen)?;
            let lhs = self.parse_pos()?;
            self.expect(&TokenKind::RParen)?;
            let cmp = self.parse_cmp()?;
            if self.ident_is("rho") {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let rhs = self.parse_pos()?;
                self.expect(&TokenKind::RParen)?;
                Ok(match cmp {
                    Cmp::Eq => cond.data_eq(lhs, rhs),
                    Cmp::Neq => cond.data_neq(lhs, rhs),
                })
            } else {
                let value = self.parse_value()?;
                Ok(match cmp {
                    Cmp::Eq => cond.data_eq_const(lhs, value),
                    Cmp::Neq => cond.data_neq_const(lhs, value),
                })
            }
        } else {
            // Object condition: p op (q | 'name')
            let lhs = self.parse_pos()?;
            let cmp = self.parse_cmp()?;
            match self.peek().clone() {
                TokenKind::ObjConst(name) => {
                    self.advance();
                    Ok(match cmp {
                        Cmp::Eq => cond.obj_eq_const(lhs, name),
                        Cmp::Neq => cond.obj_neq_const(lhs, name),
                    })
                }
                _ => {
                    let rhs = self.parse_pos()?;
                    Ok(match cmp {
                        Cmp::Eq => cond.obj_eq(lhs, rhs),
                        Cmp::Neq => cond.obj_neq(lhs, rhs),
                    })
                }
            }
        }
    }

    fn parse_cmp(&mut self) -> Result<Cmp> {
        match self.peek() {
            TokenKind::Eq => {
                self.advance();
                Ok(Cmp::Eq)
            }
            TokenKind::Neq => {
                self.advance();
                Ok(Cmp::Neq)
            }
            other => Err(self.error(format!("expected `=` or `!=`, found {other}"))),
        }
    }

    fn parse_pos(&mut self) -> Result<Pos> {
        match self.peek().clone() {
            TokenKind::Int(n @ 1..=3) => {
                self.advance();
                let side = if matches!(self.peek(), TokenKind::Prime) {
                    self.advance();
                    Side::Right
                } else {
                    Side::Left
                };
                Ok(Pos::new(side, n as u8))
            }
            other => Err(self.error(format!(
                "expected a position (1, 2, 3, 1', 2', 3'), found {other}"
            ))),
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Value::Int(i))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Value::Str(s))
            }
            TokenKind::Ident(word) if word == "null" => {
                self.advance();
                Ok(Value::Null)
            }
            TokenKind::LParen => {
                self.advance();
                let mut items = Vec::new();
                if !matches!(self.peek(), TokenKind::RParen) {
                    loop {
                        items.push(self.parse_value()?);
                        if matches!(self.peek(), TokenKind::Comma) {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                Ok(Value::Tuple(items))
            }
            other => Err(self.error(format!(
                "expected a data value (integer, string, null or tuple), found {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::builder::queries;
    use trial_core::builder::ExprBuilderExt;

    #[test]
    fn parse_relation_and_constants() {
        assert_eq!(parse("E").unwrap(), Expr::rel("E"));
        assert_eq!(parse("U").unwrap(), Expr::Universe);
        assert_eq!(parse("EMPTY").unwrap(), Expr::Empty);
        assert_eq!(parse("(E)").unwrap(), Expr::rel("E"));
    }

    #[test]
    fn parse_paper_examples() {
        assert_eq!(
            parse("(E JOIN[1,3',3 | 2=1'] E)").unwrap(),
            queries::example2("E")
        );
        assert_eq!(
            parse("STAR(E JOIN[1,2,3' | 3=1'])").unwrap(),
            queries::reach_forward("E")
        );
        assert_eq!(
            parse("STAR(JOIN[1',2',3 | 1=2'] E)").unwrap(),
            queries::reach_down("E")
        );
        assert_eq!(
            parse("STAR(STAR(E JOIN[1,3',3 | 2=1']) JOIN[1,2,3' | 3=1',2=2'])").unwrap(),
            queries::same_company_reachability("E")
        );
    }

    #[test]
    fn parse_set_operations_left_associative() {
        let e = parse("A UNION B MINUS C INTERSECT D").unwrap();
        assert_eq!(
            e,
            Expr::rel("A")
                .union(Expr::rel("B"))
                .minus(Expr::rel("C"))
                .intersect(Expr::rel("D"))
        );
        // Parenthesised grouping overrides.
        let e = parse("A UNION (B MINUS C)").unwrap();
        assert_eq!(
            e,
            Expr::rel("A").union(Expr::rel("B").minus(Expr::rel("C")))
        );
    }

    #[test]
    fn parse_select_compl_and_conditions() {
        let e = parse("SELECT[2='part_of'](E)").unwrap();
        assert_eq!(
            e,
            Expr::rel("E").select(Conditions::new().obj_eq_const(Pos::L2, "part_of"))
        );
        let e = parse("COMPL(E)").unwrap();
        assert_eq!(e, Expr::rel("E").complement());
        let e = parse("SELECT[rho(1)=rho(3), 1!=3](E)").unwrap();
        assert_eq!(
            e,
            Expr::rel("E").select(
                Conditions::new()
                    .data_eq(Pos::L1, Pos::L3)
                    .obj_neq(Pos::L1, Pos::L3)
            )
        );
        let e = parse("SELECT[rho(2)=\"brother\", rho(3)!=null, rho(1)=42](E)").unwrap();
        match e {
            Expr::Select { cond, .. } => {
                assert_eq!(cond.eta.len(), 3);
            }
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn parse_join_without_conditions_and_bare_join() {
        let e = parse("(A JOIN[1,2,3'] B)").unwrap();
        assert_eq!(
            e,
            Expr::rel("A").join(
                Expr::rel("B"),
                OutputSpec::new(Pos::L1, Pos::L2, Pos::R3),
                Conditions::new()
            )
        );
        // Without surrounding parentheses, JOIN behaves as a binary operator.
        let e2 = parse("A JOIN[1,2,3'] B").unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn roundtrip_display_parse() {
        let zoo = vec![
            queries::example2("E"),
            queries::example2_extended("E"),
            queries::reach_forward("E"),
            queries::reach_down("E"),
            queries::reach_same_label("E"),
            queries::same_company_reachability("E"),
            queries::at_least_four_objects(),
            queries::at_least_six_objects(),
            Expr::rel("E").complement().intersect(Expr::Universe),
            Expr::rel("E")
                .select(Conditions::new().data_eq_const(Pos::L1, Value::str("x")))
                .minus(Expr::Empty),
            Expr::rel("E").intersect_via_join(Expr::rel("F")),
        ];
        for expr in zoo {
            let text = expr.to_string();
            let parsed = parse(&text).unwrap_or_else(|e| panic!("failed to parse `{text}`: {e}"));
            assert_eq!(parsed, expr, "round-trip failed for `{text}`");
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in [
            "",
            "(E",
            "E UNION",
            "STAR(E)",
            "E JOIN[1,2] E",
            "E JOIN[1,2,4] E",
            "SELECT[1=1'](E)", // primed position in selection
            "E extra",
            "JOIN",
            "STAR(JOIN[1,2,3'])",
            "E JOIN[1,2,3' | rho(1)=](E)",
        ] {
            assert!(parse(bad).is_err(), "expected `{bad}` to fail");
        }
    }

    #[test]
    fn parse_error_offsets_point_at_the_failing_token() {
        // `trial-server` returns these offsets in its JSON error bodies, so
        // they must identify the failing byte, not just "somewhere".
        let offset_of = |input: &str| match parse(input) {
            Err(Error::Parse { offset, .. }) => offset,
            other => panic!("expected a parse error for `{input}`, got {other:?}"),
        };
        assert_eq!(offset_of("E extra"), 2); // the trailing identifier
        assert_eq!(offset_of("E JOIN[1,2,4] E"), 11); // the out-of-range position
        assert_eq!(offset_of("E UNION"), 7); // end of input
        assert_eq!(offset_of(""), 0);
        assert_eq!(offset_of("(E"), 2); // missing `)`
        assert_eq!(offset_of("E JOIN[1,2,3' | 1**2] E"), 17); // bad comparator
    }

    #[test]
    fn parse_uri_style_relation_names() {
        let e = parse("foaf:knows UNION http://example.org/pred").unwrap();
        assert_eq!(
            e,
            Expr::rel("foaf:knows").union(Expr::rel("http://example.org/pred"))
        );
    }

    #[test]
    fn parse_tuple_values() {
        let e = parse("SELECT[rho(1)=(\"Mario\", 23, null)](E)").unwrap();
        match e {
            Expr::Select { cond, .. } => {
                assert_eq!(cond.eta.len(), 1);
            }
            _ => panic!("expected select"),
        }
    }
}
