//! Regular expressions over the edge alphabet Σ, with NFA compilation.
//!
//! These are the path languages of regular path queries (RPQs): a path
//! `π = v0 →a0 v1 →a1 … →a(m-1) vm` matches the RPQ `x →L y` when its label
//! word `a0 a1 … a(m-1)` belongs to `L`.

use std::collections::BTreeSet;
use std::fmt;

/// A regular expression over edge labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The empty word ε.
    Epsilon,
    /// A single label `a ∈ Σ`.
    Label(String),
    /// Concatenation `r1 · r2`.
    Concat(Box<Regex>, Box<Regex>),
    /// Union `r1 + r2`.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star `r*` (zero or more).
    Star(Box<Regex>),
    /// One or more repetitions `r⁺`.
    Plus(Box<Regex>),
}

impl Regex {
    /// A single label.
    pub fn label(l: impl Into<String>) -> Regex {
        Regex::Label(l.into())
    }

    /// Concatenation.
    pub fn then(self, other: Regex) -> Regex {
        Regex::Concat(Box::new(self), Box::new(other))
    }

    /// Union.
    pub fn or(self, other: Regex) -> Regex {
        Regex::Alt(Box::new(self), Box::new(other))
    }

    /// Kleene star.
    pub fn star(self) -> Regex {
        Regex::Star(Box::new(self))
    }

    /// One-or-more repetition.
    pub fn plus(self) -> Regex {
        Regex::Plus(Box::new(self))
    }

    /// The set of labels mentioned by the expression.
    pub fn labels(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Label(l) => {
                out.insert(l.as_str());
            }
            Regex::Concat(a, b) | Regex::Alt(a, b) => {
                a.collect_labels(out);
                b.collect_labels(out);
            }
            Regex::Star(a) | Regex::Plus(a) => a.collect_labels(out),
        }
    }

    /// `true` if the empty word belongs to the language.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Label(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
            Regex::Plus(a) => a.nullable(),
        }
    }

    /// Compiles the expression into an ε-free-transitions NFA (ε-transitions
    /// are kept explicitly and handled by ε-closure during evaluation).
    pub fn to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::default();
        let start = nfa.new_state();
        let accept = nfa.new_state();
        nfa.start = start;
        nfa.accept = accept;
        nfa.build(self, start, accept);
        nfa
    }

    /// Tests whether a word (sequence of labels) belongs to the language.
    pub fn matches<'a>(&self, word: impl IntoIterator<Item = &'a str>) -> bool {
        let nfa = self.to_nfa();
        let mut current = nfa.epsilon_closure([nfa.start].into_iter().collect());
        for label in word {
            current = nfa.step(&current, label);
            if current.is_empty() {
                return false;
            }
        }
        current.contains(&nfa.accept)
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Empty => write!(f, "∅"),
            Regex::Epsilon => write!(f, "ε"),
            Regex::Label(l) => write!(f, "{l}"),
            Regex::Concat(a, b) => write!(f, "({a}·{b})"),
            Regex::Alt(a, b) => write!(f, "({a}+{b})"),
            Regex::Star(a) => write!(f, "{a}*"),
            Regex::Plus(a) => write!(f, "{a}+"),
        }
    }
}

/// A non-deterministic finite automaton over edge labels.
#[derive(Debug, Clone, Default)]
pub struct Nfa {
    /// Number of states.
    pub state_count: usize,
    /// Labelled transitions `(from, label, to)`.
    pub transitions: Vec<(usize, String, usize)>,
    /// ε-transitions `(from, to)`.
    pub epsilon: Vec<(usize, usize)>,
    /// Start state.
    pub start: usize,
    /// Accepting state (single, by construction).
    pub accept: usize,
}

impl Nfa {
    fn new_state(&mut self) -> usize {
        self.state_count += 1;
        self.state_count - 1
    }

    fn build(&mut self, re: &Regex, from: usize, to: usize) {
        match re {
            Regex::Empty => {}
            Regex::Epsilon => self.epsilon.push((from, to)),
            Regex::Label(l) => self.transitions.push((from, l.clone(), to)),
            Regex::Concat(a, b) => {
                let mid = self.new_state();
                self.build(a, from, mid);
                self.build(b, mid, to);
            }
            Regex::Alt(a, b) => {
                self.build(a, from, to);
                self.build(b, from, to);
            }
            Regex::Star(a) => {
                let hub = self.new_state();
                self.epsilon.push((from, hub));
                self.epsilon.push((hub, to));
                self.build(a, hub, hub);
            }
            Regex::Plus(a) => {
                let hub = self.new_state();
                self.build(a, from, hub);
                self.build(a, hub, hub);
                self.epsilon.push((hub, to));
            }
        }
    }

    /// The ε-closure of a set of states.
    pub fn epsilon_closure(&self, mut states: BTreeSet<usize>) -> BTreeSet<usize> {
        let mut changed = true;
        while changed {
            changed = false;
            for &(from, to) in &self.epsilon {
                if states.contains(&from) && states.insert(to) {
                    changed = true;
                }
            }
        }
        states
    }

    /// One step of the NFA on a label, including ε-closure of the result.
    pub fn step(&self, states: &BTreeSet<usize>, label: &str) -> BTreeSet<usize> {
        let mut next = BTreeSet::new();
        for &(from, ref l, to) in &self.transitions {
            if l == label && states.contains(&from) {
                next.insert(to);
            }
        }
        self.epsilon_closure(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_simple_words() {
        // (knows · knows)* + likes
        let re = Regex::label("knows")
            .then(Regex::label("knows"))
            .star()
            .or(Regex::label("likes"));
        assert!(re.matches(Vec::<&str>::new())); // ε via the star branch
        assert!(re.matches(["likes"]));
        assert!(re.matches(["knows", "knows"]));
        assert!(re.matches(["knows", "knows", "knows", "knows"]));
        assert!(!re.matches(["knows"]));
        assert!(!re.matches(["likes", "likes"]));
    }

    #[test]
    fn plus_requires_one_occurrence() {
        let re = Regex::label("a").plus();
        assert!(!re.matches(Vec::<&str>::new()));
        assert!(re.matches(["a"]));
        assert!(re.matches(["a", "a", "a"]));
        assert!(!re.matches(["b"]));
    }

    #[test]
    fn empty_and_epsilon() {
        assert!(!Regex::Empty.matches(Vec::<&str>::new()));
        assert!(Regex::Epsilon.matches(Vec::<&str>::new()));
        assert!(!Regex::Epsilon.matches(["a"]));
        assert!(Regex::Empty.star().matches(Vec::<&str>::new()));
    }

    #[test]
    fn nullable_and_labels() {
        let re = Regex::label("a").then(Regex::label("b").star());
        assert!(!re.nullable());
        assert!(Regex::label("a").star().nullable());
        assert!(Regex::Epsilon.nullable());
        assert!(!Regex::Empty.nullable());
        assert_eq!(re.labels().into_iter().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn display_forms() {
        let re = Regex::label("a")
            .then(Regex::label("b"))
            .or(Regex::Epsilon)
            .star();
        assert_eq!(re.to_string(), "((a·b)+ε)*");
        assert_eq!(Regex::Empty.to_string(), "∅");
        assert_eq!(Regex::label("x").plus().to_string(), "x+");
    }
}
