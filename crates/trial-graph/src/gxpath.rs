//! GXPath: the graph adaptation of XPath used as the yardstick language in
//! Section 6.2, in both its navigational form and the data extension
//! GXPath(∼).
//!
//! Path expressions denote binary relations over nodes, node expressions
//! denote sets of nodes:
//!
//! ```text
//! α, β := ε | a | a⁻ | [ϕ] | α·β | α∪β | ᾱ | α* | α= | α≠
//! ϕ, ψ := ⊤ | ¬ϕ | ϕ∧ψ | ϕ∨ψ | ⟨α⟩ | ⟨α = β⟩ | ⟨α ≠ β⟩
//! ```
//!
//! `ᾱ` is the complement of `α` relative to `V × V`, `α*` the
//! reflexive-transitive closure, `α=`/`α≠` keep the pairs whose endpoints
//! carry (un)equal data values, and `⟨α θ β⟩` are the XPath-style data joins.

use crate::graph::{GraphDb, NodeId};
use crate::nre::NodePairs;
use std::collections::HashSet;
use std::fmt;

/// A GXPath path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathExpr {
    /// `ε` — the diagonal.
    Epsilon,
    /// `a` — forward edges with label `a`.
    Label(String),
    /// `a⁻` — inverse edges.
    Inverse(String),
    /// `[ϕ]` — node test.
    Test(Box<NodeExpr>),
    /// `α · β` — composition.
    Concat(Box<PathExpr>, Box<PathExpr>),
    /// `α ∪ β` — union.
    Union(Box<PathExpr>, Box<PathExpr>),
    /// `ᾱ` — complement with respect to `V × V`.
    Complement(Box<PathExpr>),
    /// `α*` — reflexive-transitive closure.
    Star(Box<PathExpr>),
    /// `α=` — pairs of `α` whose endpoints have equal data values.
    DataEq(Box<PathExpr>),
    /// `α≠` — pairs of `α` whose endpoints have different data values.
    DataNeq(Box<PathExpr>),
}

/// A GXPath node expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeExpr {
    /// `⊤` — all nodes.
    Top,
    /// `¬ϕ`.
    Not(Box<NodeExpr>),
    /// `ϕ ∧ ψ`.
    And(Box<NodeExpr>, Box<NodeExpr>),
    /// `ϕ ∨ ψ`.
    Or(Box<NodeExpr>, Box<NodeExpr>),
    /// `⟨α⟩` — nodes with an outgoing `α`-path.
    Exists(Box<PathExpr>),
    /// `⟨α = β⟩` — nodes with `α`- and `β`-successors of equal data value.
    ExistsEq(Box<PathExpr>, Box<PathExpr>),
    /// `⟨α ≠ β⟩` — nodes with `α`- and `β`-successors of different data value.
    ExistsNeq(Box<PathExpr>, Box<PathExpr>),
}

impl PathExpr {
    /// A forward label step.
    pub fn label(l: impl Into<String>) -> PathExpr {
        PathExpr::Label(l.into())
    }

    /// An inverse label step.
    pub fn inverse(l: impl Into<String>) -> PathExpr {
        PathExpr::Inverse(l.into())
    }

    /// Node test `[ϕ]`.
    pub fn test(phi: NodeExpr) -> PathExpr {
        PathExpr::Test(Box::new(phi))
    }

    /// Composition.
    pub fn then(self, other: PathExpr) -> PathExpr {
        PathExpr::Concat(Box::new(self), Box::new(other))
    }

    /// Union.
    pub fn or(self, other: PathExpr) -> PathExpr {
        PathExpr::Union(Box::new(self), Box::new(other))
    }

    /// Complement relative to `V × V`.
    pub fn complement(self) -> PathExpr {
        PathExpr::Complement(Box::new(self))
    }

    /// Reflexive-transitive closure.
    pub fn star(self) -> PathExpr {
        PathExpr::Star(Box::new(self))
    }

    /// Data-equality restriction `α=`.
    pub fn data_eq(self) -> PathExpr {
        PathExpr::DataEq(Box::new(self))
    }

    /// Data-inequality restriction `α≠`.
    pub fn data_neq(self) -> PathExpr {
        PathExpr::DataNeq(Box::new(self))
    }
}

impl NodeExpr {
    /// `⟨α⟩`.
    pub fn exists(alpha: PathExpr) -> NodeExpr {
        NodeExpr::Exists(Box::new(alpha))
    }

    /// `¬ϕ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> NodeExpr {
        NodeExpr::Not(Box::new(self))
    }

    /// `ϕ ∧ ψ`.
    pub fn and(self, other: NodeExpr) -> NodeExpr {
        NodeExpr::And(Box::new(self), Box::new(other))
    }

    /// `ϕ ∨ ψ`.
    pub fn or(self, other: NodeExpr) -> NodeExpr {
        NodeExpr::Or(Box::new(self), Box::new(other))
    }

    /// `⟨α = β⟩`.
    pub fn exists_eq(alpha: PathExpr, beta: PathExpr) -> NodeExpr {
        NodeExpr::ExistsEq(Box::new(alpha), Box::new(beta))
    }

    /// `⟨α ≠ β⟩`.
    pub fn exists_neq(alpha: PathExpr, beta: PathExpr) -> NodeExpr {
        NodeExpr::ExistsNeq(Box::new(alpha), Box::new(beta))
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathExpr::Epsilon => write!(f, "ε"),
            PathExpr::Label(l) => write!(f, "{l}"),
            PathExpr::Inverse(l) => write!(f, "{l}^-"),
            PathExpr::Test(phi) => write!(f, "[{phi}]"),
            PathExpr::Concat(a, b) => write!(f, "({a}·{b})"),
            PathExpr::Union(a, b) => write!(f, "({a}∪{b})"),
            PathExpr::Complement(a) => write!(f, "~({a})"),
            PathExpr::Star(a) => write!(f, "{a}*"),
            PathExpr::DataEq(a) => write!(f, "({a})="),
            PathExpr::DataNeq(a) => write!(f, "({a})!="),
        }
    }
}

impl fmt::Display for NodeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeExpr::Top => write!(f, "⊤"),
            NodeExpr::Not(a) => write!(f, "¬({a})"),
            NodeExpr::And(a, b) => write!(f, "({a}∧{b})"),
            NodeExpr::Or(a, b) => write!(f, "({a}∨{b})"),
            NodeExpr::Exists(a) => write!(f, "<{a}>"),
            NodeExpr::ExistsEq(a, b) => write!(f, "<{a} = {b}>"),
            NodeExpr::ExistsNeq(a, b) => write!(f, "<{a} != {b}>"),
        }
    }
}

fn compose(a: &NodePairs, b: &NodePairs) -> NodePairs {
    let mut out = NodePairs::new();
    for &(x, y) in a {
        for &(y2, z) in b {
            if y == y2 {
                out.insert((x, z));
            }
        }
    }
    out
}

fn transitive_closure(rel: &NodePairs) -> NodePairs {
    let mut closure = rel.clone();
    loop {
        let step = compose(&closure, rel);
        let before = closure.len();
        closure.extend(step);
        if closure.len() == before {
            return closure;
        }
    }
}

/// Evaluates a path expression to the binary relation it denotes over `graph`.
pub fn evaluate_path(graph: &GraphDb, alpha: &PathExpr) -> NodePairs {
    match alpha {
        PathExpr::Epsilon => graph.nodes().map(|v| (v, v)).collect(),
        PathExpr::Label(l) => graph.label_pairs(l).into_iter().collect(),
        PathExpr::Inverse(l) => graph
            .label_pairs(l)
            .into_iter()
            .map(|(a, b)| (b, a))
            .collect(),
        PathExpr::Test(phi) => evaluate_node(graph, phi)
            .into_iter()
            .map(|v| (v, v))
            .collect(),
        PathExpr::Concat(a, b) => compose(&evaluate_path(graph, a), &evaluate_path(graph, b)),
        PathExpr::Union(a, b) => {
            let mut out = evaluate_path(graph, a);
            out.extend(evaluate_path(graph, b));
            out
        }
        PathExpr::Complement(a) => {
            let inner = evaluate_path(graph, a);
            let mut out = NodePairs::new();
            for u in graph.nodes() {
                for v in graph.nodes() {
                    if !inner.contains(&(u, v)) {
                        out.insert((u, v));
                    }
                }
            }
            out
        }
        PathExpr::Star(a) => {
            let mut out = transitive_closure(&evaluate_path(graph, a));
            out.extend(graph.nodes().map(|v| (v, v)));
            out
        }
        PathExpr::DataEq(a) => evaluate_path(graph, a)
            .into_iter()
            .filter(|(u, v)| graph.value(*u) == graph.value(*v))
            .collect(),
        PathExpr::DataNeq(a) => evaluate_path(graph, a)
            .into_iter()
            .filter(|(u, v)| graph.value(*u) != graph.value(*v))
            .collect(),
    }
}

/// Evaluates a node expression to the set of nodes it denotes over `graph`.
pub fn evaluate_node(graph: &GraphDb, phi: &NodeExpr) -> HashSet<NodeId> {
    match phi {
        NodeExpr::Top => graph.nodes().collect(),
        NodeExpr::Not(a) => {
            let inner = evaluate_node(graph, a);
            graph.nodes().filter(|v| !inner.contains(v)).collect()
        }
        NodeExpr::And(a, b) => {
            let ea = evaluate_node(graph, a);
            let eb = evaluate_node(graph, b);
            ea.intersection(&eb).copied().collect()
        }
        NodeExpr::Or(a, b) => {
            let mut ea = evaluate_node(graph, a);
            ea.extend(evaluate_node(graph, b));
            ea
        }
        NodeExpr::Exists(alpha) => evaluate_path(graph, alpha)
            .into_iter()
            .map(|(u, _)| u)
            .collect(),
        NodeExpr::ExistsEq(alpha, beta) => exists_data(graph, alpha, beta, true),
        NodeExpr::ExistsNeq(alpha, beta) => exists_data(graph, alpha, beta, false),
    }
}

fn exists_data(
    graph: &GraphDb,
    alpha: &PathExpr,
    beta: &PathExpr,
    want_eq: bool,
) -> HashSet<NodeId> {
    let ea = evaluate_path(graph, alpha);
    let eb = evaluate_path(graph, beta);
    let mut out = HashSet::new();
    for &(u, va) in &ea {
        for &(u2, vb) in &eb {
            if u == u2 {
                let eq = graph.value(va) == graph.value(vb);
                if eq == want_eq {
                    out.insert(u);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphDbBuilder;
    use trial_core::Value;

    fn social() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.edge("mario", "knows", "luigi");
        b.edge("luigi", "knows", "peach");
        b.edge("peach", "likes", "mario");
        b.edge("mario", "likes", "peach");
        b.node_with_value("mario", Value::int(23));
        b.node_with_value("luigi", Value::int(27));
        b.node_with_value("peach", Value::int(23));
        b.finish()
    }

    fn id(g: &GraphDb, n: &str) -> NodeId {
        g.node_id(n).unwrap()
    }

    #[test]
    fn basic_paths() {
        let g = social();
        let knows = evaluate_path(&g, &PathExpr::label("knows"));
        assert_eq!(knows.len(), 2);
        let inv = evaluate_path(&g, &PathExpr::inverse("knows"));
        assert!(inv.contains(&(id(&g, "luigi"), id(&g, "mario"))));
        let eps = evaluate_path(&g, &PathExpr::Epsilon);
        assert_eq!(eps.len(), 3);
    }

    #[test]
    fn composition_union_star() {
        let g = social();
        let two_hops = evaluate_path(&g, &PathExpr::label("knows").then(PathExpr::label("knows")));
        assert_eq!(two_hops.len(), 1);
        assert!(two_hops.contains(&(id(&g, "mario"), id(&g, "peach"))));
        let any = evaluate_path(
            &g,
            &PathExpr::label("knows").or(PathExpr::label("likes")).star(),
        );
        // Everything reaches everything in this little cycle.
        assert_eq!(any.len(), 9);
    }

    #[test]
    fn path_complement() {
        let g = social();
        let not_knows = evaluate_path(&g, &PathExpr::label("knows").complement());
        assert_eq!(not_knows.len(), 9 - 2);
        assert!(!not_knows.contains(&(id(&g, "mario"), id(&g, "luigi"))));
        assert!(not_knows.contains(&(id(&g, "luigi"), id(&g, "mario"))));
        // Complement twice is identity.
        let back = evaluate_path(&g, &PathExpr::label("knows").complement().complement());
        assert_eq!(back, evaluate_path(&g, &PathExpr::label("knows")));
    }

    #[test]
    fn node_tests_and_boolean_ops() {
        let g = social();
        // Nodes with an outgoing `likes` edge.
        let likes_something = NodeExpr::exists(PathExpr::label("likes"));
        let res = evaluate_node(&g, &likes_something);
        assert_eq!(res.len(), 2);
        // ¬⟨likes⟩ = just luigi.
        let res = evaluate_node(&g, &likes_something.clone().not());
        assert_eq!(res, [id(&g, "luigi")].into_iter().collect());
        // ⟨knows⟩ ∧ ⟨likes⟩ = mario (knows luigi, likes peach).
        let both = NodeExpr::exists(PathExpr::label("knows")).and(likes_something.clone());
        assert_eq!(
            evaluate_node(&g, &both),
            [id(&g, "mario")].into_iter().collect()
        );
        // ⊤ ∨ anything = all nodes.
        let all = NodeExpr::Top.or(likes_something);
        assert_eq!(evaluate_node(&g, &all).len(), 3);
        // Using a node test inside a path: knows·[⟨likes⟩].
        let path = PathExpr::label("knows")
            .then(PathExpr::test(NodeExpr::exists(PathExpr::label("likes"))));
        let res = evaluate_path(&g, &path);
        // luigi --knows--> peach, and peach likes mario.
        assert!(res.contains(&(id(&g, "luigi"), id(&g, "peach"))));
        assert!(!res.contains(&(id(&g, "mario"), id(&g, "luigi"))));
    }

    #[test]
    fn data_comparisons() {
        let g = social();
        // knows·knows relates mario (23) to peach (23): kept by =, dropped by ≠.
        let two_hops = PathExpr::label("knows").then(PathExpr::label("knows"));
        assert_eq!(evaluate_path(&g, &two_hops.clone().data_eq()).len(), 1);
        assert_eq!(evaluate_path(&g, &two_hops.data_neq()).len(), 0);
        // knows relates mario (23) to luigi (27): kept by ≠ only.
        assert_eq!(
            evaluate_path(&g, &PathExpr::label("knows").data_neq()).len(),
            2
        );
        // ⟨knows = likes⟩: a node with a knows-successor and a likes-successor
        // of equal data value. mario: knows luigi(27) / likes peach(23) → no;
        // peach: no knows edge → no; luigi: no likes edge → no.
        let q = NodeExpr::exists_eq(PathExpr::label("knows"), PathExpr::label("likes"));
        assert!(evaluate_node(&g, &q).is_empty());
        // ⟨knows ≠ likes⟩: mario qualifies (27 vs 23).
        let q = NodeExpr::exists_neq(PathExpr::label("knows"), PathExpr::label("likes"));
        assert_eq!(
            evaluate_node(&g, &q),
            [id(&g, "mario")].into_iter().collect()
        );
    }

    #[test]
    fn display_renders() {
        let alpha = PathExpr::label("a")
            .then(PathExpr::test(NodeExpr::Top.not()))
            .or(PathExpr::inverse("b"))
            .star()
            .data_eq();
        let text = alpha.to_string();
        assert!(text.contains("a"));
        assert!(text.contains("¬(⊤)"));
        assert!(text.contains("b^-"));
        let phi = NodeExpr::exists_eq(PathExpr::Epsilon, PathExpr::label("c"));
        assert_eq!(phi.to_string(), "<ε = c>");
    }
}
