//! Conjunctive nested regular expressions (CNREs) and CRPQs.
//!
//! A CNRE is a query `ϕ(x̄) = ∃ȳ ⋀ᵢ (uᵢ --eᵢ--> vᵢ)` where every `uᵢ, vᵢ` is
//! a variable from `x̄ ∪ ȳ` and every `eᵢ` is an NRE (a CRPQ is the special
//! case where the `eᵢ` are plain regular expressions). Section 6.2 compares
//! them with TriAL\*: CNREs can express queries beyond TriAL\* (e.g. the
//! existence of a 7-clique needs more than six variables), while TriAL\* can
//! express non-monotone queries that no CNRE can (Theorem 8).

use crate::graph::{GraphDb, NodeId};
use crate::nre::{evaluate_nre, NodePairs, Nre};
use std::collections::{BTreeSet, HashMap, HashSet};

/// One atom `u --e--> v` of a conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnreAtom {
    /// Source variable.
    pub from: String,
    /// The nested regular expression labelling the atom.
    pub nre: Nre,
    /// Target variable.
    pub to: String,
}

/// A conjunctive nested regular expression query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnre {
    /// Free (output) variables, in output order.
    pub head: Vec<String>,
    /// The conjuncts; variables not in `head` are existentially quantified.
    pub atoms: Vec<CnreAtom>,
}

impl Cnre {
    /// Creates a query with the given head variables.
    pub fn new(head: impl IntoIterator<Item = impl Into<String>>) -> Self {
        Cnre {
            head: head.into_iter().map(Into::into).collect(),
            atoms: Vec::new(),
        }
    }

    /// Adds an atom `from --nre--> to`.
    pub fn atom(mut self, from: impl Into<String>, nre: Nre, to: impl Into<String>) -> Self {
        self.atoms.push(CnreAtom {
            from: from.into(),
            nre,
            to: to.into(),
        });
        self
    }

    /// All variables of the query.
    pub fn variables(&self) -> BTreeSet<&str> {
        let mut vars: BTreeSet<&str> = self.head.iter().map(String::as_str).collect();
        for atom in &self.atoms {
            vars.insert(&atom.from);
            vars.insert(&atom.to);
        }
        vars
    }

    /// Number of distinct variables (the paper's bound for containment in
    /// TriAL\* is three — Theorem 8).
    pub fn variable_count(&self) -> usize {
        self.variables().len()
    }
}

/// Evaluates a CNRE, returning the set of head-variable tuples.
pub fn evaluate_cnre(graph: &GraphDb, query: &Cnre) -> HashSet<Vec<NodeId>> {
    // Pre-compute the binary relation of each atom.
    let relations: Vec<NodePairs> = query
        .atoms
        .iter()
        .map(|a| evaluate_nre(graph, &a.nre))
        .collect();
    let mut results = HashSet::new();
    let mut binding: HashMap<String, NodeId> = HashMap::new();
    search(graph, query, &relations, 0, &mut binding, &mut results);
    results
}

fn search(
    graph: &GraphDb,
    query: &Cnre,
    relations: &[NodePairs],
    level: usize,
    binding: &mut HashMap<String, NodeId>,
    results: &mut HashSet<Vec<NodeId>>,
) {
    if level == query.atoms.len() {
        // All atoms satisfied; head variables that never occur in an atom
        // range over all nodes (rare, but keep the semantics total).
        let unbound: Vec<String> = query
            .head
            .iter()
            .filter(|v| !binding.contains_key(v.as_str()))
            .cloned()
            .collect();
        if unbound.is_empty() {
            results.insert(query.head.iter().map(|v| binding[v.as_str()]).collect());
        } else {
            enumerate_unbound(graph, query, &unbound, 0, binding, results);
        }
        return;
    }
    let atom = &query.atoms[level];
    for &(u, v) in &relations[level] {
        let mut added: Vec<String> = Vec::new();
        let mut ok = true;
        for (var, value) in [(&atom.from, u), (&atom.to, v)] {
            match binding.get(var.as_str()) {
                Some(&bound) if bound != value => {
                    ok = false;
                    break;
                }
                Some(_) => {}
                None => {
                    binding.insert(var.clone(), value);
                    added.push(var.clone());
                }
            }
        }
        if ok {
            search(graph, query, relations, level + 1, binding, results);
        }
        for var in &added {
            binding.remove(var);
        }
    }
}

fn enumerate_unbound(
    graph: &GraphDb,
    query: &Cnre,
    unbound: &[String],
    idx: usize,
    binding: &mut HashMap<String, NodeId>,
    results: &mut HashSet<Vec<NodeId>>,
) {
    if idx == unbound.len() {
        results.insert(query.head.iter().map(|v| binding[v.as_str()]).collect());
        return;
    }
    for node in graph.nodes() {
        binding.insert(unbound[idx].clone(), node);
        enumerate_unbound(graph, query, unbound, idx + 1, binding, results);
    }
    binding.remove(&unbound[idx]);
}

/// The Boolean "there is a k-clique over label `l`" query used in the proof
/// of Theorem 8 (CNREs can demand a 7-clique, which needs 7 variables and is
/// therefore outside TriAL\* ⊆ L⁶∞ω). Returns a query with an empty head.
pub fn clique_query(k: usize, label: &str) -> Cnre {
    let mut q = Cnre::new(Vec::<String>::new());
    for i in 0..k {
        for j in 0..k {
            if i != j {
                q = q.atom(format!("x{i}"), Nre::label(label), format!("x{j}"));
            }
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphDbBuilder;

    fn triangle_plus_tail() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.edge("a", "l", "b");
        b.edge("b", "l", "c");
        b.edge("c", "l", "a");
        b.edge("c", "l", "d"); // tail
        b.finish()
    }

    #[test]
    fn conjunction_joins_on_shared_variables() {
        let g = triangle_plus_tail();
        // Pairs (x, z) with a common l-successor: x --l--> y and z --l--> y.
        let q =
            Cnre::new(["x", "z"])
                .atom("x", Nre::label("l"), "y")
                .atom("z", Nre::label("l"), "y");
        let result = evaluate_cnre(&g, &q);
        let named: BTreeSet<(String, String)> = result
            .iter()
            .map(|t| (g.node_name(t[0]).to_owned(), g.node_name(t[1]).to_owned()))
            .collect();
        // Every node is paired with itself; b and d share the successor... no,
        // b's successor is c, d has none. a and c both reach distinct targets,
        // so only the reflexive pairs plus none others — check reflexive ones.
        assert!(named.contains(&("a".into(), "a".into())));
        assert!(named.contains(&("c".into(), "c".into())));
        assert!(!named.contains(&("d".into(), "d".into()))); // d has no successor
    }

    #[test]
    fn directed_cycle_query() {
        let g = triangle_plus_tail();
        // A directed triangle through x: x → y → z → x.
        let q = Cnre::new(["x"])
            .atom("x", Nre::label("l"), "y")
            .atom("y", Nre::label("l"), "z")
            .atom("z", Nre::label("l"), "x");
        let result = evaluate_cnre(&g, &q);
        assert_eq!(result.len(), 3); // a, b, c each lie on the triangle
        assert_eq!(q.variable_count(), 3);
    }

    #[test]
    fn boolean_query_with_empty_head() {
        let g = triangle_plus_tail();
        // Is there any l-edge at all? (Boolean query: head is empty, the
        // result is a singleton set containing the empty tuple iff true.)
        let q = Cnre::new(Vec::<String>::new()).atom("x", Nre::label("l"), "y");
        let result = evaluate_cnre(&g, &q);
        assert_eq!(result.len(), 1);
        let q = Cnre::new(Vec::<String>::new()).atom("x", Nre::label("missing"), "y");
        assert!(evaluate_cnre(&g, &q).is_empty());
    }

    #[test]
    fn clique_query_detects_cliques() {
        // A directed 3-clique (all ordered pairs of distinct nodes).
        let mut b = GraphDbBuilder::new();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    b.edge(format!("n{i}"), "l", format!("n{j}"));
                }
            }
        }
        let clique3 = b.finish();
        assert_eq!(evaluate_cnre(&clique3, &clique_query(3, "l")).len(), 1);
        // The triangle-with-tail graph is a directed cycle, not a clique.
        let g = triangle_plus_tail();
        assert!(evaluate_cnre(&g, &clique_query(3, "l")).is_empty());
        assert_eq!(clique_query(7, "l").variable_count(), 7);
    }

    #[test]
    fn cnres_are_monotone() {
        // The monotonicity that separates CNREs from TriAL* (Theorem 8):
        // adding edges never removes answers.
        let small = triangle_plus_tail();
        let mut b = GraphDbBuilder::new();
        for e in small.edges() {
            b.edge(
                small.node_name(e.source),
                e.label.clone(),
                small.node_name(e.target),
            );
        }
        b.edge("d", "l", "a"); // extra edge
        let bigger = b.finish();
        let q = Cnre::new(["x"])
            .atom("x", Nre::label("l"), "y")
            .atom("y", Nre::label("l"), "z")
            .atom("z", Nre::label("l"), "x");
        let before: BTreeSet<String> = evaluate_cnre(&small, &q)
            .iter()
            .map(|t| small.node_name(t[0]).to_owned())
            .collect();
        let after: BTreeSet<String> = evaluate_cnre(&bigger, &q)
            .iter()
            .map(|t| bigger.node_name(t[0]).to_owned())
            .collect();
        assert!(before.is_subset(&after));
        assert!(after.len() >= before.len());
    }

    #[test]
    fn head_only_variables_range_over_all_nodes() {
        let g = triangle_plus_tail();
        let q = Cnre::new(["x", "free"]).atom("x", Nre::label("l"), "y");
        let result = evaluate_cnre(&g, &q);
        // 4 sources with an l-edge? a, b, c have out-edges; c has two but
        // sources dedup; times 4 choices of `free`.
        let sources: BTreeSet<_> = result.iter().map(|t| t[0]).collect();
        assert_eq!(sources.len(), 3);
        assert_eq!(result.len(), 3 * g.node_count());
    }
}
