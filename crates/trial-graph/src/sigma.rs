//! The σ(·) encoding of RDF documents into graph databases.
//!
//! Following Arenas & Pérez (and Section 2.2 of the paper): for each RDF
//! triple `(s, p, o)` the graph `σ(D)` contains the edges
//!
//! ```text
//! s --edge--> p,     p --node--> o,     s --next--> o
//! ```
//!
//! over the alphabet `Σ = {edge, node, next}`. nSPARQL's nested regular
//! expressions are evaluated over this encoding, which is what makes the
//! query `Q` of Proposition 1 / Theorem 1 inexpressible: two different RDF
//! documents can have the *same* σ-image.

use crate::graph::{GraphDb, GraphDbBuilder};
use trial_core::Triplestore;

/// The `edge` label of the σ encoding.
pub const SIGMA_EDGE: &str = "edge";
/// The `node` label of the σ encoding.
pub const SIGMA_NODE: &str = "node";
/// The `next` label of the σ encoding.
pub const SIGMA_NEXT: &str = "next";

/// Encodes a triplestore relation as the graph `σ(D)`.
///
/// Every object participating in a triple of `rel` becomes a node (named as
/// in the store); data values are carried over.
pub fn sigma_encode(store: &Triplestore, rel: &str) -> GraphDb {
    let mut b = GraphDbBuilder::new();
    b.declare_label(SIGMA_EDGE);
    b.declare_label(SIGMA_NODE);
    b.declare_label(SIGMA_NEXT);
    if let Some(relation) = store.relation(rel) {
        for t in relation.triples().iter() {
            let s = store.object_name(t.s());
            let p = store.object_name(t.p());
            let o = store.object_name(t.o());
            b.edge(s, SIGMA_EDGE, p);
            b.edge(p, SIGMA_NODE, o);
            b.edge(s, SIGMA_NEXT, o);
            for obj in [t.s(), t.p(), t.o()] {
                let value = store.value(obj);
                if !value.is_null() {
                    b.node_with_value(store.object_name(obj), value.clone());
                }
            }
        }
    }
    b.finish()
}

/// The two RDF documents `D1`, `D2` from the proof of Proposition 1: they
/// differ (`D1` contains `(Edinburgh, TrainOp1, London)`, `D2` does not) yet
/// their σ-encodings are identical, so no NRE over σ(·) — and hence no
/// nSPARQL navigation — can distinguish them, while the TriAL\* query `Q`
/// does.
pub fn proposition1_documents() -> (Triplestore, Triplestore) {
    fn build(triples: &[(&str, &str, &str)]) -> Triplestore {
        let mut b = trial_core::TriplestoreBuilder::new();
        for (s, p, o) in triples {
            b.add_triple("E", *s, *p, *o);
        }
        b.finish()
    }
    let shared = [
        ("StAndrews", "BusOp1", "Edinburgh"),
        ("Edinburgh", "TrainOp3", "London"),
        ("Edinburgh", "TrainOp1", "Manchester"),
        ("Newcastle", "TrainOp1", "London"),
        ("London", "TrainOp2", "Brussels"),
        ("BusOp1", "part_of", "NatExpress"),
        ("TrainOp1", "part_of", "EastCoast"),
        ("TrainOp2", "part_of", "Eurostar"),
        ("EastCoast", "part_of", "NatExpress"),
    ];
    let mut d1: Vec<(&str, &str, &str)> = shared.to_vec();
    d1.push(("Edinburgh", "TrainOp1", "London"));
    (build(&d1), build(&shared))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nre::{evaluate_nre, Nre};
    use trial_core::TriplestoreBuilder;

    fn store(triples: &[(&str, &str, &str)]) -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in triples {
            b.add_triple("E", *s, *p, *o);
        }
        b.finish()
    }

    #[test]
    fn figure2_encoding() {
        // σ of {(London, TrainOp2, Brussels), (TrainOp2, part_of, Eurostar)}
        // is exactly the graph drawn in Figure 2 of the paper.
        let d = store(&[
            ("London", "TrainOp2", "Brussels"),
            ("TrainOp2", "part_of", "Eurostar"),
        ]);
        let g = sigma_encode(&d, "E");
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.node_count(), 5);
        let has = |s: &str, l: &str, t: &str| {
            g.label_pairs(l)
                .iter()
                .any(|(a, b)| g.node_name(*a) == s && g.node_name(*b) == t)
        };
        assert!(has("London", SIGMA_EDGE, "TrainOp2"));
        assert!(has("TrainOp2", SIGMA_NODE, "Brussels"));
        assert!(has("London", SIGMA_NEXT, "Brussels"));
        assert!(has("TrainOp2", SIGMA_EDGE, "part_of"));
        assert!(has("part_of", SIGMA_NODE, "Eurostar"));
        assert!(has("TrainOp2", SIGMA_NEXT, "Eurostar"));
    }

    #[test]
    fn proposition1_sigma_images_coincide() {
        let (d1, d2) = proposition1_documents();
        assert_ne!(d1.triple_count(), d2.triple_count());
        let g1 = sigma_encode(&d1, "E");
        let g2 = sigma_encode(&d2, "E");
        // Same nodes, same edges: σ(D1) = σ(D2).
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        let edges1: std::collections::BTreeSet<String> = g1
            .edges()
            .map(|e| {
                format!(
                    "{} {} {}",
                    g1.node_name(e.source),
                    e.label,
                    g1.node_name(e.target)
                )
            })
            .collect();
        let edges2: std::collections::BTreeSet<String> = g2
            .edges()
            .map(|e| {
                format!(
                    "{} {} {}",
                    g2.node_name(e.source),
                    e.label,
                    g2.node_name(e.target)
                )
            })
            .collect();
        assert_eq!(edges1, edges2);
        // Consequently every NRE evaluates identically over the two encodings.
        let nre = Nre::label(SIGMA_EDGE)
            .then(Nre::label("next").star())
            .then(Nre::label(SIGMA_NODE))
            .or(Nre::label(SIGMA_NEXT).plus());
        let r1: std::collections::BTreeSet<(String, String)> = evaluate_nre(&g1, &nre)
            .into_iter()
            .map(|(a, b)| (g1.node_name(a).to_owned(), g1.node_name(b).to_owned()))
            .collect();
        let r2: std::collections::BTreeSet<(String, String)> = evaluate_nre(&g2, &nre)
            .into_iter()
            .map(|(a, b)| (g2.node_name(a).to_owned(), g2.node_name(b).to_owned()))
            .collect();
        assert_eq!(r1, r2);
    }

    #[test]
    fn empty_or_missing_relation_gives_empty_graph() {
        let d = store(&[]);
        let g = sigma_encode(&d, "E");
        assert_eq!(g.node_count(), 0);
        let g = sigma_encode(&d, "missing");
        assert_eq!(g.edge_count(), 0);
        // The σ alphabet is still declared.
        assert_eq!(g.alphabet().count(), 3);
    }

    #[test]
    fn data_values_carry_over() {
        let mut b = TriplestoreBuilder::new();
        b.add_triple("E", "a", "p", "b");
        b.object_with_value("a", trial_core::Value::int(7));
        let store = b.finish();
        let g = sigma_encode(&store, "E");
        assert_eq!(g.value(g.node_id("a").unwrap()), &trial_core::Value::int(7));
    }
}
