//! nSPARQL-style navigation evaluated *directly over triples* (Theorem 1).
//!
//! nSPARQL [Pérez–Arenas–Gutierrez] extends SPARQL with nested regular
//! expressions whose alphabet is the three **axes** `next`, `edge` and `node`
//! (plus inverses and nesting). As the appendix of the paper spells out, the
//! semantics of those axes over an RDF document `D` is
//!
//! * `next = {(v, v') | ∃z E(v, z, v')}`,
//! * `edge = {(v, v') | ∃z E(v, v', z)}`,
//! * `node = {(v, v') | ∃z E(z, v, v')}`,
//!
//! which is exactly the σ(·) graph encoding of `D` — so every nSPARQL
//! navigation answers identically on any two documents with the same σ-image.
//! Theorem 1 exploits this: the query `Q` ("reachable through services of the
//! same company") distinguishes the documents `D1`, `D2` of Proposition 1
//! even though `σ(D1) = σ(D2)`, hence `Q` is not expressible in nSPARQL.
//!
//! This module implements the axis expressions and their evaluation directly
//! over a [`Triplestore`] relation (no graph encoding needed), so the
//! test-suite and the `tables` harness can replay Theorem 1 natively: every
//! axis expression agrees on `D1` and `D2`, while the TriAL\* query `Q`
//! separates them.

use std::collections::{BTreeSet, HashSet};
use std::fmt;
use trial_core::{ObjectId, Triplestore};

/// One of the three nSPARQL navigation axes, possibly inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `next`: subject → object.
    Next,
    /// `next⁻`: object → subject.
    NextInv,
    /// `edge`: subject → predicate.
    Edge,
    /// `edge⁻`: predicate → subject.
    EdgeInv,
    /// `node`: predicate → object.
    Node,
    /// `node⁻`: object → predicate.
    NodeInv,
}

impl Axis {
    /// The inverse axis.
    pub fn inverse(self) -> Axis {
        match self {
            Axis::Next => Axis::NextInv,
            Axis::NextInv => Axis::Next,
            Axis::Edge => Axis::EdgeInv,
            Axis::EdgeInv => Axis::Edge,
            Axis::Node => Axis::NodeInv,
            Axis::NodeInv => Axis::Node,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Axis::Next => "next",
            Axis::NextInv => "next^-",
            Axis::Edge => "edge",
            Axis::EdgeInv => "edge^-",
            Axis::Node => "node",
            Axis::NodeInv => "node^-",
        };
        write!(f, "{s}")
    }
}

/// A nested regular expression over the nSPARQL axes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NsExpr {
    /// The empty word `ε` (the diagonal over the active domain).
    Epsilon,
    /// A single axis step.
    Axis(Axis),
    /// Concatenation `e1 / e2`.
    Seq(Box<NsExpr>, Box<NsExpr>),
    /// Alternation `e1 | e2`.
    Alt(Box<NsExpr>, Box<NsExpr>),
    /// Kleene star `e*`.
    Star(Box<NsExpr>),
    /// Nesting (node test) `[e]`: keeps `(v, v)` whenever `(v, v')` is in the
    /// semantics of `e` for some `v'`.
    Test(Box<NsExpr>),
}

impl NsExpr {
    /// A single axis step.
    pub fn axis(axis: Axis) -> NsExpr {
        NsExpr::Axis(axis)
    }

    /// Concatenation.
    pub fn then(self, other: NsExpr) -> NsExpr {
        NsExpr::Seq(Box::new(self), Box::new(other))
    }

    /// Alternation.
    pub fn or(self, other: NsExpr) -> NsExpr {
        NsExpr::Alt(Box::new(self), Box::new(other))
    }

    /// Kleene star.
    pub fn star(self) -> NsExpr {
        NsExpr::Star(Box::new(self))
    }

    /// Nesting test `[self]`.
    pub fn test(self) -> NsExpr {
        NsExpr::Test(Box::new(self))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            NsExpr::Epsilon | NsExpr::Axis(_) => 1,
            NsExpr::Star(a) | NsExpr::Test(a) => 1 + a.size(),
            NsExpr::Seq(a, b) | NsExpr::Alt(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for NsExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NsExpr::Epsilon => write!(f, "eps"),
            NsExpr::Axis(a) => write!(f, "{a}"),
            NsExpr::Seq(a, b) => write!(f, "({a}/{b})"),
            NsExpr::Alt(a, b) => write!(f, "({a}|{b})"),
            NsExpr::Star(a) => write!(f, "({a})*"),
            NsExpr::Test(a) => write!(f, "[{a}]"),
        }
    }
}

/// The set of pairs of objects an nSPARQL expression denotes.
pub type ObjectPairs = HashSet<(ObjectId, ObjectId)>;

fn axis_pairs(store: &Triplestore, rel: &str, axis: Axis) -> ObjectPairs {
    let mut out = ObjectPairs::new();
    if let Some(relation) = store.relation(rel) {
        for t in relation.triples().iter() {
            let (s, p, o) = (t.s(), t.p(), t.o());
            let pair = match axis {
                Axis::Next => (s, o),
                Axis::NextInv => (o, s),
                Axis::Edge => (s, p),
                Axis::EdgeInv => (p, s),
                Axis::Node => (p, o),
                Axis::NodeInv => (o, p),
            };
            out.insert(pair);
        }
    }
    out
}

fn compose(a: &ObjectPairs, b: &ObjectPairs) -> ObjectPairs {
    let mut by_source: std::collections::HashMap<ObjectId, Vec<ObjectId>> =
        std::collections::HashMap::new();
    for &(x, y) in b {
        by_source.entry(x).or_default().push(y);
    }
    let mut out = ObjectPairs::new();
    for &(x, y) in a {
        if let Some(targets) = by_source.get(&y) {
            for &z in targets {
                out.insert((x, z));
            }
        }
    }
    out
}

fn reflexive_transitive_closure(base: &ObjectPairs, domain: &BTreeSet<ObjectId>) -> ObjectPairs {
    let mut out: ObjectPairs = domain.iter().map(|&v| (v, v)).collect();
    let mut frontier = base.clone();
    while !frontier.is_empty() {
        let new: ObjectPairs = frontier.difference(&out).copied().collect();
        if new.is_empty() {
            break;
        }
        out.extend(new.iter().copied());
        frontier = compose(&out, base);
    }
    out
}

/// Evaluates an nSPARQL axis expression over relation `rel` of the store,
/// returning the set of object pairs it denotes.
pub fn evaluate_nsparql(store: &Triplestore, rel: &str, expr: &NsExpr) -> ObjectPairs {
    let domain: BTreeSet<ObjectId> = store.active_domain().into_iter().collect();
    eval(store, rel, expr, &domain)
}

fn eval(store: &Triplestore, rel: &str, expr: &NsExpr, domain: &BTreeSet<ObjectId>) -> ObjectPairs {
    match expr {
        NsExpr::Epsilon => domain.iter().map(|&v| (v, v)).collect(),
        NsExpr::Axis(a) => axis_pairs(store, rel, *a),
        NsExpr::Seq(a, b) => compose(&eval(store, rel, a, domain), &eval(store, rel, b, domain)),
        NsExpr::Alt(a, b) => {
            let mut out = eval(store, rel, a, domain);
            out.extend(eval(store, rel, b, domain));
            out
        }
        NsExpr::Star(a) => reflexive_transitive_closure(&eval(store, rel, a, domain), domain),
        NsExpr::Test(a) => eval(store, rel, a, domain)
            .into_iter()
            .map(|(v, _)| (v, v))
            .collect(),
    }
}

/// A small catalogue of nSPARQL expressions used when demonstrating
/// Theorem 1: plain reachability, reachability through a nested "operated by
/// a company" test, and predicate-level reachability.
pub fn sample_expressions() -> Vec<(&'static str, NsExpr)> {
    use Axis::*;
    vec![
        ("next*", NsExpr::axis(Next).star()),
        (
            "(next/[edge/next*])*",
            NsExpr::axis(Next)
                .then(NsExpr::axis(Edge).then(NsExpr::axis(Next).star()).test())
                .star(),
        ),
        (
            "edge/next*/node",
            NsExpr::axis(Edge)
                .then(NsExpr::axis(Next).star())
                .then(NsExpr::axis(Node)),
        ),
        (
            "(next|node)*",
            NsExpr::axis(Next).or(NsExpr::axis(Node)).star(),
        ),
        (
            "[edge/next]/next*",
            NsExpr::axis(Edge)
                .then(NsExpr::axis(Next))
                .test()
                .then(NsExpr::axis(Next).star()),
        ),
    ]
}

/// Renders a set of object pairs using the store's object names, sorted, for
/// readable assertions and harness output.
pub fn display_pairs(store: &Triplestore, pairs: &ObjectPairs) -> Vec<String> {
    let mut names: Vec<String> = pairs
        .iter()
        .map(|(a, b)| format!("({}, {})", store.object_name(*a), store.object_name(*b)))
        .collect();
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma::proposition1_documents;
    use trial_core::TriplestoreBuilder;

    fn figure1_like() -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for (s, p, o) in [
            ("StAndrews", "BusOp1", "Edinburgh"),
            ("Edinburgh", "TrainOp1", "London"),
            ("London", "TrainOp2", "Brussels"),
            ("BusOp1", "part_of", "NatExpress"),
            ("TrainOp1", "part_of", "EastCoast"),
            ("TrainOp2", "part_of", "Eurostar"),
            ("EastCoast", "part_of", "NatExpress"),
        ] {
            b.add_triple("E", s, p, o);
        }
        b.finish()
    }

    fn pair(store: &Triplestore, a: &str, b: &str) -> (ObjectId, ObjectId) {
        (store.object_id(a).unwrap(), store.object_id(b).unwrap())
    }

    #[test]
    fn axes_follow_the_appendix_semantics() {
        let store = figure1_like();
        let next = evaluate_nsparql(&store, "E", &NsExpr::axis(Axis::Next));
        assert!(next.contains(&pair(&store, "Edinburgh", "London")));
        assert!(!next.contains(&pair(&store, "Edinburgh", "TrainOp1")));
        let edge = evaluate_nsparql(&store, "E", &NsExpr::axis(Axis::Edge));
        assert!(edge.contains(&pair(&store, "Edinburgh", "TrainOp1")));
        let node = evaluate_nsparql(&store, "E", &NsExpr::axis(Axis::Node));
        assert!(node.contains(&pair(&store, "TrainOp1", "London")));
        // Inverses flip the pairs.
        let edge_inv = evaluate_nsparql(&store, "E", &NsExpr::axis(Axis::EdgeInv));
        assert!(edge_inv.contains(&pair(&store, "TrainOp1", "Edinburgh")));
        assert_eq!(Axis::Next.inverse().inverse(), Axis::Next);
    }

    #[test]
    fn star_is_reflexive_and_transitive() {
        let store = figure1_like();
        let reach = evaluate_nsparql(&store, "E", &NsExpr::axis(Axis::Next).star());
        assert!(reach.contains(&pair(&store, "StAndrews", "Brussels")));
        assert!(reach.contains(&pair(&store, "London", "London")));
        assert!(!reach.contains(&pair(&store, "Brussels", "London")));
    }

    #[test]
    fn nesting_keeps_nodes_with_a_witness() {
        let store = figure1_like();
        // [edge/next*]: nodes that are the subject of some triple (the edge
        // axis already requires that), kept as a diagonal.
        let test = NsExpr::axis(Axis::Edge)
            .then(NsExpr::axis(Axis::Next).star())
            .test();
        let result = evaluate_nsparql(&store, "E", &test);
        assert!(result.contains(&pair(&store, "Edinburgh", "Edinburgh")));
        assert!(!result.contains(&pair(&store, "Brussels", "Brussels")));
        for (a, b) in &result {
            assert_eq!(a, b, "a node test must return a diagonal");
        }
    }

    #[test]
    fn nsparql_cannot_distinguish_the_proposition1_documents() {
        // Theorem 1: σ(D1) = σ(D2), so every axis expression agrees on D1 and
        // D2 — including nested and starred ones.
        let (d1, d2) = proposition1_documents();
        for (name, expr) in sample_expressions() {
            let on_d1: BTreeSet<String> = display_pairs(&d1, &evaluate_nsparql(&d1, "E", &expr))
                .into_iter()
                .collect();
            let on_d2: BTreeSet<String> = display_pairs(&d2, &evaluate_nsparql(&d2, "E", &expr))
                .into_iter()
                .collect();
            assert_eq!(on_d1, on_d2, "expression {name} distinguishes D1 from D2");
        }
    }

    #[test]
    fn empty_relation_yields_empty_axes() {
        let store = TriplestoreBuilder::new().finish();
        assert!(evaluate_nsparql(&store, "E", &NsExpr::axis(Axis::Next)).is_empty());
        assert!(evaluate_nsparql(&store, "E", &NsExpr::Epsilon).is_empty());
    }

    #[test]
    fn display_is_stable() {
        let e = NsExpr::axis(Axis::Edge)
            .then(NsExpr::axis(Axis::Next))
            .test()
            .then(NsExpr::axis(Axis::Next).star());
        assert_eq!(e.to_string(), "([(edge/next)]/(next)*)");
        assert_eq!(e.size(), 7);
    }
}
