//! Nested regular expressions (NREs) — the navigational core of nSPARQL.
//!
//! Syntax (Section 2.1 of the paper):
//!
//! ```text
//! e := ε | a | a⁻ | e · e | e* | e + e | [e]        a ∈ Σ
//! ```
//!
//! An NRE denotes a binary relation over the nodes of a graph database:
//! `ε` is the diagonal, `a` the a-labelled edges, `a⁻` their inverses,
//! `·`/`+`/`*` are composition, union and (reflexive-)transitive closure,
//! and the node test `[e]` keeps the pairs `(u, u)` such that `e` relates
//! `u` to some node.
//!
//! Two closure semantics exist in the literature; following the nSPARQL
//! tradition (and so that `e*` composes the same way as GXPath's `α*`) we
//! take `e*` to be the *reflexive*-transitive closure and provide
//! [`Nre::Plus`] for the strict one-or-more closure. The translation into
//! TriAL\* ([`crate::translate`]) uses the same convention.

use crate::graph::{GraphDb, NodeId};
use std::collections::HashSet;
use std::fmt;

/// A nested regular expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Nre {
    /// `ε` — the diagonal `{(u, u) | u ∈ V}`.
    Epsilon,
    /// `a` — forward a-labelled edges.
    Label(String),
    /// `a⁻` — inverse a-labelled edges.
    Inverse(String),
    /// `e1 · e2` — composition.
    Concat(Box<Nre>, Box<Nre>),
    /// `e1 + e2` — union.
    Alt(Box<Nre>, Box<Nre>),
    /// `e*` — reflexive-transitive closure.
    Star(Box<Nre>),
    /// `e⁺` — transitive closure (one or more steps).
    Plus(Box<Nre>),
    /// `[e]` — node test: pairs `(u, u)` with `(u, v) ∈ e` for some `v`.
    Test(Box<Nre>),
}

impl Nre {
    /// A forward label step.
    pub fn label(l: impl Into<String>) -> Nre {
        Nre::Label(l.into())
    }

    /// An inverse label step.
    pub fn inverse(l: impl Into<String>) -> Nre {
        Nre::Inverse(l.into())
    }

    /// Composition.
    pub fn then(self, other: Nre) -> Nre {
        Nre::Concat(Box::new(self), Box::new(other))
    }

    /// Union.
    pub fn or(self, other: Nre) -> Nre {
        Nre::Alt(Box::new(self), Box::new(other))
    }

    /// Reflexive-transitive closure.
    pub fn star(self) -> Nre {
        Nre::Star(Box::new(self))
    }

    /// Transitive closure.
    pub fn plus(self) -> Nre {
        Nre::Plus(Box::new(self))
    }

    /// Node test `[self]`.
    pub fn test(self) -> Nre {
        Nre::Test(Box::new(self))
    }

    /// The nesting depth of the expression (number of nested `[…]`).
    pub fn nesting_depth(&self) -> usize {
        match self {
            Nre::Epsilon | Nre::Label(_) | Nre::Inverse(_) => 0,
            Nre::Concat(a, b) | Nre::Alt(a, b) => a.nesting_depth().max(b.nesting_depth()),
            Nre::Star(a) | Nre::Plus(a) => a.nesting_depth(),
            Nre::Test(a) => 1 + a.nesting_depth(),
        }
    }

    /// The size (number of operators and labels).
    pub fn size(&self) -> usize {
        match self {
            Nre::Epsilon | Nre::Label(_) | Nre::Inverse(_) => 1,
            Nre::Concat(a, b) | Nre::Alt(a, b) => 1 + a.size() + b.size(),
            Nre::Star(a) | Nre::Plus(a) | Nre::Test(a) => 1 + a.size(),
        }
    }
}

impl fmt::Display for Nre {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Nre::Epsilon => write!(f, "ε"),
            Nre::Label(l) => write!(f, "{l}"),
            Nre::Inverse(l) => write!(f, "{l}^-"),
            Nre::Concat(a, b) => write!(f, "({a}·{b})"),
            Nre::Alt(a, b) => write!(f, "({a}+{b})"),
            Nre::Star(a) => write!(f, "{a}*"),
            Nre::Plus(a) => write!(f, "{a}+"),
            Nre::Test(a) => write!(f, "[{a}]"),
        }
    }
}

/// The set of pairs of a binary relation over nodes.
pub type NodePairs = HashSet<(NodeId, NodeId)>;

/// Composition of two binary relations.
fn compose(a: &NodePairs, b: &NodePairs) -> NodePairs {
    let mut out = NodePairs::new();
    for &(x, y) in a {
        for &(y2, z) in b {
            if y == y2 {
                out.insert((x, z));
            }
        }
    }
    out
}

/// Transitive closure (one or more steps) of a binary relation.
fn transitive_closure(rel: &NodePairs) -> NodePairs {
    let mut closure = rel.clone();
    loop {
        let step = compose(&closure, rel);
        let before = closure.len();
        closure.extend(step);
        if closure.len() == before {
            return closure;
        }
    }
}

/// Evaluates an NRE over a graph database, returning the binary relation it
/// denotes.
pub fn evaluate_nre(graph: &GraphDb, nre: &Nre) -> NodePairs {
    match nre {
        Nre::Epsilon => graph.nodes().map(|v| (v, v)).collect(),
        Nre::Label(l) => graph.label_pairs(l).into_iter().collect(),
        Nre::Inverse(l) => graph
            .label_pairs(l)
            .into_iter()
            .map(|(a, b)| (b, a))
            .collect(),
        Nre::Concat(a, b) => compose(&evaluate_nre(graph, a), &evaluate_nre(graph, b)),
        Nre::Alt(a, b) => {
            let mut out = evaluate_nre(graph, a);
            out.extend(evaluate_nre(graph, b));
            out
        }
        Nre::Star(a) => {
            let mut out = transitive_closure(&evaluate_nre(graph, a));
            out.extend(graph.nodes().map(|v| (v, v)));
            out
        }
        Nre::Plus(a) => transitive_closure(&evaluate_nre(graph, a)),
        Nre::Test(a) => evaluate_nre(graph, a)
            .into_iter()
            .map(|(u, _)| (u, u))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphDbBuilder;

    /// The σ-style graph from Figure 2 of the paper (hand-built).
    fn sample() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.edge("London", "next", "Brussels");
        b.edge("London", "edge", "TrainOp2");
        b.edge("TrainOp2", "node", "Brussels");
        b.edge("TrainOp2", "next", "Eurostar");
        b.edge("TrainOp2", "edge", "part_of");
        b.edge("part_of", "node", "Eurostar");
        b.finish()
    }

    fn pair(g: &GraphDb, a: &str, b: &str) -> (NodeId, NodeId) {
        (g.node_id(a).unwrap(), g.node_id(b).unwrap())
    }

    #[test]
    fn labels_and_inverses() {
        let g = sample();
        let next = evaluate_nre(&g, &Nre::label("next"));
        assert!(next.contains(&pair(&g, "London", "Brussels")));
        assert_eq!(next.len(), 2);
        let inv = evaluate_nre(&g, &Nre::inverse("next"));
        assert!(inv.contains(&pair(&g, "Brussels", "London")));
    }

    #[test]
    fn concat_and_nesting() {
        let g = sample();
        // edge · [next] · node : an edge to a predicate that has a `next`
        // out-edge, then to the object — the nSPARQL-style pattern.
        let e = Nre::label("edge")
            .then(Nre::label("next").test())
            .then(Nre::label("node"));
        let pairs = evaluate_nre(&g, &e);
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(&pair(&g, "London", "Brussels")));
        assert_eq!(e.nesting_depth(), 1);
        assert!(e.size() >= 5);
    }

    #[test]
    fn star_is_reflexive_plus_is_not() {
        let g = sample();
        let star = evaluate_nre(&g, &Nre::label("next").star());
        let plus = evaluate_nre(&g, &Nre::label("next").plus());
        for v in g.nodes() {
            assert!(star.contains(&(v, v)));
        }
        assert!(!plus.contains(&pair(&g, "Brussels", "Brussels")));
        assert!(plus.contains(&pair(&g, "London", "Brussels")));
        // ε is exactly the diagonal.
        let eps = evaluate_nre(&g, &Nre::Epsilon);
        assert_eq!(eps.len(), g.node_count());
    }

    #[test]
    fn alternation_unions_relations() {
        let g = sample();
        let e = Nre::label("edge").or(Nre::label("node"));
        let pairs = evaluate_nre(&g, &e);
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn display_and_builders() {
        let e = Nre::label("a")
            .then(Nre::inverse("b").test())
            .or(Nre::Epsilon)
            .star();
        assert_eq!(e.to_string(), "((a·[b^-])+ε)*");
        assert_eq!(Nre::label("a").plus().to_string(), "a+");
    }

    #[test]
    fn transitive_closure_on_cycles() {
        let mut b = GraphDbBuilder::new();
        b.edge("x", "l", "y");
        b.edge("y", "l", "x");
        let g = b.finish();
        let plus = evaluate_nre(&g, &Nre::label("l").plus());
        assert_eq!(plus.len(), 4);
    }
}
