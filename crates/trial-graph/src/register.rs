//! Register automata and regular expressions with memory over graphs with
//! data (Proposition 6).
//!
//! The paper compares TriAL\* with *register automata* used as a query
//! language for graphs whose nodes carry data values [Kaminski–Francez;
//! Libkin–Vrgoč, ICDT'12]: an automaton with a finite set of registers walks
//! a path in the graph, storing node data values into registers and comparing
//! the current node's value against stored ones. A pair `(u, v)` is in the
//! answer iff some accepting run exists along a path from `u` to `v`.
//!
//! Proposition 6 shows TriAL\* and register automata are *incomparable*:
//!
//! * the expression `e_n` (see [`distinct_values_expression`]) is non-empty
//!   iff the graph contains a path visiting `n` pairwise-distinct data
//!   values, a property outside the six-variable logic that contains
//!   TriAL\*;
//! * conversely register-automata queries are monotone, so the TriAL query
//!   `(σ_{2=a} E)ᶜ` ("pairs *not* connected by an `a`-edge") cannot be
//!   expressed by any register automaton.
//!
//! This module implements **regular expressions with memory** (REMs, the
//! user-facing syntax), their compilation into [`RegisterAutomaton`]s, and an
//! evaluator over [`GraphDb`] by product construction; the incomparability
//! arguments are replayed as tests and harness entries.

use crate::graph::{GraphDb, NodeId};
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt;
use trial_core::Value;

/// A condition on the current data value, relative to the register contents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Always true.
    True,
    /// The current value equals the content of register `i`.
    EqReg(usize),
    /// The current value differs from the content of register `i` (which
    /// must be initialised).
    NeqReg(usize),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
}

impl Cond {
    /// Conjunction helper.
    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Cond) -> Cond {
        Cond::Or(Box::new(self), Box::new(other))
    }

    /// Conjunction of "differs from register i" for every `i` in `regs`.
    pub fn all_different(regs: impl IntoIterator<Item = usize>) -> Cond {
        let mut it = regs.into_iter();
        match it.next() {
            None => Cond::True,
            Some(first) => it.fold(Cond::NeqReg(first), |acc, r| acc.and(Cond::NeqReg(r))),
        }
    }

    /// Evaluates the condition for `value` against the register bank.
    /// Uninitialised registers make `EqReg` false and `NeqReg` false as well
    /// (comparisons against an empty register never hold), following the
    /// "must have been stored before being compared" convention of REMs.
    pub fn check(&self, value: &Value, registers: &[Option<Value>]) -> bool {
        match self {
            Cond::True => true,
            Cond::EqReg(i) => registers
                .get(*i)
                .and_then(|r| r.as_ref())
                .is_some_and(|v| v == value),
            Cond::NeqReg(i) => registers
                .get(*i)
                .and_then(|r| r.as_ref())
                .is_some_and(|v| v != value),
            Cond::And(a, b) => a.check(value, registers) && b.check(value, registers),
            Cond::Or(a, b) => a.check(value, registers) || b.check(value, registers),
        }
    }

    /// Largest register index mentioned, if any.
    pub fn max_register(&self) -> Option<usize> {
        match self {
            Cond::True => None,
            Cond::EqReg(i) | Cond::NeqReg(i) => Some(*i),
            Cond::And(a, b) | Cond::Or(a, b) => a.max_register().max(b.max_register()),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => write!(f, "true"),
            Cond::EqReg(i) => write!(f, "x{}=", i + 1),
            Cond::NeqReg(i) => write!(f, "x{}!=", i + 1),
            Cond::And(a, b) => write!(f, "({a} & {b})"),
            Cond::Or(a, b) => write!(f, "({a} | {b})"),
        }
    }
}

/// A regular expression with memory (REM).
///
/// The syntax follows Libkin–Vrgoč: `↓x̄ e` stores the *current* node's data
/// value into the listed registers and continues with `e`; `a[c]` traverses
/// an `a`-labelled edge and checks condition `c` against the *target* node's
/// data value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rem {
    /// The empty word `ε`.
    Epsilon,
    /// `a[c]`: traverse an `a`-edge, then check `c` at the target node.
    Edge {
        /// Edge label to traverse.
        label: String,
        /// Condition checked against the target node's data value.
        cond: Cond,
    },
    /// `↓x̄ e`: store the current node's data value into each listed
    /// register, then continue with `e`.
    Down(Vec<usize>, Box<Rem>),
    /// Concatenation `e1 · e2`.
    Concat(Box<Rem>, Box<Rem>),
    /// Union `e1 + e2`.
    Union(Box<Rem>, Box<Rem>),
    /// Kleene star `e*`.
    Star(Box<Rem>),
}

impl Rem {
    /// An unconditional edge traversal `a[true]`.
    pub fn label(l: impl Into<String>) -> Rem {
        Rem::Edge {
            label: l.into(),
            cond: Cond::True,
        }
    }

    /// An edge traversal with a condition, `a[c]`.
    pub fn label_if(l: impl Into<String>, cond: Cond) -> Rem {
        Rem::Edge {
            label: l.into(),
            cond,
        }
    }

    /// Stores the current data value into register `i`, then continues with
    /// `self` — i.e. `↓x_i self`.
    pub fn after_store(self, i: usize) -> Rem {
        Rem::Down(vec![i], Box::new(self))
    }

    /// Concatenation.
    pub fn then(self, other: Rem) -> Rem {
        Rem::Concat(Box::new(self), Box::new(other))
    }

    /// Union.
    pub fn or(self, other: Rem) -> Rem {
        Rem::Union(Box::new(self), Box::new(other))
    }

    /// Kleene star.
    pub fn star(self) -> Rem {
        Rem::Star(Box::new(self))
    }

    /// Number of registers the expression needs (one past the largest index
    /// mentioned).
    pub fn register_count(&self) -> usize {
        match self {
            Rem::Epsilon => 0,
            Rem::Edge { cond, .. } => cond.max_register().map_or(0, |m| m + 1),
            Rem::Down(regs, inner) => regs
                .iter()
                .map(|r| r + 1)
                .max()
                .unwrap_or(0)
                .max(inner.register_count()),
            Rem::Concat(a, b) | Rem::Union(a, b) => a.register_count().max(b.register_count()),
            Rem::Star(a) => a.register_count(),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Rem::Epsilon | Rem::Edge { .. } => 1,
            Rem::Down(_, a) | Rem::Star(a) => 1 + a.size(),
            Rem::Concat(a, b) | Rem::Union(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for Rem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rem::Epsilon => write!(f, "eps"),
            Rem::Edge { label, cond } => {
                if matches!(cond, Cond::True) {
                    write!(f, "{label}")
                } else {
                    write!(f, "{label}[{cond}]")
                }
            }
            Rem::Down(regs, inner) => {
                for r in regs {
                    write!(f, "down(x{})", r + 1)?;
                }
                write!(f, ".{inner}")
            }
            Rem::Concat(a, b) => write!(f, "({a} . {b})"),
            Rem::Union(a, b) => write!(f, "({a} + {b})"),
            Rem::Star(a) => write!(f, "({a})*"),
        }
    }
}

/// A transition of a [`RegisterAutomaton`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaTransition {
    /// Consume an edge with the given label, check the condition against the
    /// target node's value, and move to `to`.
    Edge {
        /// Source automaton state.
        from: usize,
        /// Required edge label.
        label: String,
        /// Condition on the target node's data value.
        cond: Cond,
        /// Destination automaton state.
        to: usize,
    },
    /// Without moving in the graph, store the current node's data value into
    /// the listed registers.
    Store {
        /// Source automaton state.
        from: usize,
        /// Registers receiving the current data value.
        registers: Vec<usize>,
        /// Destination automaton state.
        to: usize,
    },
    /// Silent move.
    Epsilon {
        /// Source automaton state.
        from: usize,
        /// Destination automaton state.
        to: usize,
    },
}

/// A register automaton over graphs with data, in the style of
/// Kaminski–Francez finite-memory automata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterAutomaton {
    /// Number of registers.
    pub registers: usize,
    /// Number of states (numbered `0 .. states`).
    pub states: usize,
    /// Initial state.
    pub initial: usize,
    /// Accepting states.
    pub finals: BTreeSet<usize>,
    /// Transition list.
    pub transitions: Vec<RaTransition>,
}

impl RegisterAutomaton {
    fn push_state(&mut self) -> usize {
        let s = self.states;
        self.states += 1;
        s
    }
}

/// Compiles a REM into an equivalent register automaton by a Thompson-style
/// construction.
pub fn compile_rem(rem: &Rem) -> RegisterAutomaton {
    let mut ra = RegisterAutomaton {
        registers: rem.register_count(),
        states: 0,
        initial: 0,
        finals: BTreeSet::new(),
        transitions: Vec::new(),
    };
    let start = ra.push_state();
    let end = build(rem, &mut ra, start);
    ra.initial = start;
    ra.finals.insert(end);
    ra
}

fn build(rem: &Rem, ra: &mut RegisterAutomaton, from: usize) -> usize {
    match rem {
        Rem::Epsilon => {
            let to = ra.push_state();
            ra.transitions.push(RaTransition::Epsilon { from, to });
            to
        }
        Rem::Edge { label, cond } => {
            let to = ra.push_state();
            ra.transitions.push(RaTransition::Edge {
                from,
                label: label.clone(),
                cond: cond.clone(),
                to,
            });
            to
        }
        Rem::Down(regs, inner) => {
            let mid = ra.push_state();
            ra.transitions.push(RaTransition::Store {
                from,
                registers: regs.clone(),
                to: mid,
            });
            build(inner, ra, mid)
        }
        Rem::Concat(a, b) => {
            let mid = build(a, ra, from);
            build(b, ra, mid)
        }
        Rem::Union(a, b) => {
            let a_start = ra.push_state();
            let b_start = ra.push_state();
            ra.transitions
                .push(RaTransition::Epsilon { from, to: a_start });
            ra.transitions
                .push(RaTransition::Epsilon { from, to: b_start });
            let a_end = build(a, ra, a_start);
            let b_end = build(b, ra, b_start);
            let join = ra.push_state();
            ra.transitions.push(RaTransition::Epsilon {
                from: a_end,
                to: join,
            });
            ra.transitions.push(RaTransition::Epsilon {
                from: b_end,
                to: join,
            });
            join
        }
        Rem::Star(a) => {
            let hub = ra.push_state();
            ra.transitions.push(RaTransition::Epsilon { from, to: hub });
            let body_start = ra.push_state();
            ra.transitions.push(RaTransition::Epsilon {
                from: hub,
                to: body_start,
            });
            let body_end = build(a, ra, body_start);
            ra.transitions.push(RaTransition::Epsilon {
                from: body_end,
                to: hub,
            });
            hub
        }
    }
}

/// A configuration of the product of a graph and a register automaton.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Config {
    node: NodeId,
    state: usize,
    registers: Vec<Option<Value>>,
}

/// Evaluates a register automaton as a binary query over a data graph:
/// returns all pairs `(u, v)` such that the automaton has an accepting run
/// along some path from `u` to `v` (registers start empty).
pub fn evaluate_ra(graph: &GraphDb, ra: &RegisterAutomaton) -> HashSet<(NodeId, NodeId)> {
    let mut answers = HashSet::new();
    for start in graph.nodes() {
        for target in evaluate_ra_from(graph, ra, start) {
            answers.insert((start, target));
        }
    }
    answers
}

/// Evaluates a register automaton from a single start node, returning all
/// nodes reachable by an accepting run.
pub fn evaluate_ra_from(graph: &GraphDb, ra: &RegisterAutomaton, start: NodeId) -> HashSet<NodeId> {
    let mut seen: HashSet<Config> = HashSet::new();
    let mut queue: VecDeque<Config> = VecDeque::new();
    let initial = Config {
        node: start,
        state: ra.initial,
        registers: vec![None; ra.registers],
    };
    seen.insert(initial.clone());
    queue.push_back(initial);
    let mut answers = HashSet::new();

    while let Some(config) = queue.pop_front() {
        if ra.finals.contains(&config.state) {
            answers.insert(config.node);
        }
        for transition in &ra.transitions {
            match transition {
                RaTransition::Epsilon { from, to } if *from == config.state => {
                    let next = Config {
                        node: config.node,
                        state: *to,
                        registers: config.registers.clone(),
                    };
                    if seen.insert(next.clone()) {
                        queue.push_back(next);
                    }
                }
                RaTransition::Store {
                    from,
                    registers,
                    to,
                } if *from == config.state => {
                    let value = graph.value(config.node).clone();
                    let mut bank = config.registers.clone();
                    for &r in registers {
                        if r < bank.len() {
                            bank[r] = Some(value.clone());
                        }
                    }
                    let next = Config {
                        node: config.node,
                        state: *to,
                        registers: bank,
                    };
                    if seen.insert(next.clone()) {
                        queue.push_back(next);
                    }
                }
                RaTransition::Edge {
                    from,
                    label,
                    cond,
                    to,
                } if *from == config.state => {
                    for (edge_label, succ) in graph.out_edges(config.node) {
                        if edge_label != label {
                            continue;
                        }
                        if !cond.check(graph.value(succ), &config.registers) {
                            continue;
                        }
                        let next = Config {
                            node: succ,
                            state: *to,
                            registers: config.registers.clone(),
                        };
                        if seen.insert(next.clone()) {
                            queue.push_back(next);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    answers
}

/// Evaluates a regular expression with memory as a binary query over a data
/// graph (compiles to a register automaton and runs the product).
pub fn evaluate_rem(graph: &GraphDb, rem: &Rem) -> HashSet<(NodeId, NodeId)> {
    evaluate_ra(graph, &compile_rem(rem))
}

/// The expression `e_n` from the proof of Proposition 6:
///
/// `e_2 = ↓x1 a[x1≠] ↓x2`, and
/// `e_{n+1} = e_n · a[x1≠ ∧ … ∧ xn≠] ↓x_{n+1}`.
///
/// Its answer is non-empty iff the graph contains an `a`-labelled path whose
/// nodes carry at least `n` pairwise-distinct data values — a property not
/// expressible in the six-variable infinitary logic containing TriAL\*
/// (for `n = 7`).
///
/// `n` must be at least 2.
pub fn distinct_values_expression(label: &str, n: usize) -> Rem {
    assert!(n >= 2, "e_n is defined for n >= 2");
    // ↓x1 · a[x1≠] · ↓x2 …  — we fold the store of register i together with
    // the step that reaches the node whose value it stores.
    let mut expr = Rem::Down(
        vec![0],
        Box::new(Rem::label_if(label, Cond::all_different([0]))),
    );
    // After traversing the edge we store into register 1.
    expr = expr.then(Rem::Down(vec![1], Box::new(Rem::Epsilon)));
    for next in 2..n {
        let step = Rem::label_if(label, Cond::all_different(0..next));
        expr = expr
            .then(step)
            .then(Rem::Down(vec![next], Box::new(Rem::Epsilon)));
    }
    expr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphDbBuilder;

    /// An `a`-labelled chain whose node values are either all distinct or all
    /// equal.
    fn chain(n: usize, distinct: bool) -> GraphDb {
        let mut b = GraphDbBuilder::new();
        for i in 0..n {
            let value: i64 = if distinct { i as i64 } else { 7 };
            b.node_with_value(format!("n{i}"), value);
        }
        for i in 0..n.saturating_sub(1) {
            b.edge(format!("n{i}"), "a", format!("n{}", i + 1));
        }
        b.finish()
    }

    #[test]
    fn unconditional_label_behaves_like_an_rpq_step() {
        let g = chain(3, true);
        let pairs = evaluate_rem(&g, &Rem::label("a"));
        assert_eq!(pairs.len(), 2);
        let n0 = g.node_id("n0").unwrap();
        let n1 = g.node_id("n1").unwrap();
        assert!(pairs.contains(&(n0, n1)));
    }

    #[test]
    fn star_and_union_compose() {
        let g = chain(4, true);
        let reach = Rem::label("a").star();
        let pairs = evaluate_rem(&g, &reach);
        // Reflexive-transitive closure of a 4-chain: 4 + 3 + 2 + 1 = 10 pairs.
        assert_eq!(pairs.len(), 10);
        let either = Rem::label("a").or(Rem::Epsilon);
        assert_eq!(evaluate_rem(&g, &either).len(), 4 + 3);
    }

    #[test]
    fn store_and_compare_detects_equal_endpoints() {
        // value-equality at distance 2: ↓x1 a a[x1=]
        let mut b = GraphDbBuilder::new();
        b.node_with_value("u", 1i64);
        b.node_with_value("v", 2i64);
        b.node_with_value("w", 1i64);
        b.node_with_value("z", 3i64);
        b.edge("u", "a", "v");
        b.edge("v", "a", "w");
        b.edge("w", "a", "z");
        let g = b.finish();
        let u = g.node_id("u").unwrap();
        let w = g.node_id("w").unwrap();
        let e = Rem::Down(
            vec![0],
            Box::new(Rem::label("a").then(Rem::label_if("a", Cond::EqReg(0)))),
        );
        let pairs = evaluate_rem(&g, &e);
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(&(u, w)));
    }

    #[test]
    fn distinct_values_expression_counts_data_values() {
        let e4 = distinct_values_expression("a", 4);
        assert_eq!(e4.register_count(), 4);
        // A chain of 5 distinct values has a witness; an all-equal chain has
        // none, and neither does a chain with only 3 nodes.
        assert!(!evaluate_rem(&chain(5, true), &e4).is_empty());
        assert!(evaluate_rem(&chain(5, false), &e4).is_empty());
        assert!(evaluate_rem(&chain(3, true), &e4).is_empty());
    }

    #[test]
    fn register_automata_queries_are_monotone_on_the_proposition6_graphs() {
        // The two graphs from the Theorem 8 / Proposition 6 argument:
        // G has a b-edge only, G' adds an a-edge. Any REM query answer over G
        // is preserved in G' — which is why the non-monotone TriAL query
        // "(pairs not connected by an a-edge)" cannot be a register-automaton
        // query.
        let mut b = GraphDbBuilder::new();
        b.node_with_value("v", 1i64);
        b.node_with_value("v'", 2i64);
        b.edge("v", "b", "v'");
        let g = b.finish();

        let mut b2 = GraphDbBuilder::new();
        b2.node_with_value("v", 1i64);
        b2.node_with_value("v'", 2i64);
        b2.edge("v", "b", "v'");
        b2.edge("v", "a", "v'");
        let g2 = b2.finish();

        for query in [
            Rem::label("b"),
            Rem::label("a").or(Rem::label("b")),
            Rem::label("b").star(),
            Rem::Down(vec![0], Box::new(Rem::label_if("b", Cond::NeqReg(0)))),
        ] {
            let small: HashSet<(String, String)> = evaluate_rem(&g, &query)
                .into_iter()
                .map(|(x, y)| (g.node_name(x).to_string(), g.node_name(y).to_string()))
                .collect();
            let large: HashSet<(String, String)> = evaluate_rem(&g2, &query)
                .into_iter()
                .map(|(x, y)| (g2.node_name(x).to_string(), g2.node_name(y).to_string()))
                .collect();
            assert!(
                small.is_subset(&large),
                "register automata must be monotone, {query} was not"
            );
        }
    }

    #[test]
    fn comparisons_against_empty_registers_never_hold() {
        let g = chain(2, true);
        let eq = Rem::label_if("a", Cond::EqReg(0));
        let neq = Rem::label_if("a", Cond::NeqReg(0));
        assert!(evaluate_rem(&g, &eq).is_empty());
        assert!(evaluate_rem(&g, &neq).is_empty());
    }

    #[test]
    fn compile_rem_produces_a_well_formed_automaton() {
        let e = distinct_values_expression("a", 3);
        let ra = compile_rem(&e);
        assert_eq!(ra.registers, 3);
        assert!(ra.states >= 2);
        assert_eq!(ra.finals.len(), 1);
        for t in &ra.transitions {
            let (from, to) = match t {
                RaTransition::Edge { from, to, .. }
                | RaTransition::Store { from, to, .. }
                | RaTransition::Epsilon { from, to } => (*from, *to),
            };
            assert!(from < ra.states && to < ra.states);
        }
    }
}
