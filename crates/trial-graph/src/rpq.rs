//! Regular path queries (RPQs) evaluated by NFA product construction.
//!
//! An RPQ `x →L y` selects the pairs of nodes `(u, v)` connected by a path
//! whose label word belongs to the regular language `L`. Evaluation runs a
//! BFS over the product of the graph with the NFA of `L`, the textbook
//! algorithm whose `O(|V|·|E|·|A|)` cost is the reference point for the
//! paper's complexity comparison.

use crate::graph::{GraphDb, NodeId};
use crate::regex::Regex;
use std::collections::{HashSet, VecDeque};

/// Evaluates an RPQ: all pairs `(u, v)` such that some path from `u` to `v`
/// spells a word in the language of `regex`.
pub fn evaluate_rpq(graph: &GraphDb, regex: &Regex) -> HashSet<(NodeId, NodeId)> {
    let nfa = regex.to_nfa();
    let mut result = HashSet::new();
    for start in graph.nodes() {
        // Product BFS from (start, ε-closure of the NFA start state).
        let mut seen: HashSet<(NodeId, usize)> = HashSet::new();
        let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
        let initial = nfa.epsilon_closure([nfa.start].into_iter().collect());
        for &q in &initial {
            if seen.insert((start, q)) {
                queue.push_back((start, q));
            }
        }
        while let Some((node, state)) = queue.pop_front() {
            if state == nfa.accept {
                result.insert((start, node));
            }
            for (label, target) in graph.out_edges(node) {
                for &(from, ref l, to) in &nfa.transitions {
                    if from == state && l == label {
                        let closure = nfa.epsilon_closure([to].into_iter().collect());
                        for &q in &closure {
                            if seen.insert((target, q)) {
                                queue.push_back((target, q));
                            }
                        }
                    }
                }
            }
        }
    }
    result
}

/// Evaluates an RPQ from a single source node (useful for benchmarks that
/// measure per-source cost).
pub fn evaluate_rpq_from(graph: &GraphDb, regex: &Regex, start: NodeId) -> HashSet<NodeId> {
    evaluate_rpq(graph, regex)
        .into_iter()
        .filter(|(s, _)| *s == start)
        .map(|(_, t)| t)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphDbBuilder;

    fn transport() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.edge("StA", "bus", "Edi");
        b.edge("Edi", "train", "Lon");
        b.edge("Lon", "train", "Bru");
        b.edge("Bru", "plane", "NYC");
        b.finish()
    }

    #[test]
    fn single_label_rpq() {
        let g = transport();
        let pairs = evaluate_rpq(&g, &Regex::label("train"));
        assert_eq!(g.display_pairs(&pairs), vec!["(Edi, Lon)", "(Lon, Bru)"]);
    }

    #[test]
    fn concatenation_and_star() {
        let g = transport();
        // bus · train*  — from StA, anywhere reachable by a bus then trains.
        let re = Regex::label("bus").then(Regex::label("train").star());
        let pairs = evaluate_rpq(&g, &re);
        assert_eq!(
            g.display_pairs(&pairs),
            vec!["(StA, Bru)", "(StA, Edi)", "(StA, Lon)"]
        );
    }

    #[test]
    fn star_includes_empty_path() {
        let g = transport();
        let pairs = evaluate_rpq(&g, &Regex::label("train").star());
        // Every node reaches itself by the empty path.
        for node in g.nodes() {
            assert!(pairs.contains(&(node, node)));
        }
        assert!(pairs.contains(&(g.node_id("Edi").unwrap(), g.node_id("Bru").unwrap())));
        assert!(!pairs.contains(&(g.node_id("StA").unwrap(), g.node_id("Edi").unwrap())));
    }

    #[test]
    fn alternation_and_from_source() {
        let g = transport();
        let re = Regex::label("bus").or(Regex::label("plane"));
        let from_sta = evaluate_rpq_from(&g, &re, g.node_id("StA").unwrap());
        assert_eq!(from_sta.len(), 1);
        assert!(from_sta.contains(&g.node_id("Edi").unwrap()));
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut b = GraphDbBuilder::new();
        b.edge("a", "l", "b");
        b.edge("b", "l", "a");
        let g = b.finish();
        let pairs = evaluate_rpq(&g, &Regex::label("l").plus());
        // Both nodes reach both nodes (including themselves via the cycle).
        assert_eq!(pairs.len(), 4);
    }
}
