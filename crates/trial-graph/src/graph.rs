//! The edge-labelled graph database model `G = (V, E, ρ)` of Section 2.1.

use std::collections::{BTreeSet, HashMap};
use trial_core::Value;

/// A node identifier (dense index into the graph's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An edge `(source, label, target)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Source node.
    pub source: NodeId,
    /// Edge label from the finite alphabet Σ.
    pub label: String,
    /// Target node.
    pub target: NodeId,
}

/// An edge-labelled graph database with data values on nodes.
///
/// Nodes are interned by name; labels come from a finite alphabet Σ that is
/// recorded explicitly (it matters for complements in GXPath and for the
/// triplestore encoding `T_G = (V ∪ Σ, E)`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphDb {
    names: Vec<String>,
    values: Vec<Value>,
    by_name: HashMap<String, NodeId>,
    edges: Vec<Edge>,
    alphabet: BTreeSet<String>,
}

/// Mutable builder for [`GraphDb`].
#[derive(Debug, Clone, Default)]
pub struct GraphDbBuilder {
    graph: GraphDb,
}

impl GraphDbBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphDbBuilder::default()
    }

    /// Interns a node by name. Idempotent.
    pub fn node(&mut self, name: impl AsRef<str>) -> NodeId {
        self.graph.intern(name.as_ref())
    }

    /// Interns a node and attaches a data value `ρ(v)`.
    pub fn node_with_value(&mut self, name: impl AsRef<str>, value: impl Into<Value>) -> NodeId {
        let id = self.graph.intern(name.as_ref());
        self.graph.values[id.index()] = value.into();
        id
    }

    /// Adds a labelled edge between two node names, interning as needed.
    pub fn edge(
        &mut self,
        source: impl AsRef<str>,
        label: impl Into<String>,
        target: impl AsRef<str>,
    ) -> &mut Self {
        let s = self.node(source);
        let t = self.node(target);
        let label = label.into();
        self.graph.alphabet.insert(label.clone());
        self.graph.edges.push(Edge {
            source: s,
            label,
            target: t,
        });
        self
    }

    /// Declares a label as part of the alphabet even if no edge uses it yet.
    pub fn declare_label(&mut self, label: impl Into<String>) -> &mut Self {
        self.graph.alphabet.insert(label.into());
        self
    }

    /// Finalises the graph.
    pub fn finish(mut self) -> GraphDb {
        self.graph.edges.sort();
        self.graph.edges.dedup();
        self.graph
    }
}

impl GraphDb {
    fn intern(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NodeId(u32::try_from(self.names.len()).expect("too many nodes"));
        self.names.push(name.to_owned());
        self.values.push(Value::Null);
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// All edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter()
    }

    /// The alphabet Σ of edge labels, in sorted order.
    pub fn alphabet(&self) -> impl Iterator<Item = &str> + '_ {
        self.alphabet.iter().map(String::as_str)
    }

    /// Looks up a node by name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// A node's name.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// A node's data value `ρ(v)`.
    pub fn value(&self, id: NodeId) -> &Value {
        &self.values[id.index()]
    }

    /// Outgoing `(label, target)` pairs of a node.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (&str, NodeId)> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.source == node)
            .map(|e| (e.label.as_str(), e.target))
    }

    /// Incoming `(label, source)` pairs of a node.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = (&str, NodeId)> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.target == node)
            .map(|e| (e.label.as_str(), e.source))
    }

    /// All pairs `(u, v)` connected by an edge with the given label.
    pub fn label_pairs(&self, label: &str) -> Vec<(NodeId, NodeId)> {
        self.edges
            .iter()
            .filter(|e| e.label == label)
            .map(|e| (e.source, e.target))
            .collect()
    }

    /// Renders a set of node pairs with node names (sorted), for tests.
    pub fn display_pairs(
        &self,
        pairs: &std::collections::HashSet<(NodeId, NodeId)>,
    ) -> Vec<String> {
        let mut out: Vec<String> = pairs
            .iter()
            .map(|(a, b)| format!("({}, {})", self.node_name(*a), self.node_name(*b)))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.edge("a", "knows", "b");
        b.edge("b", "knows", "c");
        b.edge("c", "likes", "a");
        b.node_with_value("a", Value::int(30));
        b.declare_label("unused");
        b.finish()
    }

    #[test]
    fn build_and_query() {
        let g = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(
            g.alphabet().collect::<Vec<_>>(),
            vec!["knows", "likes", "unused"]
        );
        let a = g.node_id("a").unwrap();
        assert_eq!(g.node_name(a), "a");
        assert_eq!(g.value(a), &Value::int(30));
        assert_eq!(g.value(g.node_id("b").unwrap()), &Value::Null);
        assert!(g.node_id("zzz").is_none());
    }

    #[test]
    fn adjacency_iterators() {
        let g = sample();
        let a = g.node_id("a").unwrap();
        let b = g.node_id("b").unwrap();
        let outs: Vec<_> = g.out_edges(a).collect();
        assert_eq!(outs, vec![("knows", b)]);
        let ins: Vec<_> = g.in_edges(a).collect();
        assert_eq!(ins.len(), 1);
        assert_eq!(ins[0].0, "likes");
        assert_eq!(g.label_pairs("knows").len(), 2);
        assert_eq!(g.label_pairs("missing").len(), 0);
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let mut b = GraphDbBuilder::new();
        b.edge("x", "l", "y");
        b.edge("x", "l", "y");
        let g = b.finish();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn display_pairs_sorted() {
        let g = sample();
        let mut pairs = std::collections::HashSet::new();
        pairs.insert((g.node_id("b").unwrap(), g.node_id("c").unwrap()));
        pairs.insert((g.node_id("a").unwrap(), g.node_id("b").unwrap()));
        assert_eq!(g.display_pairs(&pairs), vec!["(a, b)", "(b, c)"]);
    }
}
