//! Translations of graph query languages into TriAL\* (Theorem 7,
//! Corollaries 2 and 4).
//!
//! Following Section 6.2 of the paper, a graph database `G = (V, E, ρ)` over
//! alphabet Σ is encoded as the triplestore `T_G = (V ∪ Σ, E, ρ)` whose only
//! relation holds the edge triples `(u, a, v)`. A binary graph query `α` is
//! *translated* into a TriAL\* expression `E_α` such that
//! `α(G) = π_{1,3}(E_α(T_G))` — evaluating the translation over the encoding
//! and keeping the first and third components gives exactly the query's
//! answer.
//!
//! The translations below cover RPQs ([`regex_to_trial`]), NREs
//! ([`nre_to_trial`]), and GXPath with data tests ([`path_to_trial`],
//! [`node_to_trial`]). They are exact on the *active domain*: a node that is
//! incident to no edge is invisible to any algebra expression over `E` (the
//! same caveat applies to the paper's translation, which works over the
//! universal relation `U` built from `E`).

use crate::gxpath::{NodeExpr, PathExpr};
use crate::nre::Nre;
use crate::regex::Regex;
use trial_core::{output, Conditions, Expr, OutputSpec, Pos, Triplestore, TriplestoreBuilder};

/// The relation name used for the edge relation of the encoding `T_G`.
pub const EDGE_RELATION: &str = "E";

/// Encodes a graph database as the triplestore `T_G = (V ∪ Σ, E, ρ)`.
pub fn graph_to_triplestore(graph: &crate::graph::GraphDb) -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    // Nodes first so that data values are attached even for label-named nodes.
    for node in graph.nodes() {
        let value = graph.value(node);
        if value.is_null() {
            b.object(graph.node_name(node));
        } else {
            b.object_with_value(graph.node_name(node), value.clone());
        }
    }
    for label in graph.alphabet() {
        b.object(label);
    }
    b.relation(EDGE_RELATION);
    for edge in graph.edges() {
        b.add_triple(
            EDGE_RELATION,
            graph.node_name(edge.source),
            &edge.label,
            graph.node_name(edge.target),
        );
    }
    b.finish()
}

/// Identity condition `1=1', 2=2', 3=3'` used to pair a relation with itself.
fn identity() -> Conditions {
    Conditions::new()
        .obj_eq(Pos::L1, Pos::R1)
        .obj_eq(Pos::L2, Pos::R2)
        .obj_eq(Pos::L3, Pos::R3)
}

/// The diagonal over graph nodes: triples `(v, v, v)` for every object that
/// occurs as the source or target of an edge.
pub fn node_diagonal() -> Expr {
    let e = Expr::rel(EDGE_RELATION);
    let sources = e
        .clone()
        .join(e.clone(), output(Pos::L1, Pos::L1, Pos::L1), identity());
    let targets = e
        .clone()
        .join(e, output(Pos::L3, Pos::L3, Pos::L3), identity());
    sources.union(targets)
}

/// All pairs of graph nodes, as triples `(u, u, v)`.
pub fn all_node_pairs() -> Expr {
    node_diagonal().join(
        node_diagonal(),
        output(Pos::L1, Pos::L1, Pos::R3),
        Conditions::new(),
    )
}

/// Normalises a path-shaped result to triples `(u, u, v)`, forgetting the
/// middle witness. Needed before set-differences between path relations.
fn normalise(expr: Expr) -> Expr {
    expr.clone()
        .join(expr, output(Pos::L1, Pos::L1, Pos::L3), identity())
}

/// Composition of two path-shaped expressions: `E_α ✶^{1,2,3'}_{3=1'} E_β`.
fn compose(a: Expr, b: Expr) -> Expr {
    a.join(
        b,
        output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new().obj_eq(Pos::L3, Pos::R1),
    )
}

/// The one-or-more transitive closure of a path-shaped expression.
fn plus_closure(expr: Expr) -> Expr {
    expr.right_star(
        output(Pos::L1, Pos::L2, Pos::R3),
        Conditions::new().obj_eq(Pos::L3, Pos::R1),
    )
}

/// Forward step on a label: `σ_{2=a}(E)`.
fn label_step(label: &str) -> Expr {
    Expr::rel(EDGE_RELATION).select(Conditions::new().obj_eq_const(Pos::L2, label))
}

/// Inverse step on a label: `E ✶^{3,2,1}_{2=a, id} E`.
fn inverse_step(label: &str) -> Expr {
    Expr::rel(EDGE_RELATION).join(
        Expr::rel(EDGE_RELATION),
        output(Pos::L3, Pos::L2, Pos::L1),
        identity().obj_eq_const(Pos::L2, label),
    )
}

/// Translates a regular path query (given by its regular expression) into a
/// TriAL\* expression (Corollary 2).
pub fn regex_to_trial(regex: &Regex) -> Expr {
    match regex {
        Regex::Empty => Expr::Empty,
        Regex::Epsilon => node_diagonal(),
        Regex::Label(l) => label_step(l),
        Regex::Concat(a, b) => compose(regex_to_trial(a), regex_to_trial(b)),
        Regex::Alt(a, b) => regex_to_trial(a).union(regex_to_trial(b)),
        Regex::Star(a) => node_diagonal().union(plus_closure(regex_to_trial(a))),
        Regex::Plus(a) => plus_closure(regex_to_trial(a)),
    }
}

/// Translates a nested regular expression into a TriAL\* expression
/// (Corollary 2 / Theorem 7).
pub fn nre_to_trial(nre: &Nre) -> Expr {
    match nre {
        Nre::Epsilon => node_diagonal(),
        Nre::Label(l) => label_step(l),
        Nre::Inverse(l) => inverse_step(l),
        Nre::Concat(a, b) => compose(nre_to_trial(a), nre_to_trial(b)),
        Nre::Alt(a, b) => nre_to_trial(a).union(nre_to_trial(b)),
        Nre::Star(a) => node_diagonal().union(plus_closure(nre_to_trial(a))),
        Nre::Plus(a) => plus_closure(nre_to_trial(a)),
        Nre::Test(a) => {
            let inner = nre_to_trial(a);
            inner.clone().join(
                inner,
                output(Pos::L1, Pos::L1, Pos::L1),
                Conditions::new().obj_eq(Pos::L1, Pos::R1),
            )
        }
    }
}

/// Translates a GXPath path expression into a TriAL\* expression
/// (Theorem 7 / Corollary 4 for the data constructs).
pub fn path_to_trial(alpha: &PathExpr) -> Expr {
    match alpha {
        PathExpr::Epsilon => node_diagonal(),
        PathExpr::Label(l) => label_step(l),
        PathExpr::Inverse(l) => inverse_step(l),
        PathExpr::Test(phi) => node_to_trial(phi),
        PathExpr::Concat(a, b) => compose(path_to_trial(a), path_to_trial(b)),
        PathExpr::Union(a, b) => path_to_trial(a).union(path_to_trial(b)),
        PathExpr::Complement(a) => all_node_pairs().minus(normalise(path_to_trial(a))),
        PathExpr::Star(a) => node_diagonal().union(plus_closure(path_to_trial(a))),
        PathExpr::DataEq(a) => {
            let inner = path_to_trial(a);
            inner.clone().join(
                inner,
                OutputSpec::IDENTITY,
                identity().data_eq(Pos::L1, Pos::L3),
            )
        }
        PathExpr::DataNeq(a) => {
            let inner = path_to_trial(a);
            inner.clone().join(
                inner,
                OutputSpec::IDENTITY,
                identity().data_neq(Pos::L1, Pos::L3),
            )
        }
    }
}

/// Translates a GXPath node expression into a TriAL\* expression whose value
/// is a set of diagonal triples `(v, v, v)`.
pub fn node_to_trial(phi: &NodeExpr) -> Expr {
    match phi {
        NodeExpr::Top => node_diagonal(),
        NodeExpr::Not(a) => node_diagonal().minus(node_to_trial(a)),
        NodeExpr::And(a, b) => node_to_trial(a).intersect(node_to_trial(b)),
        NodeExpr::Or(a, b) => node_to_trial(a).union(node_to_trial(b)),
        NodeExpr::Exists(alpha) => {
            let inner = path_to_trial(alpha);
            inner.clone().join(
                inner,
                output(Pos::L1, Pos::L1, Pos::L1),
                Conditions::new().obj_eq(Pos::L1, Pos::R1),
            )
        }
        NodeExpr::ExistsEq(alpha, beta) => exists_data(alpha, beta, true),
        NodeExpr::ExistsNeq(alpha, beta) => exists_data(alpha, beta, false),
    }
}

fn exists_data(alpha: &PathExpr, beta: &PathExpr, eq: bool) -> Expr {
    let a = path_to_trial(alpha);
    let b = path_to_trial(beta);
    let cond = Conditions::new().obj_eq(Pos::L1, Pos::R1);
    let cond = if eq {
        cond.data_eq(Pos::L3, Pos::R3)
    } else {
        cond.data_neq(Pos::L3, Pos::R3)
    };
    a.join(b, output(Pos::L1, Pos::L1, Pos::L1), cond)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphDb, GraphDbBuilder, NodeId};
    use crate::gxpath::{evaluate_node, evaluate_path};
    use crate::nre::evaluate_nre;
    use crate::rpq::evaluate_rpq;
    use std::collections::BTreeSet;
    use trial_core::Value;
    use trial_eval::evaluate;

    fn sample_graph() -> GraphDb {
        let mut b = GraphDbBuilder::new();
        b.edge("mario", "knows", "luigi");
        b.edge("luigi", "knows", "peach");
        b.edge("peach", "likes", "mario");
        b.edge("mario", "likes", "peach");
        b.edge("peach", "knows", "toad");
        b.node_with_value("mario", Value::int(23));
        b.node_with_value("luigi", Value::int(27));
        b.node_with_value("peach", Value::int(23));
        b.node_with_value("toad", Value::int(23));
        b.finish()
    }

    /// Projects a TriAL result to named (first, third) pairs.
    fn trial_pairs(expr: &Expr, store: &Triplestore) -> BTreeSet<(String, String)> {
        evaluate(expr, store)
            .unwrap()
            .result
            .iter()
            .map(|t| {
                (
                    store.object_name(t.s()).to_owned(),
                    store.object_name(t.o()).to_owned(),
                )
            })
            .collect()
    }

    fn native_pairs(
        graph: &GraphDb,
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> BTreeSet<(String, String)> {
        pairs
            .into_iter()
            .map(|(a, b)| (graph.node_name(a).to_owned(), graph.node_name(b).to_owned()))
            .collect()
    }

    #[test]
    fn encoding_makes_labels_objects() {
        let g = sample_graph();
        let store = graph_to_triplestore(&g);
        assert_eq!(store.triple_count(), g.edge_count());
        // Labels are first-class objects of the encoding.
        assert!(store.object_id("knows").is_some());
        assert!(store.object_id("likes").is_some());
        assert_eq!(
            store.value(store.object_id("mario").unwrap()),
            &Value::int(23)
        );
    }

    #[test]
    fn nre_translation_agrees_with_native_semantics() {
        let g = sample_graph();
        let store = graph_to_triplestore(&g);
        let nres = vec![
            Nre::Epsilon,
            Nre::label("knows"),
            Nre::inverse("likes"),
            Nre::label("knows").then(Nre::label("knows")),
            Nre::label("knows").or(Nre::label("likes")),
            Nre::label("knows").star(),
            Nre::label("knows").plus(),
            Nre::label("knows").then(Nre::label("likes").test()),
            Nre::label("knows")
                .then(Nre::inverse("knows").test())
                .star()
                .then(Nre::label("likes")),
        ];
        for nre in nres {
            let native = native_pairs(&g, evaluate_nre(&g, &nre));
            let translated = trial_pairs(&nre_to_trial(&nre), &store);
            assert_eq!(native, translated, "mismatch for NRE {nre}");
        }
    }

    #[test]
    fn rpq_translation_agrees_with_native_semantics() {
        let g = sample_graph();
        let store = graph_to_triplestore(&g);
        let regexes = vec![
            Regex::label("knows"),
            Regex::label("knows").then(Regex::label("knows")),
            Regex::label("knows").or(Regex::label("likes")),
            Regex::label("knows").star(),
            Regex::label("knows").plus().then(Regex::label("likes")),
            Regex::Epsilon,
            Regex::Empty,
        ];
        for re in regexes {
            let native = native_pairs(&g, evaluate_rpq(&g, &re));
            let translated = trial_pairs(&regex_to_trial(&re), &store);
            assert_eq!(native, translated, "mismatch for RPQ {re}");
        }
    }

    #[test]
    fn gxpath_translation_agrees_with_native_semantics() {
        let g = sample_graph();
        let store = graph_to_triplestore(&g);
        let paths = vec![
            PathExpr::label("knows"),
            PathExpr::inverse("knows"),
            PathExpr::Epsilon,
            PathExpr::label("knows").then(PathExpr::label("likes")),
            PathExpr::label("knows").or(PathExpr::label("likes")).star(),
            PathExpr::label("knows").complement(),
            PathExpr::label("knows").star().complement(),
            PathExpr::test(NodeExpr::exists(PathExpr::label("likes"))),
            PathExpr::label("knows").then(PathExpr::test(
                NodeExpr::exists(PathExpr::label("likes")).not(),
            )),
            PathExpr::label("knows").data_eq(),
            PathExpr::label("knows")
                .then(PathExpr::label("knows"))
                .data_eq(),
            PathExpr::label("knows").data_neq(),
        ];
        for alpha in paths {
            let native = native_pairs(&g, evaluate_path(&g, &alpha));
            let translated = trial_pairs(&path_to_trial(&alpha), &store);
            assert_eq!(native, translated, "mismatch for GXPath {alpha}");
        }
    }

    #[test]
    fn gxpath_node_translation_agrees_with_native_semantics() {
        let g = sample_graph();
        let store = graph_to_triplestore(&g);
        let nodes = vec![
            NodeExpr::Top,
            NodeExpr::exists(PathExpr::label("likes")),
            NodeExpr::exists(PathExpr::label("likes")).not(),
            NodeExpr::exists(PathExpr::label("knows"))
                .and(NodeExpr::exists(PathExpr::label("likes"))),
            NodeExpr::exists(PathExpr::label("knows"))
                .or(NodeExpr::exists(PathExpr::label("likes"))),
            NodeExpr::exists_eq(PathExpr::label("knows"), PathExpr::label("likes")),
            NodeExpr::exists_neq(PathExpr::label("knows"), PathExpr::label("likes")),
        ];
        for phi in nodes {
            let native: BTreeSet<String> = evaluate_node(&g, &phi)
                .into_iter()
                .map(|v| g.node_name(v).to_owned())
                .collect();
            let translated: BTreeSet<String> = evaluate(&node_to_trial(&phi), &store)
                .unwrap()
                .result
                .iter()
                .map(|t| store.object_name(t.s()).to_owned())
                .collect();
            assert_eq!(native, translated, "mismatch for node expression {phi}");
        }
    }

    #[test]
    fn translated_expressions_are_recursive_only_when_needed() {
        assert!(!nre_to_trial(&Nre::label("a")).is_recursive());
        assert!(nre_to_trial(&Nre::label("a").star()).is_recursive());
        assert!(path_to_trial(&PathExpr::label("a").star()).is_recursive());
        assert!(!path_to_trial(&PathExpr::label("a").complement()).is_recursive());
    }
}
