//! # trial-graph
//!
//! Graph databases and the graph query languages the paper compares TriAL\*
//! against (Sections 2 and 6.2):
//!
//! * the standard **graph database** model `G = (V, E ⊆ V×Σ×V, ρ)`
//!   ([`GraphDb`]);
//! * **regular path queries** (RPQs) evaluated by NFA product construction
//!   ([`regex`], [`rpq`]);
//! * **nested regular expressions** (NREs, the navigational core of
//!   nSPARQL) ([`nre`]);
//! * **GXPath** with and without data-value comparisons ([`gxpath`]);
//! * **conjunctive NREs / CRPQs** ([`cnre`]);
//! * **nSPARQL-style axis navigation** evaluated directly over triplestores
//!   ([`nsparql`], Theorem 1);
//! * **register automata / regular expressions with memory** over graphs
//!   with data ([`register`], Proposition 6);
//! * the **σ(·) encoding** of RDF/triplestores into graph databases used by
//!   nSPARQL and by Proposition 1 ([`sigma`]);
//! * the **translations into TriAL\*** that witness Theorem 7 and
//!   Corollaries 2 and 4 ([`translate`]).
//!
//! Every language has a *native* evaluator over [`GraphDb`], so the
//! translation theorems can be checked empirically: evaluating a graph query
//! natively and evaluating its TriAL\* translation over the graph's
//! triplestore encoding must produce the same pairs of nodes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnre;
pub mod graph;
pub mod gxpath;
pub mod nre;
pub mod nsparql;
pub mod regex;
pub mod register;
pub mod rpq;
pub mod sigma;
pub mod translate;

pub use graph::{GraphDb, GraphDbBuilder, NodeId};
pub use gxpath::{NodeExpr, PathExpr};
pub use nre::Nre;
pub use nsparql::{evaluate_nsparql, Axis, NsExpr};
pub use regex::Regex;
pub use register::{evaluate_rem, RegisterAutomaton, Rem};
pub use sigma::{proposition1_documents, sigma_encode};
pub use translate::{graph_to_triplestore, nre_to_trial, path_to_trial, regex_to_trial};
