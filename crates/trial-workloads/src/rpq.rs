//! Path-query (RPQ) workloads: labelled graphs plus expression suites.
//!
//! The structured stores in [`crate::chains`] carry a single edge label per
//! shape (`next`, or `right`/`down` on grids), which is enough for
//! reachability but not for regular path expressions — alternation and
//! concatenation only become interesting when a walk has to *choose* between
//! labels. The generators here build the labelled variants, and the
//! `*_path_suite` functions enumerate the expressions the RPQ benchmarks and
//! differential tests run over them: concatenation chains (which the TriAL
//! lowering turns into join trees), alternations, and the closures that force
//! the NFA product walk.

use trial_core::{Triplestore, TriplestoreBuilder};

/// One path-query case of a workload suite: a path-expression text in the
/// `trial_parser::parse_path` grammar plus an optional hop bound.
#[derive(Debug, Clone, Copy)]
pub struct PathCase {
    /// Short case name (stable across runs; used in reports and JSON).
    pub name: &'static str,
    /// The path expression, in concrete syntax.
    pub path: &'static str,
    /// Walk-length bound in graph edges (`None` = unbounded).
    pub max_hops: Option<usize>,
}

/// A chain `n0 → n1 → … → n_len` whose edge labels cycle through `labels`:
/// edge `i` is labelled `labels[i % labels.len()]`. With `labels = ["a","b"]`
/// the chain spells the word `abab…`, so `a/b` matches every even-offset
/// two-step hop and `(a/b)*` the even-length prefix pairs — the shapes that
/// separate concatenation lowering from closure walks.
pub fn labeled_chain_store(len: usize, labels: &[&str]) -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    b.relation("E");
    for i in 0..len {
        b.add_triple(
            "E",
            format!("n{i}"),
            labels[i % labels.len().max(1)],
            format!("n{}", i + 1),
        );
    }
    b.finish()
}

/// A cycle of `len` nodes whose edge labels cycle through `labels` (edge
/// `i → i+1 mod len` is labelled `labels[i % labels.len()]`).
pub fn labeled_cycle_store(len: usize, labels: &[&str]) -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    b.relation("E");
    for i in 0..len {
        b.add_triple(
            "E",
            format!("n{i}"),
            labels[i % labels.len().max(1)],
            format!("n{}", (i + 1) % len.max(1)),
        );
    }
    b.finish()
}

/// The expression suite for an `a`/`b`-labelled chain
/// ([`labeled_chain_store`] with `labels = ["a", "b"]`): closure-free cases
/// first (these lower to TriAL join plans), then the closures that resolve
/// to the NFA product walk.
pub fn chain_path_suite() -> Vec<PathCase> {
    vec![
        PathCase {
            name: "chain/atom",
            path: "a",
            max_hops: None,
        },
        PathCase {
            name: "chain/seq2",
            path: "a/b",
            max_hops: None,
        },
        PathCase {
            name: "chain/seq4",
            path: "a/b/a/b",
            max_hops: None,
        },
        PathCase {
            name: "chain/alt-seq",
            path: "(a|b)/(a|b)",
            max_hops: None,
        },
        PathCase {
            name: "chain/opt",
            path: "a?/b",
            max_hops: None,
        },
        PathCase {
            name: "chain/star-seq",
            path: "(a/b)*",
            max_hops: None,
        },
        PathCase {
            name: "chain/plus-alt",
            path: "(a|b)+",
            max_hops: None,
        },
        PathCase {
            name: "chain/plus-alt-bounded",
            path: "(a|b)+",
            max_hops: Some(8),
        },
    ]
}

/// The expression suite for a `next`-labelled cycle ([`crate::cycle_store`]
/// or [`labeled_cycle_store`] with one label): closures over a graph where
/// every node reaches every node, the worst case for transitive closure.
pub fn cycle_path_suite() -> Vec<PathCase> {
    vec![
        PathCase {
            name: "cycle/seq2",
            path: "next/next",
            max_hops: None,
        },
        PathCase {
            name: "cycle/star",
            path: "next*",
            max_hops: None,
        },
        PathCase {
            name: "cycle/plus",
            path: "next+",
            max_hops: None,
        },
        PathCase {
            name: "cycle/plus-bounded",
            path: "next+",
            max_hops: Some(4),
        },
    ]
}

/// The expression suite for the `right`/`down`-labelled grid
/// ([`crate::grid_store`]): monotone walks where the two labels genuinely
/// compete, including the classic staircase `(right/down)+`.
pub fn grid_path_suite() -> Vec<PathCase> {
    vec![
        PathCase {
            name: "grid/seq2",
            path: "right/down",
            max_hops: None,
        },
        PathCase {
            name: "grid/stairs",
            path: "(right/down)+",
            max_hops: None,
        },
        PathCase {
            name: "grid/monotone",
            path: "(right|down)+",
            max_hops: None,
        },
        PathCase {
            name: "grid/monotone-bounded",
            path: "(right|down)+",
            max_hops: Some(6),
        },
        PathCase {
            name: "grid/rows-then-cols",
            path: "right*/down*",
            max_hops: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_chain_counts() {
        let store = labeled_chain_store(6, &["a", "b"]);
        assert_eq!(store.triple_count(), 6);
        // 7 nodes + 2 labels.
        assert_eq!(store.object_count(), 9);
    }

    #[test]
    fn labeled_cycle_counts() {
        let store = labeled_cycle_store(4, &["a", "b"]);
        assert_eq!(store.triple_count(), 4);
        assert_eq!(store.object_count(), 6);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(labeled_chain_store(0, &["a"]).triple_count(), 0);
        assert_eq!(labeled_cycle_store(0, &["a"]).triple_count(), 0);
    }

    #[test]
    fn suites_are_nonempty_and_named_uniquely() {
        for suite in [chain_path_suite(), cycle_path_suite(), grid_path_suite()] {
            assert!(!suite.is_empty());
            let mut names: Vec<_> = suite.iter().map(|c| c.name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), suite.len());
        }
    }
}
