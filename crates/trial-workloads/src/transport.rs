//! Transport-network workloads: the Figure 1 database and scaled versions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trial_core::{Triplestore, TriplestoreBuilder};

/// The exact RDF database of Figure 1, as a single-relation triplestore `E`.
pub fn figure1_store() -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    for (s, p, o) in [
        ("St.Andrews", "BusOp1", "Edinburgh"),
        ("Edinburgh", "TrainOp1", "London"),
        ("London", "TrainOp2", "Brussels"),
        ("BusOp1", "part_of", "NatExpress"),
        ("TrainOp1", "part_of", "EastCoast"),
        ("TrainOp2", "part_of", "Eurostar"),
        ("EastCoast", "part_of", "NatExpress"),
    ] {
        b.add_triple("E", s, p, o);
    }
    b.finish()
}

/// Parameters for [`transport_network`].
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// Number of cities.
    pub cities: usize,
    /// Number of transport operators.
    pub operators: usize,
    /// Number of parent companies.
    pub companies: usize,
    /// Number of city-to-city service triples.
    pub services: usize,
    /// Depth of the `part_of` ownership chains (operator → … → company).
    pub ownership_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            cities: 50,
            operators: 10,
            companies: 3,
            services: 150,
            ownership_depth: 2,
            seed: 7,
        }
    }
}

/// Generates a transport network in the style of Figure 1.
///
/// The relation `E` contains:
/// * service triples `(city_i, operator_k, city_j)`;
/// * ownership triples `(operator_k, part_of, holding)` and
///   `(holding, part_of, company)` chains of the configured depth.
///
/// This is the natural workload for the paper's query `Q` (pairs of cities
/// connected by services of a single company, closed under `part_of`).
pub fn transport_network(config: &TransportConfig) -> Triplestore {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = TriplestoreBuilder::new();
    b.relation("E");
    let city = |i: usize| format!("city{i}");
    let operator = |i: usize| format!("op{i}");
    let company = |i: usize| format!("company{i}");
    // Services between cities.
    for _ in 0..config.services {
        let from = rng.random_range(0..config.cities.max(1));
        let mut to = rng.random_range(0..config.cities.max(1));
        if to == from {
            to = (to + 1) % config.cities.max(1);
        }
        let op = rng.random_range(0..config.operators.max(1));
        b.add_triple("E", city(from), operator(op), city(to));
    }
    // Ownership chains: operator → intermediate holdings → company.
    for op in 0..config.operators {
        let target_company = op % config.companies.max(1);
        let mut current = operator(op);
        for level in 1..config.ownership_depth.max(1) {
            let holding = format!("holding{op}_{level}");
            b.add_triple("E", &current, "part_of", &holding);
            current = holding;
        }
        b.add_triple("E", &current, "part_of", company(target_company));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::builder::queries;
    use trial_eval::evaluate;

    #[test]
    fn figure1_has_the_paper_shape() {
        let store = figure1_store();
        assert_eq!(store.triple_count(), 7);
        assert_eq!(store.object_count(), 11);
    }

    #[test]
    fn generator_is_deterministic_and_scales() {
        let cfg = TransportConfig::default();
        let a = transport_network(&cfg);
        let b = transport_network(&cfg);
        assert_eq!(a, b);
        let bigger = transport_network(&TransportConfig {
            services: 400,
            ..cfg
        });
        assert!(bigger.triple_count() > a.triple_count());
        // Every triple is either a service or a part_of edge.
        let part_of = a.object_id("part_of").unwrap();
        for t in a.require_relation("E").unwrap().iter() {
            let is_ownership = t.p() == part_of;
            let is_service = a.object_name(t.s()).starts_with("city");
            assert!(is_ownership || is_service);
        }
    }

    #[test]
    fn query_q_runs_on_generated_networks() {
        let store = transport_network(&TransportConfig {
            cities: 12,
            operators: 4,
            companies: 2,
            services: 30,
            ownership_depth: 2,
            seed: 3,
        });
        let q = queries::same_company_reachability("E");
        let result = evaluate(&q, &store).unwrap();
        // The result contains at least the one-hop services lifted to their
        // companies, so it is non-empty on any non-trivial network.
        assert!(!result.result.is_empty());
    }
}
