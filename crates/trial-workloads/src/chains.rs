//! Structured stores: chains, cycles, grids and cliques.
//!
//! These shapes make the complexity behaviour of the evaluation algorithms
//! predictable: a chain of length `n` forces `n` fixpoint rounds, a clique
//! maximises join fan-out, and a grid sits in between.

use trial_core::{Triplestore, TriplestoreBuilder};

/// A chain `n0 →next n1 →next … →next n_len`: `len` triples, `len + 1` nodes.
pub fn chain_store(len: usize) -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    b.relation("E");
    for i in 0..len {
        b.add_triple("E", format!("n{i}"), "next", format!("n{}", i + 1));
    }
    b.finish()
}

/// A cycle of `len` nodes connected by `next` edges.
pub fn cycle_store(len: usize) -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    b.relation("E");
    for i in 0..len {
        b.add_triple(
            "E",
            format!("n{i}"),
            "next",
            format!("n{}", (i + 1) % len.max(1)),
        );
    }
    b.finish()
}

/// An `n × n` grid with `right` and `down` labelled edges.
pub fn grid_store(n: usize) -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    b.relation("E");
    let name = |r: usize, c: usize| format!("g{r}_{c}");
    for r in 0..n {
        for c in 0..n {
            if c + 1 < n {
                b.add_triple("E", name(r, c), "right", name(r, c + 1));
            }
            if r + 1 < n {
                b.add_triple("E", name(r, c), "down", name(r + 1, c));
            }
        }
    }
    b.finish()
}

/// A directed clique over `n` nodes: every ordered pair of distinct nodes is
/// connected by an `edge`-labelled triple.
pub fn clique_store(n: usize) -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    b.relation("E");
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.add_triple("E", format!("n{i}"), "edge", format!("n{j}"));
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::builder::queries;
    use trial_eval::evaluate;

    #[test]
    fn chain_reachability_is_triangular() {
        let store = chain_store(10);
        assert_eq!(store.triple_count(), 10);
        let reach = evaluate(&queries::reach_forward("E"), &store).unwrap();
        assert_eq!(reach.result.len(), 10 * 11 / 2);
    }

    #[test]
    fn cycle_reachability_is_complete() {
        let store = cycle_store(6);
        let reach = evaluate(&queries::reach_forward("E"), &store).unwrap();
        // Every node reaches every node (including itself) in a cycle.
        assert_eq!(reach.result.len(), 36);
    }

    #[test]
    fn grid_counts() {
        let store = grid_store(4);
        // 4x4 grid: 2 * 4 * 3 = 24 edges.
        assert_eq!(store.triple_count(), 24);
        let reach = evaluate(&queries::reach_forward("E"), &store).unwrap();
        assert!(!reach.result.is_empty());
    }

    #[test]
    fn clique_counts() {
        let store = clique_store(5);
        assert_eq!(store.triple_count(), 20);
        assert_eq!(store.object_count(), 6); // 5 nodes + the `edge` label
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(chain_store(0).triple_count(), 0);
        assert_eq!(cycle_store(0).triple_count(), 0);
        assert_eq!(grid_store(1).triple_count(), 0);
        assert_eq!(clique_store(1).triple_count(), 0);
    }
}
