//! Random triplestores and graphs.

use crate::transport::figure1_store;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trial_core::{Triplestore, TriplestoreBuilder, Value};
use trial_graph::{GraphDb, GraphDbBuilder};

/// Parameters for [`random_store`].
#[derive(Debug, Clone, Copy)]
pub struct RandomStoreConfig {
    /// Number of objects.
    pub objects: usize,
    /// Number of triples (sampled uniformly over objects³, duplicates merged).
    pub triples: usize,
    /// Number of distinct data values assigned round-robin to objects
    /// (0 = leave every ρ(o) null).
    pub distinct_values: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomStoreConfig {
    fn default() -> Self {
        RandomStoreConfig {
            objects: 100,
            triples: 300,
            distinct_values: 10,
            seed: 42,
        }
    }
}

/// Generates a uniform random triplestore with a single relation `E`.
///
/// This is the workload used for the Theorem 3 scaling experiments: the
/// middle components are drawn from the full object set, so triples behave
/// like genuine RDF (predicates are also subjects/objects), not like a
/// fixed-alphabet graph.
pub fn random_store(config: &RandomStoreConfig) -> Triplestore {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = TriplestoreBuilder::new();
    b.relation("E");
    let ids: Vec<_> = (0..config.objects)
        .map(|i| {
            if config.distinct_values > 0 {
                b.object_with_value(
                    format!("o{i}"),
                    Value::int((i % config.distinct_values) as i64),
                )
            } else {
                b.object(format!("o{i}"))
            }
        })
        .collect();
    for _ in 0..config.triples {
        let s = ids[rng.random_range(0..ids.len())];
        let p = ids[rng.random_range(0..ids.len())];
        let o = ids[rng.random_range(0..ids.len())];
        b.add_triple_ids("E", s, p, o);
    }
    b.finish()
}

/// Generates a random edge-labelled graph with `nodes` nodes, `edges` edges
/// and `labels` distinct labels — the workload for the graph-language
/// translation experiments (Theorem 7 / Corollary 2).
pub fn random_graph(nodes: usize, edges: usize, labels: usize, seed: u64) -> GraphDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphDbBuilder::new();
    for i in 0..nodes {
        b.node_with_value(format!("n{i}"), Value::int((i % 5) as i64));
    }
    for _ in 0..edges {
        let s = rng.random_range(0..nodes.max(1));
        let t = rng.random_range(0..nodes.max(1));
        let l = rng.random_range(0..labels.max(1));
        b.edge(format!("n{s}"), format!("l{l}"), format!("n{t}"));
    }
    b.finish()
}

/// A store consisting of `copies` disjoint copies of the Figure 1 network —
/// handy when a benchmark wants data whose answer shape is known but whose
/// size grows linearly.
pub fn replicated_figure1(copies: usize) -> Triplestore {
    let base = figure1_store();
    let mut b = TriplestoreBuilder::new();
    b.relation("E");
    for copy in 0..copies.max(1) {
        for t in base.require_relation("E").expect("base relation").iter() {
            let name = |o| format!("{}@{copy}", base.object_name(o));
            b.add_triple("E", name(t.s()), name(t.p()), name(t.o()));
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::builder::queries;
    use trial_eval::evaluate;

    #[test]
    fn random_store_is_deterministic() {
        let cfg = RandomStoreConfig::default();
        assert_eq!(random_store(&cfg), random_store(&cfg));
        let other = random_store(&RandomStoreConfig { seed: 43, ..cfg });
        assert_ne!(random_store(&cfg), other);
    }

    #[test]
    fn random_store_respects_sizes() {
        let cfg = RandomStoreConfig {
            objects: 30,
            triples: 100,
            distinct_values: 4,
            seed: 1,
        };
        let store = random_store(&cfg);
        assert_eq!(store.object_count(), 30);
        // Duplicates may collapse, but the count stays close to the target.
        assert!(store.triple_count() <= 100);
        assert!(store.triple_count() > 80);
        // Data values are drawn from the configured set.
        let distinct: std::collections::BTreeSet<_> =
            store.objects().map(|o| store.value(o).clone()).collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn random_graph_shape() {
        let g = random_graph(20, 60, 3, 5);
        assert_eq!(g.node_count(), 20);
        assert!(g.edge_count() <= 60);
        assert!(g.alphabet().count() <= 3);
    }

    #[test]
    fn replicated_figure1_scales_answers_linearly() {
        let store = replicated_figure1(3);
        assert_eq!(store.triple_count(), 21);
        let result = evaluate(&queries::example2("E"), &store).unwrap();
        // Three copies of the three Example 2 answers.
        assert_eq!(result.result.len(), 9);
    }
}
