//! # trial-workloads
//!
//! Synthetic workload generators for the benchmark harness and the examples:
//!
//! * [`transport`] — parametric versions of the Figure 1 transport network
//!   (cities connected by services, services owned by companies through
//!   `part_of` chains), the workload behind the paper's query `Q`;
//! * [`social`] — the Section 2.3 social network with tuple-valued data;
//! * [`random`] — Erdős–Rényi-style random triplestores and graphs;
//! * [`chains`] — chains, cycles, grids and cliques used to probe the
//!   complexity bounds of Theorem 3 and Propositions 4/5;
//! * [`rpq`] — labelled chains/cycles plus the regular-path-expression
//!   suites the RPQ benchmarks and differential tests evaluate over them.
//!
//! All generators are deterministic given their seed, so every benchmark and
//! experiment in EXPERIMENTS.md is reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chains;
pub mod random;
pub mod rpq;
pub mod social;
pub mod transport;

pub use chains::{chain_store, clique_store, cycle_store, grid_store};
pub use random::{random_graph, random_store, RandomStoreConfig};
pub use rpq::{
    chain_path_suite, cycle_path_suite, grid_path_suite, labeled_chain_store, labeled_cycle_store,
    PathCase,
};
pub use social::{social_network, SocialConfig};
pub use transport::{figure1_store, transport_network, TransportConfig};
