//! The Section 2.3 social network: users and connections as triples, with
//! tuple-valued data values.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trial_core::{Triplestore, TriplestoreBuilder, Value};

/// Parameters for [`social_network`].
#[derive(Debug, Clone, Copy)]
pub struct SocialConfig {
    /// Number of users.
    pub users: usize,
    /// Number of connections (friendship/rivalry edges).
    pub connections: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            users: 40,
            connections: 120,
            seed: 11,
        }
    }
}

const CONNECTION_TYPES: [&str; 4] = ["brother", "coworker", "rival", "friend"];

/// Builds the exact social network of Section 2.3 (Mario, Luigi and
/// Donkey Kong with their three connections).
pub fn mario_network() -> Triplestore {
    let mut b = TriplestoreBuilder::new();
    let user = |b: &mut TriplestoreBuilder, id: &str, name: &str, email: &str, age: i64| {
        b.object_with_value(
            id,
            Value::tuple([
                Value::str(name),
                Value::str(email),
                Value::int(age),
                Value::Null,
                Value::Null,
            ]),
        )
    };
    let conn = |b: &mut TriplestoreBuilder, id: &str, kind: &str, created: &str| {
        b.object_with_value(
            id,
            Value::tuple([
                Value::Null,
                Value::Null,
                Value::Null,
                Value::str(kind),
                Value::str(created),
            ]),
        )
    };
    let mario = user(&mut b, "o175", "Mario", "m@nes.com", 23);
    let dk = user(&mut b, "o122", "Donkey Kong", "d@nes.com", 117);
    let luigi = user(&mut b, "o7521", "Luigi", "l@nes.com", 27);
    let c163 = conn(&mut b, "c163", "rival", "12-07-89");
    let c137 = conn(&mut b, "c137", "brother", "11-11-83");
    let c177 = conn(&mut b, "c177", "coworker", "12-07-89");
    b.add_triple_ids("E", mario, c163, dk);
    b.add_triple_ids("E", mario, c137, luigi);
    b.add_triple_ids("E", luigi, c177, dk);
    b.finish()
}

/// Generates a random social network in the same shape: every connection is
/// an object of its own, carrying a `(⊥,⊥,⊥,type,created)` tuple, and every
/// user carries `(name,email,age,⊥,⊥)`.
pub fn social_network(config: &SocialConfig) -> Triplestore {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = TriplestoreBuilder::new();
    b.relation("E");
    let users: Vec<_> = (0..config.users)
        .map(|i| {
            b.object_with_value(
                format!("user{i}"),
                Value::tuple([
                    Value::str(format!("User {i}")),
                    Value::str(format!("user{i}@example.org")),
                    Value::int(18 + (i as i64 * 7) % 60),
                    Value::Null,
                    Value::Null,
                ]),
            )
        })
        .collect();
    for c in 0..config.connections {
        let from = users[rng.random_range(0..users.len())];
        let to = users[rng.random_range(0..users.len())];
        let kind = CONNECTION_TYPES[rng.random_range(0..CONNECTION_TYPES.len())];
        let year = 1980 + rng.random_range(0..40);
        let conn = b.object_with_value(
            format!("conn{c}"),
            Value::tuple([
                Value::Null,
                Value::Null,
                Value::Null,
                Value::str(kind),
                Value::str(format!("01-01-{year}")),
            ]),
        );
        b.add_triple_ids("E", from, conn, to);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mario_network_matches_the_paper() {
        let store = mario_network();
        assert_eq!(store.triple_count(), 3);
        assert_eq!(store.object_count(), 6);
        let mario = store.object_id("o175").unwrap();
        assert_eq!(store.value(mario).component(0), Some(&Value::str("Mario")));
        let c163 = store.object_id("c163").unwrap();
        assert_eq!(store.value(c163).component(3), Some(&Value::str("rival")));
        // Same creation date for c163 and c177 (used for ∼-style queries).
        let c177 = store.object_id("c177").unwrap();
        assert!(store.value(c163).component_eq(store.value(c177), 4));
    }

    #[test]
    fn generated_network_shape() {
        let cfg = SocialConfig::default();
        let store = social_network(&cfg);
        assert_eq!(store.triple_count(), cfg.connections);
        assert_eq!(store.object_count(), cfg.users + cfg.connections);
        assert_eq!(social_network(&cfg), store);
        // Every triple's middle element is a connection object with a type.
        for t in store.require_relation("E").unwrap().iter() {
            let conn_value = store.value(t.p());
            assert!(conn_value.component(3).is_some());
        }
    }
}
