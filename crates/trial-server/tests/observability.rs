//! Integration tests for the observability surface: `/metrics` renders
//! valid Prometheus text exposition covering the engine work counters,
//! `/healthz` and `/metrics` read the same sources and cannot disagree,
//! request IDs are accepted and echoed on buffered and chunked responses,
//! `/explain?analyze=1` reports per-node timings, and the flight recorder
//! retains complete span records under concurrency — including every
//! errored or shed request.

use std::time::Duration;
use trial_obs::expo;
use trial_server::client::{self, HttpClient};
use trial_server::{Server, ServerConfig};

/// Extracts the integer value of `"field":N` from a flat JSON rendering.
fn json_u64(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no `{needle}` in `{body}`"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric `{needle}` in `{body}`"))
}

/// An N-Triples chain `<n0> <next> <n1> . …` of `n` triples.
fn chain_doc(n: usize) -> String {
    let mut doc = String::new();
    for i in 0..n {
        doc.push_str(&format!("<n{i}> <next> <n{}> .\n", i + 1));
    }
    doc
}

/// Scrapes `/metrics` and runs it through the strict exposition parser.
fn scrape(server: &Server) -> expo::Exposition {
    let response = client::get(server.addr(), "/metrics").unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("Content-Type"),
        Some("text/plain; version=0.0.4"),
        "scrape content type"
    );
    expo::parse(&response.body).unwrap_or_else(|e| panic!("invalid exposition: {e}"))
}

#[test]
fn metrics_are_valid_prometheus_and_cover_the_engine_counters() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(3000)).unwrap();

    // Mixed traffic: a hash join (filtered sides disqualify merge and
    // index-probe joins), a parallel evaluation, a buffering top-k, a cache
    // hit, a streamed response and a parse error.
    let join = "(SELECT[1!=3](E) JOIN[1,2,3' | 3=1'] SELECT[1!=3](E))";
    assert!(client::post(addr, "/query?store=chain", join)
        .unwrap()
        .is_ok());
    assert!(
        client::post(addr, "/query?store=chain&threads=4&stream=1", "E")
            .unwrap()
            .is_ok()
    );
    // Top-k over a join result: the derived rows have no index order, so
    // the bounded heap genuinely buffers (a bare scan would collapse to a
    // plain limit and never buffer).
    assert!(client::post(
        addr,
        "/query?store=chain&order=osp&topk=5",
        "(E JOIN[1,2,3' | 3=1'] E)"
    )
    .unwrap()
    .is_ok());
    let cached = client::post(addr, "/query?store=chain", join).unwrap();
    assert!(cached.body.contains("\"cached\":true"), "{}", cached.body);
    let bad = client::post(addr, "/query?store=chain", "(E JOIN[1,2").unwrap();
    assert_eq!(bad.status, 400);

    let metrics = scrape(&server);

    // Declared family types survive the strict parse.
    for (family, kind) in [
        ("trial_queries_served_total", "counter"),
        ("trial_requests_total", "counter"),
        ("trial_request_duration_us", "histogram"),
        ("trial_phase_duration_us", "histogram"),
        ("trial_query_rows_returned", "histogram"),
        ("trial_eval_topk_buffered_peak", "gauge"),
        ("trial_stores", "gauge"),
    ] {
        assert_eq!(
            metrics.types.get(family).map(String::as_str),
            Some(kind),
            "family {family}"
        );
    }

    // Service counters.
    assert!(metrics.value("trial_queries_served_total", &[]).unwrap() >= 4.0);
    assert_eq!(metrics.value("trial_loads_completed_total", &[]), Some(1.0));
    assert_eq!(metrics.value("trial_stores", &[]), Some(1.0));
    assert!(metrics.value("trial_queries_streamed_total", &[]).unwrap() >= 1.0);
    assert!(metrics.value("trial_cache_hits_total", &[]).unwrap() >= 1.0);

    // The engine work counters surfaced from EvalStats: the join built hash
    // tables, the threads=4 evaluation dispatched parallel morsels, and the
    // non-canonical top-k buffered a bounded heap.
    assert!(
        metrics
            .value("trial_eval_hash_tables_built_total", &[])
            .unwrap()
            >= 1.0
    );
    assert!(
        metrics
            .value("trial_eval_parallel_morsels_total", &[])
            .unwrap()
            >= 1.0
    );
    let peak = metrics.value("trial_eval_topk_buffered_peak", &[]).unwrap();
    assert!((1.0..=5.0).contains(&peak), "topk peak {peak}");

    // Per-endpoint request counters and latency histograms.
    assert!(
        metrics
            .value(
                "trial_requests_total",
                &[("endpoint", "query"), ("status", "2xx")]
            )
            .unwrap()
            >= 4.0
    );
    assert!(
        metrics
            .value(
                "trial_requests_total",
                &[("endpoint", "query"), ("status", "4xx")]
            )
            .unwrap()
            >= 1.0
    );
    assert!(
        metrics
            .value("trial_request_duration_us_count", &[("endpoint", "query")])
            .unwrap()
            >= 5.0
    );

    // Phase histograms: every fresh query parsed and evaluated.
    for phase in ["parse", "eval", "serialize"] {
        assert!(
            metrics
                .value("trial_phase_duration_us_count", &[("phase", phase)])
                .unwrap_or(0.0)
                >= 1.0,
            "no {phase} phase samples"
        );
    }

    // The parse failure landed in the structured error counter and rows
    // were recorded for the successful queries.
    assert!(metrics.sum("trial_errors_total") >= 1.0);
    assert!(
        metrics
            .value("trial_query_rows_returned_count", &[])
            .unwrap()
            >= 1.0
    );

    server.shutdown();
}

#[test]
fn healthz_and_metrics_read_the_same_counters() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(200)).unwrap();
    client::post(addr, "/load?store=other", &chain_doc(10)).unwrap();

    // Mixed traffic: fresh evaluations, exact-key and prefix cache hits,
    // a streamed response.
    let query = "SELECT[1!=3](E)";
    client::post(addr, "/query?store=chain&order=spo&limit=50", query).unwrap();
    client::post(addr, "/query?store=chain&order=spo&limit=50", query).unwrap(); // exact hit
    client::post(addr, "/query?store=chain&order=spo&limit=10", query).unwrap(); // prefix hit
    client::post(addr, "/query?store=other&stream=1", "E").unwrap();
    client::post(addr, "/query?store=other&threads=4", "E").unwrap();

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let metrics = scrape(&server);

    // Every counter /healthz reports must be the value /metrics renders —
    // both read the same registry-owned atomics and the same cache and
    // admission structs, so after identical traffic they cannot differ.
    for (healthz_field, metric) in [
        ("queries_served", "trial_queries_served_total"),
        ("loads_completed", "trial_loads_completed_total"),
        ("queries_parallel", "trial_queries_parallel_total"),
        ("queries_sequential", "trial_queries_sequential_total"),
        ("queries_streamed", "trial_queries_streamed_total"),
        ("hits", "trial_cache_hits_total"),
        ("misses", "trial_cache_misses_total"),
        ("entries", "trial_cache_entries"),
        ("capacity", "trial_cache_capacity"),
        ("hits_prefix", "trial_prefix_cache_hits_total"),
        ("prefix_entries", "trial_prefix_cache_entries"),
        ("admitted", "trial_admission_admitted_total"),
        ("rejected", "trial_admission_rejected_total"),
        ("in_flight", "trial_admission_in_flight"),
        ("waiting", "trial_admission_waiting"),
        ("permits", "trial_admission_permits"),
        ("stores", "trial_stores"),
    ] {
        assert_eq!(
            json_u64(&health.body, healthz_field) as f64,
            metrics
                .value(metric, &[])
                .unwrap_or_else(|| panic!("no {metric}")),
            "/healthz `{healthz_field}` vs /metrics `{metric}`"
        );
    }

    server.shutdown();
}

#[test]
fn request_ids_are_accepted_and_echoed_on_both_framings() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(20)).unwrap();

    // A well-formed client ID is echoed verbatim on a buffered response.
    let tagged = client::request_with(
        addr,
        "POST",
        "/query?store=chain",
        "E",
        &[("X-Request-Id", "deploy-42.a_b")],
    )
    .unwrap();
    assert_eq!(tagged.status, 200, "{}", tagged.body);
    assert_eq!(tagged.header("X-Request-Id"), Some("deploy-42.a_b"));

    // ... and on a chunked streamed response, ahead of the body.
    let streamed = client::request_with(
        addr,
        "POST",
        "/query?store=chain&stream=1",
        "E",
        &[("X-Request-Id", "page-7")],
    )
    .unwrap();
    assert!(streamed.chunked);
    assert_eq!(streamed.header("X-Request-Id"), Some("page-7"));

    // Errors carry the ID too (this response never ran a query).
    let error = client::request_with(
        addr,
        "POST",
        "/query?store=nope",
        "E",
        &[("X-Request-Id", "err-1")],
    )
    .unwrap();
    assert_eq!(error.status, 404);
    assert_eq!(error.header("X-Request-Id"), Some("err-1"));

    // Without a client ID the server generates one.
    let fresh = client::post(addr, "/query?store=chain", "E").unwrap();
    let generated = fresh.header("X-Request-Id").expect("generated ID");
    assert!(!generated.is_empty());

    // Malformed IDs (bad characters / oversized) are replaced, not echoed —
    // the header is part of the server's own response surface.
    let bad = client::request_with(
        addr,
        "POST",
        "/query?store=chain",
        "E",
        &[("X-Request-Id", "no spaces allowed")],
    )
    .unwrap();
    let echoed = bad.header("X-Request-Id").expect("replacement ID");
    assert_ne!(echoed, "no spaces allowed");

    // The client IDs key the spans in the flight recorder.
    let slow = client::get(addr, "/debug/slow").unwrap();
    assert!(
        slow.body.contains("\"request_id\":\"deploy-42.a_b\""),
        "{}",
        slow.body
    );
    assert!(
        slow.body.contains("\"request_id\":\"page-7\""),
        "{}",
        slow.body
    );
    assert!(
        slow.body.contains("\"request_id\":\"err-1\""),
        "{}",
        slow.body
    );

    server.shutdown();
}

#[test]
fn explain_analyze_reports_per_node_timings() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(100)).unwrap();

    // Filtered sides force a hash join — a breaker, so the analyzed tree
    // reports a build time alongside the per-node elapsed time.
    let analyzed = client::post(
        addr,
        "/explain?store=chain&analyze=1",
        "(SELECT[1!=3](E) JOIN[1,2,3' | 3=1'] SELECT[1!=3](E))",
    )
    .unwrap();
    assert_eq!(analyzed.status, 200, "{}", analyzed.body);
    // Every tree node carries elapsed_us next to est/actual; the hash join
    // is a breaker, so at least one node reports a build time too.
    assert!(
        analyzed.body.contains("\"elapsed_us\":"),
        "{}",
        analyzed.body
    );
    assert!(analyzed.body.contains("\"actual\":"), "{}", analyzed.body);
    assert!(analyzed.body.contains("\"build_us\":"), "{}", analyzed.body);

    // The plain explain plans without running: no timings in its tree (the
    // response envelope's own top-level elapsed_us is not node timing).
    let plain = client::post(addr, "/explain?store=chain", "E").unwrap();
    assert_eq!(plain.status, 200);
    let tree = plain.body.split("\"tree\":").nth(1).expect("tree field");
    assert!(!tree.contains("\"elapsed_us\":"), "{tree}");

    server.shutdown();
}

#[test]
fn spans_are_complete_and_non_interleaved_under_concurrency() {
    // Cache off so every request is a fresh, profiled evaluation; a large
    // recorder so all of them are retained; stride-1 profiling so every
    // span carries per-node timings.
    let mut config = ServerConfig {
        cache_capacity: 0,
        flight_slots: 64,
        ..ServerConfig::default()
    };
    config.eval.profile_sample = 1;
    let server = Server::spawn(config).unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(500)).unwrap();

    // Three client threads — eval degrees 1, 2 and 4 — each issuing tagged
    // buffered and streamed requests over one keep-alive connection.
    const QUERIES: &[&str] = &["E", "SELECT[1!=3](E)", "(E JOIN[1,2,3' | 3=1'] E)"];
    let mut expected: Vec<(String, &'static str, bool)> = Vec::new();
    let mut handles = Vec::new();
    for threads in [1_usize, 2, 4] {
        let mut plan: Vec<(String, &'static str, bool, String)> = Vec::new();
        for (i, query) in QUERIES.iter().enumerate() {
            let streamed = i % 2 == 1;
            let id = format!("w{threads}-{i}");
            let stream = if streamed { "&stream=1" } else { "" };
            let path = format!("/query?store=chain&threads={threads}&limit=400{stream}");
            expected.push((id.clone(), query, streamed));
            plan.push((id, query, streamed, path));
        }
        handles.push(std::thread::spawn(move || {
            let mut http = HttpClient::new(addr);
            for (id, query, _, path) in plan {
                let response = http
                    .request_with("POST", &path, query, &[("X-Request-Id", &id)])
                    .unwrap();
                assert_eq!(response.status, 200, "{id}: {}", response.body);
                assert_eq!(response.header("X-Request-Id"), Some(id.as_str()));
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    let slow = client::get(addr, "/debug/slow").unwrap();
    assert_eq!(slow.status, 200);
    let body = &slow.body;

    // Every request produced exactly one retained span, and each span's
    // fields belong to its own request — concurrent tracing never
    // interleaves records.
    for (id, query, streamed) in &expected {
        let needle = format!("\"request_id\":\"{id}\"");
        let at = body
            .find(&needle)
            .unwrap_or_else(|| panic!("no span for {id}"));
        assert!(
            body[at + needle.len()..].find(&needle).is_none(),
            "duplicate span for {id}"
        );
        let end = body[at + needle.len()..]
            .find("\"request_id\":")
            .map_or(body.len(), |next| at + needle.len() + next);
        let span = &body[at..end];
        assert!(
            span.contains(&format!("\"query\":\"{query}\"")),
            "{id}: {span}"
        );
        assert!(span.contains("\"store\":\"chain\""), "{id}: {span}");
        assert!(span.contains("\"status\":200"), "{id}: {span}");
        assert!(
            span.contains(&format!("\"streamed\":{streamed}")),
            "{id}: {span}"
        );
        // The phase breakdown is complete for a fresh evaluation...
        for phase in ["parse_us", "plan_us", "admission_us", "eval_us"] {
            assert!(span.contains(phase), "{id} missing {phase}: {span}");
        }
        // ... and stride-1 profiling attached per-node timings and the plan.
        assert!(span.contains("\"profile_stride\":1"), "{id}: {span}");
        assert!(span.contains("\"elapsed_us\":"), "{id}: {span}");
        assert!(span.contains("\"plan\":\""), "{id}: {span}");
    }

    server.shutdown();
}

#[test]
fn errored_and_shed_requests_always_reach_the_flight_recorder() {
    let server = Server::spawn(ServerConfig {
        admission_permits: 1,
        admission_max_waiters: 0,
        admission_wait: Duration::from_millis(50),
        flight_slots: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(50)).unwrap();
    let mut http = HttpClient::new(addr);

    // Mint a cursor, then trigger each structured failure: malformed token,
    // stale epoch, saturation.
    let page = http
        .post("/query?store=chain&order=spo&limit=10&stream=1", "E")
        .unwrap();
    let token = page.trailer("X-Trial-Cursor").expect("cursor").to_owned();

    let bad = http.post("/query?store=chain&cursor=@@!", "E").unwrap();
    assert_eq!(bad.status, 400);

    client::post(addr, "/load?store=chain", "<x> <next> <y> .\n").unwrap();
    let stale = http
        .post(&format!("/query?store=chain&cursor={token}"), "E")
        .unwrap();
    assert_eq!(stale.status, 410);

    let held = server.admission().acquire("chain").unwrap();
    let shed = http.post("/query?store=chain&limit=49", "E").unwrap();
    assert_eq!(shed.status, 429, "{}", shed.body);
    drop(held);

    // Every failure is in the error ring with its structured kind — these
    // responses were fast, so a slowest-only recorder would have lost them.
    let slow = http.get("/debug/slow").unwrap();
    assert_eq!(slow.status, 200);
    let errors = slow.body.split("\"errors\":").nth(1).expect("errors list");
    for (kind, status) in [
        ("bad_cursor", 400),
        ("stale_cursor", 410),
        ("saturated", 429),
    ] {
        assert!(
            errors.contains(&format!("\"error\":\"{kind}\"")),
            "missing {kind}: {errors}"
        );
        assert!(
            errors.contains(&format!("\"status\":{status}")),
            "missing status {status}: {errors}"
        );
    }

    // The shed request also shows up on the metric surface.
    let metrics = scrape(&server);
    assert!(metrics.value("trial_queries_shed_total", &[]).unwrap() >= 1.0);
    assert!(
        metrics
            .value("trial_errors_total", &[("kind", "saturated")])
            .unwrap()
            >= 1.0
    );

    server.shutdown();
}

#[test]
fn no_obs_keeps_counters_live_but_records_no_spans() {
    let server = Server::spawn(ServerConfig {
        observe: false,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(20)).unwrap();

    let response = client::request_with(
        addr,
        "POST",
        "/query?store=chain",
        "E",
        &[("X-Request-Id", "quiet-1")],
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    // Request IDs are part of the response contract, not the tracing layer.
    assert_eq!(response.header("X-Request-Id"), Some("quiet-1"));

    // Service counters stay live...
    let metrics = scrape(&server);
    assert!(metrics.value("trial_queries_served_total", &[]).unwrap() >= 1.0);
    assert_eq!(metrics.value("trial_loads_completed_total", &[]), Some(1.0));
    // ... but no latency samples and no spans are recorded.
    assert_eq!(metrics.sum("trial_request_duration_us_count"), 0.0);
    let slow = client::get(addr, "/debug/slow").unwrap();
    assert!(slow.body.contains("\"observe\":false"), "{}", slow.body);
    assert!(slow.body.contains("\"slow\":[]"), "{}", slow.body);
    assert!(slow.body.contains("\"errors\":[]"), "{}", slow.body);

    server.shutdown();
}
