//! End-to-end tests for the adaptive planning loop: `/explain?analyze=1`
//! feeds per-store observed cardinalities, later plans report
//! `est_src: stats`, `?nostats=1` opts out, `/load` atomically invalidates
//! the statistics with the epoch bump, and `/metrics` exposes the feedback
//! counters.

use trial_server::client;
use trial_server::Server;

/// Extracts the integer value of `"field":N` from a flat JSON rendering.
fn json_u64(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no `{needle}` in `{body}`"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric `{needle}` in `{body}`"))
}

/// The value of a Prometheus sample line `name 42` (no labels).
fn metric(body: &str, name: &str) -> f64 {
    body.lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("no `{name}` sample in exposition"))
        .trim()
        .parse()
        .unwrap()
}

/// A skewed N-Triples document: 200 `hot` edges, 4 `rare` edges.
fn skewed_doc() -> String {
    let mut doc = String::new();
    for i in 0..200 {
        doc.push_str(&format!("<n{i}> <hot> <n{}> .\n", i + 1));
    }
    for i in 0..4 {
        doc.push_str(&format!("<r{i}> <rare> <n{}> .\n", i * 9));
    }
    doc
}

#[test]
fn analyze_feeds_stats_and_later_explains_report_them() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=skew", &skewed_doc()).unwrap();
    let query = "(SELECT[2='rare'](E) JOIN[1,2,3' | 3=1'] SELECT[2='hot'](E))";

    // Cold: every estimate is heuristic, and the analyze run itself reports
    // so honestly (its plan was built before any feedback existed).
    let cold = client::post(addr, "/explain?store=skew&analyze=1", query).unwrap();
    assert!(cold.is_ok(), "{}", cold.body);
    assert!(
        cold.body.contains("\"est_src\":\"heuristic\""),
        "{}",
        cold.body
    );
    assert!(
        !cold.body.contains("\"est_src\":\"stats\""),
        "{}",
        cold.body
    );
    assert!(cold.body.contains("\"actual\":"), "{}", cold.body);

    // Warm: the next explain draws on the observed cardinalities.
    let warm = client::post(addr, "/explain?store=skew", query).unwrap();
    assert!(warm.body.contains("\"est_src\":\"stats\""), "{}", warm.body);

    // ?nostats=1 is the escape hatch back to pure heuristics — a distinct
    // cache entry from the stats-fed fragment.
    let opted_out = client::post(addr, "/explain?store=skew&nostats=1", query).unwrap();
    assert!(
        !opted_out.body.contains("\"est_src\":\"stats\""),
        "{}",
        opted_out.body
    );
    assert!(
        opted_out.body.contains("\"est_src\":\"heuristic\""),
        "{}",
        opted_out.body
    );

    // Adaptive and heuristic plans answer identically.
    let with_stats = client::post(addr, "/query?store=skew", query).unwrap();
    let without = client::post(addr, "/query?store=skew&nostats=1", query).unwrap();
    assert_eq!(
        json_u64(&with_stats.body, "count"),
        json_u64(&without.body, "count")
    );

    // The feedback loop is on the metric surface.
    let metrics = client::get(addr, "/metrics").unwrap().body;
    assert!(metric(&metrics, "trial_planner_stats_entries") >= 1.0);
    assert!(metric(&metrics, "trial_planner_replans_total") >= 1.0);
    assert!(metric(&metrics, "trial_planner_stats_observations_total") >= 1.0);
    assert!(metric(&metrics, "trial_planner_est_error_pct_count") >= 1.0);

    server.shutdown();
}

#[test]
fn load_invalidates_stats_with_the_epoch_bump() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=skew", &skewed_doc()).unwrap();
    let query = "(SELECT[2='rare'](E) JOIN[1,2,3' | 3=1'] SELECT[2='hot'](E))";

    // Warm the statistics, confirm they are visible.
    client::post(addr, "/explain?store=skew&analyze=1", query).unwrap();
    let warm = client::post(addr, "/explain?store=skew", query).unwrap();
    assert!(warm.body.contains("\"est_src\":\"stats\""), "{}", warm.body);
    let metrics = client::get(addr, "/metrics").unwrap().body;
    assert!(metric(&metrics, "trial_planner_stats_entries") >= 1.0);

    // Reload the store: the data changed, so every observed cardinality
    // (and every ObjectId baked into a fingerprint) is invalid.
    let reload = client::post(addr, "/load?store=skew", &skewed_doc()).unwrap();
    assert_eq!(json_u64(&reload.body, "epoch"), 2);
    let metrics = client::get(addr, "/metrics").unwrap().body;
    assert_eq!(metric(&metrics, "trial_planner_stats_entries"), 0.0);

    // Post-reload plans are heuristic until a fresh analyze feeds the new
    // epoch's table.
    let cold = client::post(addr, "/explain?store=skew", query).unwrap();
    assert!(
        !cold.body.contains("\"est_src\":\"stats\""),
        "{}",
        cold.body
    );
    assert!(
        cold.body.contains("\"est_src\":\"heuristic\""),
        "{}",
        cold.body
    );

    server.shutdown();
}
