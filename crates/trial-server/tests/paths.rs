//! Integration tests for the `/path` endpoint: regular path queries over
//! real sockets. Strategy parity (`?algo=auto|nfa|lower` return identical
//! row sets), resolved-strategy observability through `/explain?path=1`,
//! delivery knobs (limit/order/topk/stream/cursor) matching `/query`
//! semantics, cache namespacing, the structured knob errors — and the two
//! HTTP-layer bugfixes riding along in this change: store names containing
//! a literal `+` survive path/query decoding end to end, and `?order=` is
//! case-insensitive with an `accepted` list in the failure body.

use trial_server::client::{self, HttpClient, HttpResponse};
use trial_server::Server;

/// Extracts the integer value of `"field":N` from a flat JSON rendering.
fn json_u64(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no `{needle}` in `{body}`"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric `{needle}` in `{body}`"))
}

/// The rendered `"triples":[...]` array of a buffered response.
fn buffered_triples(body: &str) -> &str {
    let start = body.find("\"triples\":").expect("triples field") + "\"triples\":".len();
    let end = body[start..]
        .find(",\"stats\"")
        .expect("stats after triples")
        + start;
    &body[start..end]
}

/// The rendered `"triples":[...]` array of a streamed response (last field
/// of the body object; count arrives as a trailer).
fn streamed_triples(body: &str) -> &str {
    let start = body.find("\"triples\":").expect("triples field") + "\"triples\":".len();
    assert!(body.ends_with('}'), "unterminated streamed body: {body}");
    &body[start..body.len() - 1]
}

/// An N-Triples chain whose edge labels alternate `a`, `b`, `a`, `b`, …
fn labeled_chain_doc(n: usize) -> String {
    let mut doc = String::new();
    for i in 0..n {
        let label = if i % 2 == 0 { "a" } else { "b" };
        doc.push_str(&format!("<n{i}> <{label}> <n{}> .\n", i + 1));
    }
    doc
}

fn ok(response: HttpResponse) -> HttpResponse {
    assert_eq!(response.status, 200, "{}", response.body);
    response
}

#[test]
fn path_strategies_agree_and_bounds_bound() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &labeled_chain_doc(40)).unwrap();
    let mut http = HttpClient::new(addr);

    // Every strategy returns the same rows for the same expression — the
    // NFA walk, the TriAL lowering, and whatever `auto` picks.
    for path in [
        "a",
        "a/b",
        "a/b/a/b",
        "(a|b)/(a|b)",
        "a?/b",
        "(a/b)*",
        "(a|b)+",
    ] {
        let auto = ok(http.post("/path?store=chain&order=spo", path).unwrap());
        let nfa = ok(http
            .post("/path?store=chain&order=spo&algo=nfa", path)
            .unwrap());
        let lower = ok(http
            .post("/path?store=chain&order=spo&algo=lower", path)
            .unwrap());
        assert_eq!(
            buffered_triples(&auto.body),
            buffered_triples(&nfa.body),
            "auto/nfa divergence for `{path}`"
        );
        assert_eq!(
            buffered_triples(&auto.body),
            buffered_triples(&lower.body),
            "auto/lower divergence for `{path}`"
        );
    }

    // `(a|b)+` over the 40-edge chain: all 820 ordered pairs, and with
    // `?max_hops=3` exactly the pairs at walk distance 1..=3
    // (40 + 39 + 38 = 117).
    let full = ok(http.post("/path?store=chain", "(a|b)+").unwrap());
    assert_eq!(json_u64(&full.body, "count"), 820);
    let bounded = ok(http.post("/path?store=chain&max_hops=3", "(a|b)+").unwrap());
    assert_eq!(json_u64(&bounded.body, "count"), 117);

    server.shutdown();
}

#[test]
fn path_explain_reports_the_resolved_strategy() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &labeled_chain_doc(10)).unwrap();
    let mut http = HttpClient::new(addr);

    // A concatenation resolves to the lowering: the explain head says so
    // and the plan is a join tree, not a walk.
    let seq = ok(http.post("/explain?store=chain&path=1", "a/b").unwrap());
    assert!(seq.body.contains("\"algo\":\"lower\""), "{}", seq.body);
    assert!(seq.body.contains("\"relation\":\"E\""), "{}", seq.body);
    assert!(seq.body.contains("Join"), "{}", seq.body);
    assert!(!seq.body.contains("PathNfa"), "{}", seq.body);

    // A closure resolves to the NFA product walk.
    let star = ok(http.post("/explain?store=chain&path=1", "(a/b)*").unwrap());
    assert!(star.body.contains("\"algo\":\"nfa\""), "{}", star.body);
    assert!(star.body.contains("PathNfa"), "{}", star.body);

    // A hop bound forces the walk even on a closure-free expression…
    let bounded = ok(http
        .post("/explain?store=chain&path=1&max_hops=3", "a/b")
        .unwrap());
    assert!(
        bounded.body.contains("\"algo\":\"nfa\""),
        "{}",
        bounded.body
    );
    assert!(bounded.body.contains("\"max_hops\":3"), "{}", bounded.body);
    // …and so does asking for it explicitly.
    let forced = ok(http
        .post("/explain?store=chain&path=1&algo=nfa", "a/b")
        .unwrap());
    assert!(forced.body.contains("\"algo\":\"nfa\""), "{}", forced.body);

    server.shutdown();
}

#[test]
fn path_knob_errors_are_structured() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &labeled_chain_doc(4)).unwrap();
    let mut http = HttpClient::new(addr);

    let bad_algo = http.post("/path?store=chain&algo=bogus", "a").unwrap();
    assert_eq!(bad_algo.status, 400, "{}", bad_algo.body);
    assert!(
        bad_algo.body.contains("expected auto, nfa or lower"),
        "{}",
        bad_algo.body
    );

    let bad_hops = http.post("/path?store=chain&max_hops=lots", "a").unwrap();
    assert_eq!(bad_hops.status, 400, "{}", bad_hops.body);

    // The lowering runs full closures; it cannot honour a hop budget.
    let conflict = http
        .post("/path?store=chain&algo=lower&max_hops=2", "a")
        .unwrap();
    assert_eq!(conflict.status, 400, "{}", conflict.body);
    assert!(conflict.body.contains("cannot honour"), "{}", conflict.body);

    // An unparsable path expression is a structured parse error.
    let bad_path = http.post("/path?store=chain", "a//b").unwrap();
    assert_eq!(bad_path.status, 400, "{}", bad_path.body);
    assert!(bad_path.body.contains("\"kind\""), "{}", bad_path.body);

    server.shutdown();
}

#[test]
fn order_values_are_case_insensitive_with_accepted_list_on_failure() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &labeled_chain_doc(6)).unwrap();
    let mut http = HttpClient::new(addr);

    // Any casing of a valid permutation is accepted and echoed lowercase,
    // on /query and /path alike.
    for (endpoint, body) in [("/query", "E"), ("/path", "a")] {
        for raw in ["SPO", "sPo", "POS", "Osp"] {
            let response = ok(http
                .post(&format!("{endpoint}?store=chain&order={raw}"), body)
                .unwrap());
            let echoed = format!("\"order\":\"{}\"", raw.to_ascii_lowercase());
            assert!(response.body.contains(&echoed), "{}", response.body);
        }
    }

    // A genuinely unparsable value fails with the accepted list spelled out.
    let bad = http.post("/query?store=chain&order=sop", "E").unwrap();
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert!(
        bad.body.contains("\"accepted\":[\"spo\",\"pos\",\"osp\"]"),
        "{}",
        bad.body
    );
    assert!(bad.body.contains("`sop`"), "{}", bad.body);

    server.shutdown();
}

#[test]
fn path_streams_and_pages_like_query() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &labeled_chain_doc(60)).unwrap();
    let mut http = HttpClient::new(addr);

    // Streamed rows are byte-identical to the buffered rendering.
    let buffered = ok(http.post("/path?store=chain&order=spo", "(a|b)+").unwrap());
    let streamed = http
        .post("/path?store=chain&order=spo&stream=1", "(a|b)+")
        .unwrap();
    assert_eq!(streamed.status, 200, "{}", streamed.body);
    assert!(streamed.chunked, "streamed /path response was not chunked");
    assert_eq!(
        streamed_triples(&streamed.body),
        buffered_triples(&buffered.body)
    );
    let count: u64 = streamed
        .trailer("X-Trial-Count")
        .expect("count trailer")
        .parse()
        .unwrap();
    assert_eq!(count, json_u64(&buffered.body, "count"));

    // Cursor pages concatenate to the full ordered result.
    let full_rows = buffered_triples(&buffered.body);
    let full_rows = &full_rows[1..full_rows.len() - 1]; // strip [ ]
    let mut collected = String::new();
    let mut cursor: Option<String> = None;
    let mut pages = 0;
    loop {
        let path = match &cursor {
            None => "/path?store=chain&order=spo&limit=700&stream=1".to_owned(),
            Some(token) => format!("/path?store=chain&limit=700&cursor={token}"),
        };
        let page = http.post(&path, "(a|b)+").unwrap();
        assert_eq!(page.status, 200, "{}", page.body);
        pages += 1;
        let rows = streamed_triples(&page.body);
        let rows = &rows[1..rows.len() - 1];
        if !rows.is_empty() {
            if !collected.is_empty() {
                collected.push(',');
            }
            collected.push_str(rows);
        }
        match page.trailer("X-Trial-Cursor") {
            Some(token) => cursor = Some(token.to_owned()),
            None => break,
        }
        assert!(pages < 20, "cursor loop did not terminate");
    }
    assert!(pages > 1, "limit never paged");
    assert_eq!(collected, full_rows, "pages diverge from the full result");

    server.shutdown();
}

#[test]
fn path_cache_keys_are_namespaced_by_knobs_and_epoch() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &labeled_chain_doc(8)).unwrap();
    let mut http = HttpClient::new(addr);

    let first = ok(http.post("/path?store=chain", "a/b").unwrap());
    assert!(first.body.contains("\"cached\":false"), "{}", first.body);
    let repeat = ok(http.post("/path?store=chain", "a/b").unwrap());
    assert!(repeat.body.contains("\"cached\":true"), "{}", repeat.body);

    // A different strategy or hop bound is a different fragment.
    let other_algo = ok(http.post("/path?store=chain&algo=nfa", "a/b").unwrap());
    assert!(
        other_algo.body.contains("\"cached\":false"),
        "{}",
        other_algo.body
    );
    let bounded = ok(http.post("/path?store=chain&max_hops=2", "a/b").unwrap());
    assert!(
        bounded.body.contains("\"cached\":false"),
        "{}",
        bounded.body
    );

    // Reloading the store bumps the epoch and invalidates path fragments.
    client::post(addr, "/load?store=chain", &labeled_chain_doc(8)).unwrap();
    let after_bump = ok(http.post("/path?store=chain", "a/b").unwrap());
    assert!(
        after_bump.body.contains("\"cached\":false"),
        "{}",
        after_bump.body
    );

    server.shutdown();
}

#[test]
fn store_names_with_literal_plus_survive_decoding() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();

    // `%2B` names the store `a+b`; a bare `+` in the query string still
    // decodes to a space, so `store=a+b` would mean `a b`.
    let load = client::post(addr, "/load?store=a%2Bb", &labeled_chain_doc(4)).unwrap();
    assert_eq!(load.status, 200, "{}", load.body);
    assert!(load.body.contains("\"store\":\"a+b\""), "{}", load.body);

    let listed = client::get(addr, "/stores").unwrap();
    assert!(listed.body.contains("\"name\":\"a+b\""), "{}", listed.body);

    let queried = client::post(addr, "/query?store=a%2Bb", "E").unwrap();
    assert_eq!(queried.status, 200, "{}", queried.body);
    assert_eq!(json_u64(&queried.body, "count"), 4);
    let pathed = client::post(addr, "/path?store=a%2Bb", "a/b").unwrap();
    assert_eq!(pathed.status, 200, "{}", pathed.body);

    // The space-named store does not exist.
    let spaced = client::post(addr, "/query?store=a+b", "E").unwrap();
    assert_eq!(spaced.status, 404, "{}", spaced.body);
    assert!(spaced.body.contains("unknown_store"), "{}", spaced.body);
    assert!(spaced.body.contains("`a b`"), "{}", spaced.body);

    server.shutdown();
}
