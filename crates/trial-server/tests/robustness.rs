//! Deadline, cancellation and graceful-shutdown behaviour of the serving
//! path: `?timeout_ms=` (and the server default) turns runaway evaluations
//! into structured `408 deadline_exceeded` responses that release their
//! admission permit promptly and never seed the caches; a deadline that
//! fires mid-stream names itself in an `X-Trial-Error` trailer; and
//! `Server::drain` refuses new work, cancels stragglers with reason
//! `shutdown`, and flushes the flight recorder.

use std::time::{Duration, Instant};
use trial_server::client::{self, HttpClient};
use trial_server::{Server, ServerConfig};

/// A transitive closure big enough that evaluation takes seconds in debug
/// builds — the deadline always fires long before it finishes. Cancellation
/// is checked every fixpoint round (milliseconds apart on a chain), so the
/// release-latency assertions are meaningful, not lucky.
const SLOW_QUERY: &str = "STAR(E JOIN[1,2,3' | 3=1'])";

/// An N-Triples chain `<n0> <next> <n1> . … <n{n-1}> <next> <n{n}> .`.
fn chain_doc(n: usize) -> String {
    let mut doc = String::new();
    for i in 0..n {
        doc.push_str(&format!("<n{i}> <next> <n{}> .\n", i + 1));
    }
    doc
}

/// Extracts the integer value of `"field":N` from a flat JSON rendering.
fn json_u64(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no `{needle}` in `{body}`"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric `{needle}` in `{body}`"))
}

/// The value of a counter family in the `/metrics` exposition (0 when the
/// family has no sample yet).
fn metric_value(addr: std::net::SocketAddr, family: &str) -> f64 {
    let text = client::get(addr, "/metrics").unwrap().body;
    text.lines()
        .find(|l| l.starts_with(family) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

#[test]
fn timeout_ms_yields_structured_408_and_counts_on_metrics() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(2000)).unwrap();

    let response = client::post(addr, "/query?store=chain&timeout_ms=200", SLOW_QUERY).unwrap();
    assert_eq!(response.status, 408, "{}", response.body);
    assert!(
        response.body.contains("\"kind\":\"deadline_exceeded\""),
        "{}",
        response.body
    );

    // The cancelled evaluation released its permit: nothing is in flight.
    let healthz = client::get(addr, "/healthz").unwrap().body;
    assert_eq!(json_u64(&healthz, "in_flight"), 0, "{healthz}");

    // The timeout counter saw it; the shutdown/disconnect counter did not.
    assert!(metric_value(addr, "trial_queries_timeout_total") >= 1.0);
    assert_eq!(metric_value(addr, "trial_queries_cancelled_total"), 0.0);
    server.shutdown();
}

#[test]
fn deadline_releases_the_permit_within_50ms() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(2000)).unwrap();

    let deadline = Duration::from_millis(300);
    let started = Instant::now();
    let response = client::post(addr, "/query?store=chain&timeout_ms=300", SLOW_QUERY).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(response.status, 408, "{}", response.body);
    // The whole request — deadline firing, unwinding the cursor tree,
    // rendering the 408 — completes within 50 ms of the deadline, and the
    // admission permit is already free when the response is readable.
    assert!(
        elapsed >= deadline,
        "finished before its deadline: {elapsed:?}"
    );
    assert!(
        elapsed <= deadline + Duration::from_millis(50),
        "released {:?} after the deadline (budget 50ms)",
        elapsed - deadline
    );
    let healthz = client::get(addr, "/healthz").unwrap().body;
    assert_eq!(json_u64(&healthz, "in_flight"), 0, "{healthz}");
    server.shutdown();
}

#[test]
fn server_default_timeout_applies_and_zero_opts_out() {
    let server = Server::spawn(ServerConfig {
        port: 0,
        default_timeout: Some(Duration::from_millis(150)),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(2000)).unwrap();

    // No per-request knob: the server default cancels the slow query.
    let response = client::post(addr, "/query?store=chain", SLOW_QUERY).unwrap();
    assert_eq!(response.status, 408, "{}", response.body);

    // Fast queries fit comfortably inside the default.
    let response = client::post(addr, "/query?store=chain&limit=5", "E").unwrap();
    assert_eq!(response.status, 200, "{}", response.body);

    // ?timeout_ms=0 opts out entirely: the slow query runs to completion.
    let response =
        client::post(addr, "/query?store=chain&timeout_ms=0&limit=5", SLOW_QUERY).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    server.shutdown();
}

#[test]
fn cancelled_queries_never_seed_the_caches() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(800)).unwrap();

    // Cancelled buffered evaluation (plain and ordered): both 408.
    let r = client::post(addr, "/query?store=chain&timeout_ms=60", SLOW_QUERY).unwrap();
    assert_eq!(r.status, 408, "{}", r.body);
    let r = client::post(
        addr,
        "/query?store=chain&timeout_ms=60&order=spo&limit=100",
        SLOW_QUERY,
    )
    .unwrap();
    assert_eq!(r.status, 408, "{}", r.body);

    // The same queries re-run without a deadline are fresh evaluations —
    // a cancelled partial result must not have been cached under the same
    // key (`timeout_ms` is deliberately NOT part of the cache key) — and
    // they complete with the full answer.
    let r = client::post(addr, "/query?store=chain&limit=5", SLOW_QUERY).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"cached\":false"), "{}", r.body);
    let r = client::post(addr, "/query?store=chain&order=spo&limit=100", SLOW_QUERY).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert!(r.body.contains("\"cached\":false"), "{}", r.body);
    assert_eq!(json_u64(&r.body, "count"), 100);
    server.shutdown();
}

#[test]
fn streamed_deadline_names_itself_in_the_error_trailer() {
    // A 2 ms injected stall per streamed row: slow enough that a 300 ms
    // deadline reliably fires while rows are on the wire, fast enough that
    // the release-latency budget still means something.
    let server = Server::spawn(ServerConfig {
        port: 0,
        chaos: Some("stream.slow=slow2".to_owned()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // A deadline that fires while the closure is still being planned and
    // materialized — before any byte is on the wire — still gets an
    // ordinary buffered 408, not a doomed chunked stream.
    client::post(addr, "/load?store=big", &chain_doc(2000)).unwrap();
    let response =
        client::post(addr, "/query?store=big&stream=1&timeout_ms=300", SLOW_QUERY).unwrap();
    assert_eq!(response.status, 408, "{}", response.body);
    assert!(
        response.body.contains("\"kind\":\"deadline_exceeded\""),
        "{}",
        response.body
    );

    // A small closure clears planning quickly, so the 200 head is flushed
    // and rows are dripping when the deadline fires: the status can't carry
    // the failure any more — the trailer does, and the stream is still a
    // complete, well-formed chunked response.
    client::post(addr, "/load?store=chain", &chain_doc(150)).unwrap();
    let started = Instant::now();
    let response = client::post(
        addr,
        "/query?store=chain&stream=1&timeout_ms=300&limit=50000",
        SLOW_QUERY,
    )
    .unwrap();
    let elapsed = started.elapsed();
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.chunked);
    assert_eq!(
        response.trailer("X-Trial-Error"),
        Some("deadline_exceeded"),
        "trailers: {:?}",
        response.trailers
    );
    assert_eq!(response.trailer("X-Trial-Truncated"), Some("true"));
    // Some rows made it out before the deadline cut the stream short.
    let count: u64 = response.trailer("X-Trial-Count").unwrap().parse().unwrap();
    assert!(count > 0);
    // A cancelled position is not a trustworthy resume point.
    assert!(response.trailer("X-Trial-Cursor").is_none());

    // Worker, permit and exchange lanes released within 50 ms of the
    // deadline (the client has the trailers, so the stream is fully over).
    assert!(
        elapsed <= Duration::from_millis(300 + 50),
        "stream released {:?} after its 300ms deadline",
        elapsed
    );
    let healthz = client::get(addr, "/healthz").unwrap().body;
    assert_eq!(json_u64(&healthz, "in_flight"), 0, "{healthz}");
    assert!(metric_value(addr, "trial_queries_timeout_total") >= 2.0);
    server.shutdown();
}

#[test]
fn drain_finishes_in_flight_work_and_refuses_new_requests() {
    let server = Server::spawn(ServerConfig {
        port: 0,
        drain_grace: Duration::from_millis(400),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(2000)).unwrap();

    // A slow query with no deadline of its own: only drain can stop it.
    let slow =
        std::thread::spawn(move || client::post(addr, "/query?store=chain", SLOW_QUERY).unwrap());
    // An established keep-alive connection that outlives the accept loop.
    let mut keepalive = HttpClient::new(addr);
    assert_eq!(keepalive.get("/healthz").unwrap().status, 200);
    // Let the slow query reach its evaluation loop.
    std::thread::sleep(Duration::from_millis(150));

    let drained = std::thread::spawn(move || server.drain());
    // Inside the grace window: the draining server answers requests on the
    // existing connection with a complete structured 503.
    std::thread::sleep(Duration::from_millis(100));
    let refused = keepalive
        .post("/query?store=chain&limit=1", "E")
        .expect("draining server still answers established connections");
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert!(
        refused.body.contains("\"kind\":\"shutdown\""),
        "{}",
        refused.body
    );

    // The in-flight slow query was cancelled with reason `shutdown` once
    // the grace window passed (it could not finish a multi-second closure
    // inside 400 ms).
    let slow_response = slow.join().unwrap();
    assert_eq!(slow_response.status, 503, "{}", slow_response.body);
    assert!(
        slow_response.body.contains("\"kind\":\"shutdown\""),
        "{}",
        slow_response.body
    );

    // Drain flushed the flight recorder; the cancelled query's span (an
    // errored request, always retained) is among the flushed records.
    let spans = drained.join().unwrap();
    assert!(
        spans
            .iter()
            .any(|s| s.error_kind.as_deref() == Some("shutdown")),
        "flushed spans: {:?}",
        spans
            .iter()
            .map(|s| (s.path.clone(), s.status, s.error_kind.clone()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn drain_of_an_idle_server_returns_immediately() {
    let server = Server::spawn(ServerConfig {
        port: 0,
        drain_grace: Duration::from_secs(10),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
    let started = Instant::now();
    let _spans = server.drain();
    // Nothing in flight: the grace window is an upper bound, not a sleep.
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "idle drain waited the full grace window"
    );
}

#[test]
fn client_retries_saturated_responses_when_opted_in() {
    // A server with one permit and no wait queue sheds the second query.
    let server = Server::spawn(ServerConfig {
        port: 0,
        admission_permits: 1,
        admission_max_waiters: 0,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(2000)).unwrap();

    // Occupy the single permit with a slow query.
    let hog = std::thread::spawn(move || {
        client::post(addr, "/query?store=chain&timeout_ms=1500", SLOW_QUERY).unwrap()
    });
    std::thread::sleep(Duration::from_millis(200));

    // Without opt-in the 429 comes straight back…
    let mut plain = HttpClient::new(addr);
    let shed = plain.post("/query?store=chain&limit=1", "E").unwrap();
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert!(shed.header("Retry-After").is_some());

    // …with opt-in the client sleeps the (capped, jittered) Retry-After
    // hint and eventually gets through once the hog's deadline fires.
    let mut retrying = HttpClient::new(addr).retry_saturated(20, Duration::from_millis(250));
    let response = retrying.post("/query?store=chain&limit=1", "E").unwrap();
    assert_eq!(response.status, 200, "{}", response.body);

    assert_eq!(hog.join().unwrap().status, 408);
    server.shutdown();
}
