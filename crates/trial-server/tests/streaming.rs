//! Integration tests for the streaming serving path: `?stream=1` chunked
//! responses are byte-identical to buffered ones at every parallelism
//! degree, pagination cursors resume exactly where the previous page
//! stopped, stale/malformed cursors fail with structured errors before any
//! bytes stream, and saturated stores shed load with complete `429`s.

use trial_server::client::{self, HttpClient, HttpResponse};
use trial_server::{Server, ServerConfig};

/// Extracts the integer value of `"field":N` from a flat JSON rendering.
fn json_u64(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no `{needle}` in `{body}`"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric `{needle}` in `{body}`"))
}

/// The rendered `"triples":[...]` array of a **buffered** response (always
/// followed by the stats object inside the `result` fragment).
fn buffered_triples(body: &str) -> &str {
    let start = body.find("\"triples\":").expect("triples field") + "\"triples\":".len();
    let end = body[start..]
        .find(",\"stats\"")
        .expect("stats after triples")
        + start;
    &body[start..end]
}

/// The rendered `"triples":[...]` array of a **streamed** response (the
/// array is the last field of the body object; count/truncated arrive as
/// trailers instead).
fn streamed_triples(body: &str) -> &str {
    let start = body.find("\"triples\":").expect("triples field") + "\"triples\":".len();
    assert!(body.ends_with('}'), "unterminated streamed body: {body}");
    &body[start..body.len() - 1]
}

/// An N-Triples chain `<n0> <next> <n1> . … <n{n-1}> <next> <n{n}> .`.
fn chain_doc(n: usize) -> String {
    let mut doc = String::new();
    for i in 0..n {
        doc.push_str(&format!("<n{i}> <next> <n{}> .\n", i + 1));
    }
    doc
}

fn assert_complete_stream(response: &HttpResponse) -> (u64, bool) {
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.chunked, "streamed response was not chunked");
    let count: u64 = response
        .trailer("X-Trial-Count")
        .expect("X-Trial-Count trailer")
        .parse()
        .expect("numeric count trailer");
    let truncated = response
        .trailer("X-Trial-Truncated")
        .expect("X-Trial-Truncated trailer")
        == "true";
    assert!(
        response.trailer("X-Trial-Elapsed-Us").is_some(),
        "missing elapsed trailer"
    );
    (count, truncated)
}

#[test]
fn streamed_rows_match_buffered_at_every_degree() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    // Big enough to cross the parallel-morsel threshold (2048 rows), so
    // degrees > 1 exercise real exchange fan-out, not a sequential fallback.
    client::post(addr, "/load?store=chain", &chain_doc(3000)).unwrap();

    // One keep-alive connection carries the whole matrix: buffered and
    // chunked responses interleave on the same socket.
    let mut http = HttpClient::new(addr);
    for query in ["E", "SELECT[1!=3](E)", "(E JOIN[1,2,3' | 3=1'] E)"] {
        for threads in [1_usize, 2, 4] {
            for order in ["", "&order=pos"] {
                let path = format!("/query?store=chain&limit=100000&threads={threads}{order}");
                let buffered = http.post(&path, query).unwrap();
                assert_eq!(buffered.status, 200, "{}", buffered.body);
                assert!(!buffered.chunked);
                let streamed = http.post(&format!("{path}&stream=1"), query).unwrap();
                let (count, truncated) = assert_complete_stream(&streamed);
                assert_eq!(count, json_u64(&buffered.body, "count"));
                assert!(!truncated, "unexpected truncation for {query}");
                // Unordered plans are only row-set deterministic in general,
                // but this engine's pipelines are: the streamed body must be
                // byte-identical to the buffered rendering, order or not.
                assert_eq!(
                    streamed_triples(&streamed.body),
                    buffered_triples(&buffered.body),
                    "stream/buffer divergence for `{query}` at threads={threads} order={order:?}"
                );
                assert!(streamed.body.contains("\"stream\":true"));
            }
        }
    }

    // Top-k streams too: the head echoes order+topk and the bounded result
    // is complete (no cursor — top-k sets cannot resume).
    let topk = http
        .post("/query?store=chain&topk=5&stream=1", "E")
        .unwrap();
    let (count, truncated) = assert_complete_stream(&topk);
    assert_eq!(count, 5);
    assert!(!truncated);
    assert!(topk.body.contains("\"order\":\"spo\""), "{}", topk.body);
    assert!(topk.body.contains("\"topk\":5"), "{}", topk.body);
    assert!(topk.trailer("X-Trial-Cursor").is_none());

    server.shutdown();
}

#[test]
fn pagination_pages_concatenate_to_the_full_ordered_result() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(100)).unwrap();
    let mut http = HttpClient::new(addr);

    let full = http.post("/query?store=chain&order=spo", "E").unwrap();
    assert_eq!(full.status, 200, "{}", full.body);
    let full_rows = buffered_triples(&full.body);
    let full_rows = &full_rows[1..full_rows.len() - 1]; // strip [ ]

    let mut collected = String::new();
    let mut pages = 0;
    let mut cursor: Option<String> = None;
    loop {
        let path = match &cursor {
            None => "/query?store=chain&order=spo&limit=25&stream=1".to_owned(),
            Some(token) => format!("/query?store=chain&limit=25&cursor={token}"),
        };
        let page = http.post(&path, "E").unwrap();
        let (count, truncated) = assert_complete_stream(&page);
        pages += 1;
        assert_eq!(count, 25, "short page {pages}: {}", page.body);
        // Resumed pages say so in the head; the first page does not.
        assert_eq!(
            page.body.contains("\"resumed\":true"),
            cursor.is_some(),
            "{}",
            page.body
        );
        let rows = streamed_triples(&page.body);
        let rows = &rows[1..rows.len() - 1];
        if !rows.is_empty() {
            if !collected.is_empty() {
                collected.push(',');
            }
            collected.push_str(rows);
        }
        match page.trailer("X-Trial-Cursor") {
            Some(token) => {
                assert!(truncated, "cursor on an unfinished page {pages}");
                cursor = Some(token.to_owned());
            }
            None => {
                assert!(!truncated, "truncated page {pages} without a cursor");
                break;
            }
        }
        assert!(pages < 10, "pagination did not converge");
    }
    assert_eq!(pages, 4); // 100 rows / 25 per page
    assert_eq!(
        collected, full_rows,
        "page concatenation diverged from the one-shot ordered result"
    );

    server.shutdown();
}

#[test]
fn cursor_errors_are_structured_and_buffered() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(50)).unwrap();
    client::post(addr, "/load?store=other", &chain_doc(5)).unwrap();
    let mut http = HttpClient::new(addr);

    let page = http
        .post("/query?store=chain&order=spo&limit=10&stream=1", "E")
        .unwrap();
    let token = page
        .trailer("X-Trial-Cursor")
        .expect("truncated ordered stream mints a cursor")
        .to_owned();

    // Malformed token: not even valid base64url.
    let garbage = http.post("/query?store=chain&cursor=@@!", "E").unwrap();
    assert_eq!(garbage.status, 400, "{}", garbage.body);
    assert!(garbage.body.contains("bad_cursor"), "{}", garbage.body);
    assert!(!garbage.chunked, "errors must be buffered");

    // Valid alphabet, corrupt content (checksum mismatch).
    let corrupt = http
        .post(&format!("/query?store=chain&cursor=AA{token}"), "E")
        .unwrap();
    assert_eq!(corrupt.status, 400, "{}", corrupt.body);
    assert!(corrupt.body.contains("bad_cursor"), "{}", corrupt.body);

    // Cursors resume streams; top-k responses are complete sets.
    let topk = http
        .post(&format!("/query?store=chain&topk=3&cursor={token}"), "E")
        .unwrap();
    assert_eq!(topk.status, 400, "{}", topk.body);
    assert!(topk.body.contains("bad_cursor"), "{}", topk.body);

    // The token names its order; contradicting it is an error, not a re-sort.
    let reorder = http
        .post(&format!("/query?store=chain&order=pos&cursor={token}"), "E")
        .unwrap();
    assert_eq!(reorder.status, 400, "{}", reorder.body);
    assert!(reorder.body.contains("bad_cursor"), "{}", reorder.body);

    // Tokens are store-scoped.
    let wrong_store = http
        .post(&format!("/query?store=other&cursor={token}"), "E")
        .unwrap();
    assert_eq!(wrong_store.status, 400, "{}", wrong_store.body);
    assert!(
        wrong_store.body.contains("bad_cursor"),
        "{}",
        wrong_store.body
    );

    // Reloading the store bumps its epoch: old row keys are meaningless in
    // the new snapshot, so the cursor is gone, not retryable.
    client::post(addr, "/load?store=chain", "<x> <next> <y> .\n").unwrap();
    let stale = http
        .post(&format!("/query?store=chain&cursor={token}"), "E")
        .unwrap();
    assert_eq!(stale.status, 410, "{}", stale.body);
    assert!(stale.body.contains("stale_cursor"), "{}", stale.body);
    assert!(stale.body.contains("restart pagination"), "{}", stale.body);

    // The connection survived every rejection: a good request still works.
    let ok = http.post("/query?store=chain&stream=1", "E").unwrap();
    assert_complete_stream(&ok);

    server.shutdown();
}

#[test]
fn saturated_stores_shed_load_with_structured_429() {
    let server = Server::spawn(ServerConfig {
        admission_permits: 1,
        admission_max_waiters: 0,
        admission_wait: std::time::Duration::from_millis(50),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(100)).unwrap();

    // Hold the store's only permit from the outside: every fresh evaluation
    // is now deterministically saturated.
    let held = server.admission().acquire("chain").unwrap();

    let buffered = client::post(addr, "/query?store=chain", "E").unwrap();
    assert_eq!(buffered.status, 429, "{}", buffered.body);
    assert!(buffered.body.contains("saturated"), "{}", buffered.body);
    let retry_after = buffered
        .header("Retry-After")
        .expect("429 carries Retry-After");
    assert!(retry_after.parse::<u64>().unwrap() >= 1);

    // Streaming requests are admission-checked before any bytes go out, so
    // the rejection is an ordinary complete response too.
    let streamed = client::post(addr, "/query?store=chain&stream=1", "E").unwrap();
    assert_eq!(streamed.status, 429, "{}", streamed.body);
    assert!(!streamed.chunked);
    assert!(streamed.header("Retry-After").is_some());

    // Other stores have their own gates.
    client::post(addr, "/load?store=open", &chain_doc(5)).unwrap();
    let other = client::post(addr, "/query?store=open", "E").unwrap();
    assert_eq!(other.status, 200, "{}", other.body);

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(json_u64(&health.body, "permits"), 1);
    assert_eq!(json_u64(&health.body, "in_flight"), 1); // the held permit
    assert!(json_u64(&health.body, "rejected") >= 2);

    // Releasing the permit reopens the store; the fresh result then seeds
    // the cache, and cache hits bypass admission entirely.
    drop(held);
    let fresh = client::post(addr, "/query?store=chain", "E").unwrap();
    assert_eq!(fresh.status, 200, "{}", fresh.body);
    let _held = server.admission().acquire("chain").unwrap();
    let cached = client::post(addr, "/query?store=chain", "E").unwrap();
    assert_eq!(cached.status, 200, "{}", cached.body);
    assert!(cached.body.contains("\"cached\":true"), "{}", cached.body);

    server.shutdown();
}

#[test]
fn prefix_cache_serves_smaller_limits_from_one_deep_evaluation() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(200)).unwrap();
    let query = "SELECT[1!=3](E)";

    let deep = client::post(addr, "/query?store=chain&order=spo&limit=50", query).unwrap();
    assert_eq!(deep.status, 200, "{}", deep.body);
    assert!(deep.body.contains("\"cached\":false"), "{}", deep.body);
    assert_eq!(json_u64(&deep.body, "count"), 50);

    // A smaller limit under the same (store, epoch, text, threads, order) is
    // a slice of the cached prefix: served as a hit without re-evaluating.
    let shallow = client::post(addr, "/query?store=chain&order=spo&limit=10", query).unwrap();
    assert_eq!(shallow.status, 200, "{}", shallow.body);
    assert!(shallow.body.contains("\"cached\":true"), "{}", shallow.body);
    assert_eq!(json_u64(&shallow.body, "count"), 10);
    assert!(shallow.body.contains("\"truncated\":true"));
    let deep_rows = buffered_triples(&deep.body);
    let shallow_rows = buffered_triples(&shallow.body);
    assert!(
        deep_rows.starts_with(&shallow_rows[..shallow_rows.len() - 1]),
        "sliced prefix is not a prefix: {shallow_rows} vs {deep_rows}"
    );
    let health = client::get(addr, "/healthz").unwrap();
    assert!(
        json_u64(&health.body, "hits_prefix") >= 1,
        "{}",
        health.body
    );

    // A complete (untruncated) evaluation replaces the partial prefix and
    // covers *every* limit from then on.
    let full = client::post(addr, "/query?store=chain&order=spo&limit=10000", query).unwrap();
    assert_eq!(json_u64(&full.body, "count"), 200);
    assert!(full.body.contains("\"truncated\":false"), "{}", full.body);
    let between = client::post(addr, "/query?store=chain&order=spo&limit=120", query).unwrap();
    assert!(between.body.contains("\"cached\":true"), "{}", between.body);
    assert_eq!(json_u64(&between.body, "count"), 120);
    assert!(between.body.contains("\"truncated\":true"));

    server.shutdown();
}

#[test]
fn streaming_failures_before_the_head_are_buffered_and_keep_alive() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(20)).unwrap();
    let mut http = HttpClient::new(addr);

    // Parse errors, the stream-less count path and unknown stores all fail
    // during up-front validation: complete buffered errors, no chunking.
    let parse = http
        .post("/query?store=chain&stream=1", "(E JOIN[1,2")
        .unwrap();
    assert_eq!(parse.status, 400, "{}", parse.body);
    assert!(!parse.chunked);

    let count_only = http
        .post("/query?store=chain&limit=0&stream=1", "E")
        .unwrap();
    assert_eq!(count_only.status, 400, "{}", count_only.body);
    assert!(
        count_only.body.contains("no streaming form"),
        "{}",
        count_only.body
    );

    let missing = http.post("/query?store=nope&stream=1", "E").unwrap();
    assert_eq!(missing.status, 404, "{}", missing.body);
    assert!(missing.body.contains("unknown_store"), "{}", missing.body);

    // None of those poisoned the connection.
    let ok = http.post("/query?store=chain&stream=1", "E").unwrap();
    let (count, _) = assert_complete_stream(&ok);
    assert_eq!(count, 20);

    let health = http.get("/healthz").unwrap();
    assert!(json_u64(&health.body, "queries_streamed") >= 1);

    server.shutdown();
}
