//! Fault-injection suite: drives the server through the `chaos` layer
//! (`ServerConfig::chaos`, same grammar as `trial-serve --chaos` /
//! `TRIAL_CHAOS`) and proves the crash-containment invariants — an injected
//! worker panic is a structured 500 that releases its admission permit,
//! poisons no lock, and leaves no partial cache entry; a panic or socket
//! death mid-stream still terminates the chunk framing (or visibly kills
//! the connection) without wedging the server.

use trial_server::client::{self};
use trial_server::{Server, ServerConfig};

/// An N-Triples chain `<n0> <next> <n1> . … <n{n-1}> <next> <n{n}> .`.
fn chain_doc(n: usize) -> String {
    let mut doc = String::new();
    for i in 0..n {
        doc.push_str(&format!("<n{i}> <next> <n{}> .\n", i + 1));
    }
    doc
}

/// Extracts the integer value of `"field":N` from a flat JSON rendering.
fn json_u64(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no `{needle}` in `{body}`"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric `{needle}` in `{body}`"))
}

fn spawn_with_chaos(spec: &str, cache_capacity: usize) -> Server {
    Server::spawn(ServerConfig {
        port: 0,
        chaos: Some(spec.to_owned()),
        cache_capacity,
        ..ServerConfig::default()
    })
    .unwrap()
}

#[test]
fn injected_worker_panics_release_permits_and_poison_no_locks() {
    // Every 2nd evaluation panics. The cache is disabled so every query
    // actually reaches the `eval` site and the hit sequence below is exact:
    // ok, panic, ok, panic, ok, panic, ok.
    let server = spawn_with_chaos("eval=panic@2", 0);
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(100)).unwrap();

    for threads in [1usize, 2, 4] {
        let path = format!("/query?store=chain&limit=5&threads={threads}");
        let ok = client::post(addr, &path, "E").unwrap();
        assert_eq!(ok.status, 200, "threads={threads}: {}", ok.body);

        let crashed = client::post(addr, &path, "E").unwrap();
        assert_eq!(crashed.status, 500, "threads={threads}: {}", crashed.body);
        assert!(
            crashed.body.contains("\"kind\":\"internal\""),
            "threads={threads}: {}",
            crashed.body
        );

        // The unwound worker dropped its permit on the way out.
        let healthz = client::get(addr, "/healthz").unwrap().body;
        assert_eq!(json_u64(&healthz, "in_flight"), 0, "{healthz}");
    }

    // Registry, metrics and admission locks all survived three panics: a
    // final query runs normally (hit 7 is odd, so no injection).
    let after = client::post(addr, "/query?store=chain&limit=5", "E").unwrap();
    assert_eq!(after.status, 200, "{}", after.body);
    server.shutdown();
}

#[test]
fn a_panicked_query_never_leaves_a_partial_cache_entry() {
    // Caching on; every 2nd evaluation panics. Cache hits never reach the
    // `eval` site, so the hit sequence is: seed (1, ok), panic (2), retry
    // (3, ok).
    let server = spawn_with_chaos("eval=panic@2", 128);
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(100)).unwrap();

    // Seed the cache with one query and prove hits are served from it.
    let seeded = client::post(addr, "/query?store=chain&limit=5", "E").unwrap();
    assert_eq!(seeded.status, 200, "{}", seeded.body);
    assert!(seeded.body.contains("\"cached\":false"), "{}", seeded.body);
    let hit = client::post(addr, "/query?store=chain&limit=5", "E").unwrap();
    assert_eq!(hit.status, 200, "{}", hit.body);
    assert!(hit.body.contains("\"cached\":true"), "{}", hit.body);

    // A different query panics mid-evaluation …
    let crashed = client::post(
        addr,
        "/query?store=chain&limit=5",
        "E JOIN[1,2,3' | 3=1'] E",
    )
    .unwrap();
    assert_eq!(crashed.status, 500, "{}", crashed.body);

    // … and its rerun is a fresh evaluation: the crashed attempt stored
    // nothing under the key it would have used.
    let retried = client::post(
        addr,
        "/query?store=chain&limit=5",
        "E JOIN[1,2,3' | 3=1'] E",
    )
    .unwrap();
    assert_eq!(retried.status, 200, "{}", retried.body);
    assert!(
        retried.body.contains("\"cached\":false"),
        "{}",
        retried.body
    );
    server.shutdown();
}

#[test]
fn stream_pump_panic_names_internal_in_the_error_trailer() {
    // The pump panics on its first batch: the 200 head is already on the
    // wire, so the only honest signal left is a terminal chunk plus an
    // `X-Trial-Error: internal` trailer — which is exactly what a client
    // must check before trusting a chunked body.
    let server = spawn_with_chaos("stream.pump=panic", 128);
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(50)).unwrap();

    let response = client::post(addr, "/query?store=chain&stream=1", "E").unwrap();
    assert_eq!(response.status, 200);
    assert!(response.chunked);
    assert_eq!(
        response.trailer("X-Trial-Error"),
        Some("internal"),
        "trailers: {:?}",
        response.trailers
    );

    // The stream's permit was released before the terminal chunk.
    let healthz = client::get(addr, "/healthz").unwrap().body;
    assert_eq!(json_u64(&healthz, "in_flight"), 0, "{healthz}");
    server.shutdown();
}

#[test]
fn stream_chunk_io_error_kills_the_connection_visibly() {
    // A socket death mid-chunk cannot be repaired or signalled in-band: the
    // server drops the connection and the missing terminal chunk is the
    // client's signal. The server itself must shrug it off.
    let server = spawn_with_chaos("stream.chunk=ioerror", 128);
    let addr = server.addr();
    client::post(addr, "/load?store=chain", &chain_doc(50)).unwrap();

    let result = client::post(addr, "/query?store=chain&stream=1", "E");
    assert!(
        result.is_err(),
        "a mid-chunk socket error must not produce a readable response: {result:?}"
    );

    // The failed stream released its permit and was counted as stream_io.
    let healthz = client::get(addr, "/healthz").unwrap().body;
    assert_eq!(json_u64(&healthz, "in_flight"), 0, "{healthz}");
    let metrics = client::get(addr, "/metrics").unwrap().body;
    assert!(metrics.contains("stream_io"), "{metrics}");
    server.shutdown();
}

#[test]
fn a_panicked_route_is_a_500_and_the_server_survives() {
    // The `route` site counts every request. With period 2 the sequence
    // is: healthz (ok), healthz (panic → 500), healthz (ok).
    let server = spawn_with_chaos("route=panic@2", 128);
    let addr = server.addr();

    let first = client::get(addr, "/healthz").unwrap();
    assert_eq!(first.status, 200, "{}", first.body);

    let crashed = client::get(addr, "/healthz").unwrap();
    assert_eq!(crashed.status, 500, "{}", crashed.body);
    assert!(
        crashed.body.contains("\"kind\":\"internal\""),
        "{}",
        crashed.body
    );

    let after = client::get(addr, "/healthz").unwrap();
    assert_eq!(after.status, 200, "{}", after.body);
    server.shutdown();
}
