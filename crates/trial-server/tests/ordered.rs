//! Integration tests for ordered and top-k responses: `?order=`/`?topk=`
//! stream deterministic row sequences, collapse to early-terminating limits
//! over ordered plans (observable in the work counters), occupy their own
//! cache entries, and are invalidated by epoch bumps like any fragment.

use trial_server::{client, Server};

/// Extracts the integer value of `"field":N` from a flat JSON rendering.
fn json_u64(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no `{needle}` in `{body}`"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric `{needle}` in `{body}`"))
}

/// Extracts the rendered `"triples":[...]` array as a raw string (it is
/// always followed by the stats object in the fragment).
fn triples_of(body: &str) -> &str {
    let start = body.find("\"triples\":").expect("triples field") + "\"triples\":".len();
    let end = body[start..]
        .find(",\"stats\"")
        .expect("stats after triples")
        + start;
    &body[start..end]
}

#[test]
fn order_and_topk_terminate_early_and_key_the_cache() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    // A 200-edge chain; the self-inequality filter makes scans instrumented
    // so early termination shows up in the work counters.
    let mut doc = String::new();
    for i in 0..200 {
        doc.push_str(&format!("<n{i}> <next> <n{}> .\n", i + 1));
    }
    client::post(addr, "/load?store=chain", &doc).unwrap();
    let filtered = "SELECT[1!=3](E)";

    // Top-k over an order the scan delivers for free compiles to a plain
    // limit: evaluation stops after k rows instead of draining the store.
    let bounded = client::post(addr, "/query?store=chain&order=spo&topk=3", filtered).unwrap();
    assert_eq!(bounded.status, 200, "{}", bounded.body);
    assert_eq!(json_u64(&bounded.body, "count"), 3);
    assert!(
        bounded.body.contains("\"order\":\"spo\""),
        "{}",
        bounded.body
    );
    assert!(bounded.body.contains("\"topk\":3"), "{}", bounded.body);
    // No heap was needed (the limit path), and the scan stopped early.
    assert_eq!(json_u64(&bounded.body, "topk_buffered_peak"), 0);
    let full = client::post(addr, "/query?store=chain", filtered).unwrap();
    assert_eq!(json_u64(&full.body, "count"), 200);
    let bounded_scanned = json_u64(&bounded.body, "triples_scanned");
    let full_scanned = json_u64(&full.body, "triples_scanned");
    assert!(
        bounded_scanned * 10 <= full_scanned,
        "ordered top-k did not terminate early: {bounded_scanned} vs {full_scanned} rows scanned"
    );

    // Top-k over an unordered join output runs the bounded heap: never more
    // than k rows buffered, exactly k returned.
    let join = "(E JOIN[1,2,3' | 3=1'] E)";
    let heap = client::post(addr, "/query?store=chain&topk=4&order=pos", join).unwrap();
    assert_eq!(json_u64(&heap.body, "count"), 4);
    let peak = json_u64(&heap.body, "topk_buffered_peak");
    assert!(peak > 0 && peak <= 4, "heap peak out of bounds: {peak}");
    assert!(heap.body.contains("\"truncated\":false"), "{}", heap.body);

    // order and topk are part of the cache key: repeats hit, variants miss.
    let again = client::post(addr, "/query?store=chain&order=spo&topk=3", filtered).unwrap();
    assert!(again.body.contains("\"cached\":true"), "{}", again.body);
    let other_order = client::post(addr, "/query?store=chain&order=osp&topk=3", filtered).unwrap();
    assert!(other_order.body.contains("\"cached\":false"));
    let no_topk = client::post(addr, "/query?store=chain&order=spo", filtered).unwrap();
    assert!(no_topk.body.contains("\"cached\":false"));

    // An epoch bump (reload) invalidates ordered cached fragments too.
    client::post(addr, "/load?store=chain", "<x> <next> <y> .\n").unwrap();
    let after_bump = client::post(addr, "/query?store=chain&order=spo&topk=3", filtered).unwrap();
    assert!(
        after_bump.body.contains("\"cached\":false"),
        "{}",
        after_bump.body
    );

    // Unparsable knobs are structured 400s.
    let bad_order = client::post(addr, "/query?store=chain&order=sop", "E").unwrap();
    assert_eq!(bad_order.status, 400);
    assert!(bad_order.body.contains("bad_request"));
    let bad_topk = client::post(addr, "/query?store=chain&topk=many", "E").unwrap();
    assert_eq!(bad_topk.status, 400);
}

#[test]
fn ordered_responses_stream_deterministic_permutation_order() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    // Object ids are assigned in first-seen order: b=0, p=1, a=2, q=3.
    // Triples as id-triples: (b,p,a)=(0,1,2), (a,q,b)=(2,3,0), (a,p,a)=(2,1,2).
    let doc = "<b> <p> <a> .\n<a> <q> <b> .\n<a> <p> <a> .\n";
    client::post(addr, "/load?store=tiny", doc).unwrap();

    // SPO: (0,1,2) < (2,1,2) < (2,3,0).
    let spo = client::post(addr, "/query?store=tiny&order=spo", "E").unwrap();
    assert_eq!(
        triples_of(&spo.body),
        r#"[["b","p","a"],["a","p","a"],["a","q","b"]]"#,
        "{}",
        spo.body
    );
    // OSP keys: (2,0,1), (0,2,3), (2,2,1) → (a,q,b) < (b,p,a) < (a,p,a).
    let osp = client::post(addr, "/query?store=tiny&order=osp", "E").unwrap();
    assert_eq!(
        triples_of(&osp.body),
        r#"[["a","q","b"],["b","p","a"],["a","p","a"]]"#,
        "{}",
        osp.body
    );
    // Top-1 under OSP is the head of that sequence.
    let top = client::post(addr, "/query?store=tiny&order=osp&topk=1", "E").unwrap();
    assert_eq!(triples_of(&top.body), r#"[["a","q","b"]]"#, "{}", top.body);

    // /explain shows the order machinery: a re-ordered scan for the free
    // delivery, a [sort] breaker when a join output must be ordered, and
    // per-node "ordering" in the structured tree.
    let explained = client::post(addr, "/explain?store=tiny&order=osp", "E").unwrap();
    assert!(explained.body.contains("order=osp"), "{}", explained.body);
    assert!(
        explained.body.contains("\"ordering\":\"osp\""),
        "{}",
        explained.body
    );
    let sorted = client::post(
        addr,
        "/explain?store=tiny&order=pos",
        "(E JOIN[1,2,3' | 3=1'] E)",
    )
    .unwrap();
    assert!(sorted.body.contains("[sort pos]"), "{}", sorted.body);
    let topk_plan = client::post(
        addr,
        "/explain?store=tiny&order=pos&topk=2",
        "(E JOIN[1,2,3' | 3=1'] E)",
    )
    .unwrap();
    assert!(topk_plan.body.contains("[topk pos]"), "{}", topk_plan.body);
}
