//! End-to-end integration tests for the HTTP query service: routing, error
//! shapes, snapshot isolation under concurrent load/query traffic, and
//! LRU-cache behaviour across epoch bumps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use trial_server::{client, Server, ServerConfig};

/// Extracts the integer value of `"field":N` from a flat JSON rendering.
fn json_u64(body: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no `{needle}` in `{body}`"));
    body[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric `{needle}` in `{body}`"))
}

/// An N-Triples batch of `count` unique triples tagged by `tag`.
fn batch(tag: &str, count: usize) -> String {
    let mut doc = String::new();
    for i in 0..count {
        doc.push_str(&format!("<{tag}s{i}> <p> <{tag}o{i}> .\n"));
    }
    doc
}

#[test]
fn endpoints_roundtrip_over_http() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();

    // Empty service: healthz is alive, querying has nothing to target.
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"status\":\"ok\""));
    assert_eq!(json_u64(&health.body, "stores"), 0);
    let no_store = client::post(addr, "/query", "E").unwrap();
    assert_eq!(no_store.status, 400);
    assert!(no_store.body.contains("no_store_selected"));

    // Routing errors are structured.
    assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
    let wrong_method = client::get(addr, "/query").unwrap();
    assert_eq!(wrong_method.status, 405);
    assert!(wrong_method.body.contains("method_not_allowed"));

    // Load the Figure 1 transport network.
    let doc = "\
<StAndrews> <BusOp1> <Edinburgh> .
<Edinburgh> <TrainOp1> <London> .
<London> <TrainOp2> <Brussels> .
<BusOp1> <part_of> <NatExpress> .
<TrainOp1> <part_of> <EastCoast> .
<TrainOp2> <part_of> <Eurostar> .
<EastCoast> <part_of> <NatExpress> .
";
    let load = client::post(addr, "/load?store=fig1", doc).unwrap();
    assert_eq!(load.status, 200, "{}", load.body);
    assert_eq!(json_u64(&load.body, "epoch"), 1);
    assert_eq!(json_u64(&load.body, "triples_added"), 7);

    // /stores sees it.
    let stores = client::get(addr, "/stores").unwrap();
    assert!(stores.body.contains("\"name\":\"fig1\""));
    assert_eq!(json_u64(&stores.body, "triples"), 7);

    // Example 2 of the paper over the wire (single store: ?store= optional).
    let query = client::post(addr, "/query", "(E JOIN[1,3',3 | 2=1'] E)").unwrap();
    assert_eq!(query.status, 200, "{}", query.body);
    assert_eq!(json_u64(&query.body, "count"), 3);
    assert!(query.body.contains(r#"["Edinburgh","EastCoast","London"]"#));
    assert!(query.body.contains("\"cached\":false"));
    assert!(query.body.contains("\"stats\":"));

    // /explain renders the physical plan without executing.
    let explain = client::post(addr, "/explain", "(E JOIN[1,3',3 | 2=1'] E)").unwrap();
    assert_eq!(explain.status, 200);
    assert!(explain.body.contains("IndexScan"), "{}", explain.body);

    // Parse errors carry the byte offset of the failing token.
    let bad = client::post(addr, "/query?store=fig1", "E JOIN[1,2,4] E").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("\"kind\":\"parse\""));
    assert_eq!(json_u64(&bad.body, "offset"), 11);

    // Unknown stores 404; unknown relations are query errors.
    assert_eq!(
        client::post(addr, "/query?store=ghost", "E")
            .unwrap()
            .status,
        404
    );
    let unknown_rel = client::post(addr, "/query?store=fig1", "F").unwrap();
    assert_eq!(unknown_rel.status, 400);
    assert!(unknown_rel.body.contains("unknown_relation"));

    // ?limit= is pushed into the plan: evaluation stops after the limit, so
    // the response carries exactly the returned rows plus a truncation flag.
    let limited = client::post(addr, "/query?store=fig1&limit=1", "E").unwrap();
    assert_eq!(json_u64(&limited.body, "count"), 1);
    assert!(limited.body.contains("\"truncated\":true"));

    // Different limits are different cache entries: the same text with the
    // default limit must not be served the truncated fragment.
    let full = client::post(addr, "/query?store=fig1", "E").unwrap();
    assert_eq!(json_u64(&full.body, "count"), 7);
    assert!(full.body.contains("\"truncated\":false"), "{}", full.body);
    // And ?limit=0 is the count-only fast path: exact cardinality, no rows.
    let count_only = client::post(addr, "/query?store=fig1&limit=0", "E").unwrap();
    assert_eq!(json_u64(&count_only.body, "count"), 7);
    assert!(count_only.body.contains("\"triples\":[]"));

    server.shutdown();
}

/// `?limit=` rides the plan as a `Limit` node: bounded queries do strictly
/// less evaluation work than unbounded ones, every distinct limit is its own
/// cache entry, and `/explain` exposes the pushdown as plan metadata.
#[test]
fn limit_pushdown_terminates_early_and_keys_the_cache() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    // A 200-edge chain: reach-style joins over it emit plenty of rows.
    let mut doc = String::new();
    for i in 0..200 {
        doc.push_str(&format!("<n{i}> <next> <n{}> .\n", i + 1));
    }
    client::post(addr, "/load?store=chain", &doc).unwrap();

    // The join has 199 result rows; a limit of 3 returns exactly 3 and
    // reports the early cut.
    let query = "(E JOIN[1,2,3' | 3=1'] E)";
    let bounded = client::post(addr, "/query?store=chain&limit=3", query).unwrap();
    assert_eq!(bounded.status, 200, "{}", bounded.body);
    assert_eq!(json_u64(&bounded.body, "count"), 3);
    assert!(bounded.body.contains("\"truncated\":true"));
    let full = client::post(addr, "/query?store=chain", query).unwrap();
    assert_eq!(json_u64(&full.body, "count"), 199);
    assert!(full.body.contains("\"truncated\":false"));

    // Early termination is observable in the work counters: the bounded
    // evaluation considered far fewer candidate pairs.
    let bounded_pairs = json_u64(&bounded.body, "pairs_considered");
    let full_pairs = json_u64(&full.body, "pairs_considered");
    assert!(
        bounded_pairs * 10 <= full_pairs,
        "limit pushdown did not cut work: {bounded_pairs} vs {full_pairs} pairs"
    );

    // Each limit is a distinct cache key; repeats hit, different limits miss.
    let again = client::post(addr, "/query?store=chain&limit=3", query).unwrap();
    assert!(again.body.contains("\"cached\":true"), "{}", again.body);
    assert_eq!(json_u64(&again.body, "count"), 3);
    let other = client::post(addr, "/query?store=chain&limit=5", query).unwrap();
    assert!(other.body.contains("\"cached\":false"));
    assert_eq!(json_u64(&other.body, "count"), 5);

    // The count-only path still reports the exact cardinality (it drains a
    // counting cursor instead of rendering rows).
    let count_only = client::post(addr, "/query?store=chain&limit=0", query).unwrap();
    assert_eq!(json_u64(&count_only.body, "count"), 199);
    assert!(count_only.body.contains("\"triples\":[]"));

    // /explain shows the pushed-down limit and machine-readable pipeline
    // metadata; limited and unlimited explains are cached separately.
    let explained = client::post(addr, "/explain?store=chain&limit=3", query).unwrap();
    assert!(explained.body.contains("Limit 3"), "{}", explained.body);
    assert!(
        explained.body.contains("\"pipelined\":true"),
        "{}",
        explained.body
    );
    assert!(explained.body.contains("\"tree\":"), "{}", explained.body);
    let plain = client::post(addr, "/explain?store=chain", query).unwrap();
    assert!(plain.body.contains("\"cached\":false"), "{}", plain.body);
    assert!(!plain.body.contains("Limit 3"), "{}", plain.body);

    server.shutdown();
}

#[test]
fn untrusted_input_is_bounded() {
    // Tight limits so the test is fast: tiny bodies, tiny universe.
    let config = ServerConfig {
        max_body_bytes: 256,
        eval: trial_eval::EvalOptions {
            max_universe: 50,
            max_fixpoint_rounds: 4,
            ..trial_eval::EvalOptions::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::spawn(config).unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=s", &batch("t", 5)).unwrap();

    // Body over the limit: 413 before the server buffers it.
    let big = "x".repeat(1024);
    let too_large = client::post(addr, "/load?store=s", &big).unwrap();
    assert_eq!(too_large.status, 413);
    assert!(too_large.body.contains("payload_too_large"));

    // A query that would materialise the universal relation trips the
    // configured cap with a structured 422 instead of eating memory.
    let compl = client::post(addr, "/query?store=s", "COMPL(E)").unwrap();
    assert_eq!(compl.status, 422, "{}", compl.body);
    assert!(compl.body.contains("limit_exceeded"));

    server.shutdown();
}

#[test]
fn registry_growth_is_capped() {
    let server = Server::spawn(ServerConfig {
        max_stores: 2,
        max_store_triples: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Store count cap: a third distinct store is refused …
    assert_eq!(
        client::post(addr, "/load?store=a", &batch("a", 2))
            .unwrap()
            .status,
        200
    );
    assert_eq!(
        client::post(addr, "/load?store=b", &batch("b", 2))
            .unwrap()
            .status,
        200
    );
    let third = client::post(addr, "/load?store=c", &batch("c", 2)).unwrap();
    assert_eq!(third.status, 422, "{}", third.body);
    assert!(third.body.contains("store limit"));
    // … but reloading an existing store is fine.
    assert_eq!(
        client::post(addr, "/load?store=a", &batch("a2", 2))
            .unwrap()
            .status,
        200
    );

    // Per-store size cap: growing `a` past 8 triples is refused and the
    // store is left at its previous epoch.
    let too_big = client::post(addr, "/load?store=a", &batch("big", 10)).unwrap();
    assert_eq!(too_big.status, 422, "{}", too_big.body);
    assert!(too_big.body.contains("limit_exceeded"));
    let q = client::post(addr, "/query?store=a&limit=0", "E").unwrap();
    assert_eq!(json_u64(&q.body, "count"), 4);
    assert!(q.body.contains("\"epoch\":2"));

    server.shutdown();
}

/// ≥8 client threads mix `/query` and `/load` against one store. Every load
/// appends one complete batch of `BATCH` unique triples, so snapshot
/// isolation means every observed count is an exact multiple of `BATCH` —
/// a reader that caught a store mid-load would see something else.
#[test]
fn concurrent_loads_never_expose_partial_stores() {
    const BATCH: u64 = 25;
    const WRITERS: usize = 2;
    const READERS: usize = 8;
    const LOADS_PER_WRITER: usize = 8;
    const QUERIES_PER_READER: usize = 40;

    let server = Server::spawn(ServerConfig {
        workers: 8,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // Epoch 1: one full batch, so readers always have a store to hit.
    let seed = client::post(addr, "/load?store=iso", &batch("seed", BATCH as usize)).unwrap();
    assert_eq!(seed.status, 200, "{}", seed.body);

    let max_count = Arc::new(AtomicU64::new(0));
    let mut threads = Vec::new();
    for w in 0..WRITERS {
        threads.push(std::thread::spawn(move || {
            for j in 0..LOADS_PER_WRITER {
                let doc = batch(&format!("w{w}x{j}"), BATCH as usize);
                let res = client::post(addr, "/load?store=iso", &doc).unwrap();
                assert_eq!(res.status, 200, "{}", res.body);
                // Writers mix in reads too.
                let q = client::post(addr, "/query?store=iso", "E").unwrap();
                assert_eq!(q.status, 200);
            }
        }));
    }
    for r in 0..READERS {
        let max_count = Arc::clone(&max_count);
        threads.push(std::thread::spawn(move || {
            for i in 0..QUERIES_PER_READER {
                // Vary the query text a little so both cache paths run hot.
                let text = if (i + r) % 2 == 0 { "E" } else { "(E)" };
                let res = client::post(addr, "/query?store=iso&limit=0", text).unwrap();
                assert_eq!(res.status, 200, "{}", res.body);
                let count = json_u64(&res.body, "count");
                assert!(
                    count.is_multiple_of(BATCH) && count > 0,
                    "snapshot isolation violated: observed {count} triples, \
                     not a positive multiple of {BATCH}"
                );
                max_count.fetch_max(count, Ordering::Relaxed);
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }

    // All writers landed: final state has every batch.
    let total = (1 + WRITERS * LOADS_PER_WRITER) as u64 * BATCH;
    let final_q = client::post(addr, "/query?store=iso&limit=0", "E").unwrap();
    assert_eq!(json_u64(&final_q.body, "count"), total);
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(
        json_u64(&health.body, "loads_completed"),
        1 + (WRITERS * LOADS_PER_WRITER) as u64
    );
    // Readers really did observe intermediate epochs concurrently with the
    // writers (at least the final state; typically much earlier too).
    assert!(max_count.load(Ordering::Relaxed) >= BATCH);

    server.shutdown();
}

#[test]
fn cache_hits_and_epoch_invalidation() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();
    client::post(addr, "/load?store=c", &batch("a", 10)).unwrap();

    let query = "(E JOIN[1,2,3'] E)";
    let first = client::post(addr, "/query?store=c", query).unwrap();
    assert!(first.body.contains("\"cached\":false"));
    let second = client::post(addr, "/query?store=c", query).unwrap();
    assert!(second.body.contains("\"cached\":true"), "{}", second.body);
    assert_eq!(
        json_u64(&second.body, "count"),
        json_u64(&first.body, "count")
    );

    // The hit is observable on the served stats counter.
    let health = client::get(addr, "/healthz").unwrap();
    assert!(json_u64(&health.body, "hits") >= 1, "{}", health.body);

    // /explain caches independently of /query.
    let explain1 = client::post(addr, "/explain?store=c", query).unwrap();
    assert!(explain1.body.contains("\"cached\":false"));
    let explain2 = client::post(addr, "/explain?store=c", query).unwrap();
    assert!(explain2.body.contains("\"cached\":true"));

    // An epoch bump invalidates: same text, fresh evaluation, new answer.
    let reload = client::post(addr, "/load?store=c", &batch("b", 10)).unwrap();
    assert_eq!(json_u64(&reload.body, "epoch"), 2);
    let after = client::post(addr, "/query?store=c", query).unwrap();
    assert!(after.body.contains("\"cached\":false"), "{}", after.body);
    assert!(after.body.contains("\"epoch\":2"));
    assert!(json_u64(&after.body, "count") > json_u64(&first.body, "count"));
    let again = client::post(addr, "/query?store=c", query).unwrap();
    assert!(again.body.contains("\"cached\":true"));

    server.shutdown();
}

#[test]
fn load_appends_and_literals_carry_values() {
    let server = Server::spawn_ephemeral().unwrap();
    let addr = server.addr();

    // Literals become objects whose ρ-value is their lexical form, so data
    // conditions can select on them.
    let doc = "<Edinburgh> <population> \"524930\" .\n<Glasgow> <population> \"635640\" .\n";
    let load = client::post(addr, "/load?store=lit", doc).unwrap();
    assert_eq!(load.status, 200, "{}", load.body);
    let q = client::post(addr, "/query?store=lit", "SELECT[rho(3)=\"524930\"](E)").unwrap();
    assert_eq!(json_u64(&q.body, "count"), 1, "{}", q.body);
    assert!(q.body.contains("Edinburgh"));

    // A second load into a different relation of the same store appends
    // copy-on-write: both relations are visible at the new epoch.
    let more = client::post(addr, "/load?store=lit&relation=F", "<a> <b> <c> .\n").unwrap();
    assert_eq!(json_u64(&more.body, "epoch"), 2);
    assert_eq!(json_u64(&more.body, "triples_total"), 3);
    let union = client::post(addr, "/query?store=lit", "E UNION F").unwrap();
    assert_eq!(json_u64(&union.body, "count"), 3);

    // A malformed document reports its offset and leaves the store intact.
    let bad = client::post(addr, "/load?store=lit", "<a> <b> <c> .\nbroken .\n").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("\"kind\":\"parse\""));
    assert_eq!(json_u64(&bad.body, "offset"), 14);
    let still = client::get(addr, "/stores").unwrap();
    assert!(still.body.contains("\"epoch\":2"), "{}", still.body);

    server.shutdown();
}

/// `?threads=` rides every request into `EvalOptions`, `/explain` reports
/// the effective degree and `[parallel×N]` tags, `/explain?analyze=1` runs
/// the query and reports actual vs estimated rows, and `/healthz` counts
/// parallel vs sequential executions.
#[test]
fn eval_threads_knob_and_analyze_explain() {
    // parallel_min_rows: 0 forces morsel execution even on small stores so
    // the parallel counters are observable end-to-end.
    let mut config = ServerConfig::default();
    config.eval.threads = 1;
    config.eval.parallel_min_rows = 0;
    let server = Server::spawn(config).unwrap();
    let addr = server.addr();
    // A 50-edge chain so the join actually composes rows.
    let mut doc = String::new();
    for i in 0..50 {
        doc.push_str(&format!("<n{i}> <p> <n{}> .\n", i + 1));
    }
    client::post(addr, "/load?store=p", &doc).unwrap();

    // Filtered join sides force a HashJoin whose build side materialises —
    // the pipeline breaker where the streaming /query path parallelises
    // (fully-pipelined plans like a bare index join stay sequential by
    // design: their row pump is the limit-respecting cursor).
    let query = "(SELECT[1!=3](E) JOIN[1,2,3' | 3=1'] SELECT[1!=3](E))";

    // Sequential by default: the query runs, healthz counts it sequential.
    let seq = client::post(addr, "/query?store=p", query).unwrap();
    assert_eq!(seq.status, 200, "{}", seq.body);
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(json_u64(&health.body, "threads"), 1);
    assert_eq!(json_u64(&health.body, "queries_sequential"), 1);
    assert_eq!(json_u64(&health.body, "queries_parallel"), 0);

    // ?threads=4: same result set, parallel morsels actually execute.
    let par = client::post(addr, "/query?store=p&threads=4", query).unwrap();
    assert_eq!(par.status, 200, "{}", par.body);
    assert_eq!(json_u64(&par.body, "count"), json_u64(&seq.body, "count"));
    assert!(par.body.contains("\"cached\":false"), "{}", par.body);
    assert!(json_u64(&par.body, "parallel_morsels") > 0, "{}", par.body);
    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(json_u64(&health.body, "queries_parallel"), 1);
    assert_eq!(json_u64(&health.body, "queries_sequential"), 1);
    assert_eq!(json_u64(&health.body, "max_threads"), 16);

    // The degree is part of the cache key: repeating the parallel request
    // hits, and the sequential fragment was never shared with it.
    let again = client::post(addr, "/query?store=p&threads=4", query).unwrap();
    assert!(again.body.contains("\"cached\":true"), "{}", again.body);

    // An absurd ?threads= clamps instead of erroring; a malformed one is 400.
    let clamped = client::post(addr, "/explain?store=p&threads=9999", query).unwrap();
    assert_eq!(json_u64(&clamped.body, "threads"), 16);
    assert!(clamped.body.contains("[parallel×16]"), "{}", clamped.body);
    let bad = client::post(addr, "/query?store=p&threads=lots", query).unwrap();
    assert_eq!(bad.status, 400);

    // /explain reports the effective degree and tags parallel operators
    // (and at degree 1 it tags nothing).
    let explain = client::post(addr, "/explain?store=p&threads=4", query).unwrap();
    assert_eq!(json_u64(&explain.body, "threads"), 4);
    assert!(explain.body.contains("[parallel×4]"), "{}", explain.body);
    assert!(
        explain.body.contains("\"parallel\":true"),
        "{}",
        explain.body
    );
    let explain1 = client::post(addr, "/explain?store=p", query).unwrap();
    assert!(!explain1.body.contains("[parallel×"), "{}", explain1.body);

    // analyze=1 executes the plan: every materialised node reports an
    // `actual` row count next to its estimate, and the root actual equals
    // the query's cardinality.
    let analyzed = client::post(addr, "/explain?store=p&analyze=1", query).unwrap();
    assert_eq!(analyzed.status, 200, "{}", analyzed.body);
    assert!(analyzed.body.contains("\"actual\":"), "{}", analyzed.body);
    assert_eq!(
        json_u64(&analyzed.body, "rows"),
        json_u64(&seq.body, "count")
    );
    // A plain explain of the same text re-plans rather than re-serving the
    // pre-analyze fragment: the analyze run warmed the store's feedback
    // statistics, and the cache key carries their generation. The fresh
    // fragment has no actuals, reports its estimate sources, and *is*
    // cached at the new generation.
    let plain = client::post(addr, "/explain?store=p", query).unwrap();
    assert!(plain.body.contains("\"cached\":false"), "{}", plain.body);
    assert!(!plain.body.contains("\"actual\":"), "{}", plain.body);
    assert!(
        plain.body.contains("\"est_src\":\"stats\""),
        "{}",
        plain.body
    );
    let plain = client::post(addr, "/explain?store=p", query).unwrap();
    assert!(plain.body.contains("\"cached\":true"), "{}", plain.body);

    server.shutdown();
}
