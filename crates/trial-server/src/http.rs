//! A small hand-rolled HTTP/1.1 layer: request parsing and response writing.
//!
//! Deliberately minimal — exactly what the query service needs and no more:
//!
//! * request line + headers + `Content-Length` body (request bodies are
//!   never chunked);
//! * URL query-string parameters with `%XX` / `+` decoding (the path is
//!   `%XX`-decoded too, but keeps `+` literal — see [`percent_decode_path`]);
//! * keep-alive by default, honouring `Connection: close`;
//! * hard limits on header-section and body size, enforced *before* the
//!   bytes are buffered, so an untrusted client cannot balloon memory;
//! * **chunked transfer encoding on the response side** ([`ChunkedWriter`]):
//!   streamed query responses write rows as they are produced — first byte
//!   before the result size is known — and carry `count`/`truncated`/stats
//!   in HTTP **trailers**, keeping the connection reusable afterwards.

use std::collections::HashMap;
use std::io::{self, BufRead, Write};

/// Upper bound on the request line + headers, independent of the body limit.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (e.g. `/query`).
    pub path: String,
    /// Decoded query-string parameters, in order of appearance.
    pub params: Vec<(String, String)>,
    /// Raw request body.
    pub body: Vec<u8>,
    /// `true` if the client asked for `Connection: close`.
    pub close: bool,
    /// The client-supplied `X-Request-Id` header, if it was present and
    /// well-formed (≤ 64 chars of `[A-Za-z0-9._-]`). The router generates an
    /// ID when absent; either way the ID is echoed on the response and keyed
    /// into the flight recorder, so a request can be correlated across
    /// client logs, server traces and `/debug/slow`.
    pub request_id: Option<String>,
}

impl Request {
    /// First value of query-string parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or `None` if it is not valid UTF-8.
    pub fn body_utf8(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Outcome of reading one request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, well-formed request.
    Request(Request),
    /// The peer closed the connection (or timed out) before sending anything.
    Closed,
    /// The bytes were not a servable request; respond with this status and
    /// a structured error, then close the connection.
    Invalid {
        /// HTTP status to reply with (`400`, `413`, `505`, …).
        status: u16,
        /// Machine-readable error kind for the JSON body.
        kind: &'static str,
        /// Human-readable message.
        message: String,
    },
}

fn invalid(status: u16, kind: &'static str, message: impl Into<String>) -> ReadOutcome {
    ReadOutcome::Invalid {
        status,
        kind,
        message: message.into(),
    }
}

/// Reads one HTTP/1.1 request from `reader`, enforcing `max_body` on the
/// declared `Content-Length` before buffering the body.
///
/// `writer` is the response side of the same connection: when the client
/// sent `Expect: 100-continue` (curl does for bodies over 1 KiB), the
/// interim `100 Continue` is written there before the body is read — without
/// it every such request stalls for the client's expect timeout.
pub fn read_request<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    max_body: usize,
) -> io::Result<ReadOutcome> {
    // The whole head (request line + headers) is read through a `Take` so a
    // line that never ends cannot buffer more than MAX_HEAD_BYTES: when the
    // cap is hit, `read_line` returns a line without `\n` while bytes remain.
    // UFCS pins `Self = &mut R` so the reader is reborrowed, not moved.
    let mut head = io::Read::take(&mut *reader, MAX_HEAD_BYTES as u64);

    // Request line.
    let mut line = String::new();
    if head.read_line(&mut line)? == 0 {
        return Ok(ReadOutcome::Closed);
    }
    if !line.ends_with('\n') && head.limit() == 0 {
        return Ok(invalid(
            431,
            "headers_too_large",
            "request head exceeds 16 KiB",
        ));
    }
    let line_trimmed = line.trim_end();
    let mut parts = line_trimmed.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_uppercase(), t.to_owned(), v),
        _ => {
            return Ok(invalid(
                400,
                "bad_request",
                format!("malformed request line `{line_trimmed}`"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(invalid(
            505,
            "http_version",
            format!("unsupported protocol version `{version}`"),
        ));
    }

    // Headers (only the ones the service acts on are retained).
    let mut headers: HashMap<String, String> = HashMap::new();
    loop {
        let mut header = String::new();
        if head.read_line(&mut header)? == 0 {
            return Ok(ReadOutcome::Closed);
        }
        if !header.ends_with('\n') && head.limit() == 0 {
            return Ok(invalid(
                431,
                "headers_too_large",
                "request head exceeds 16 KiB",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_owned();
            // RFC 9110 §8.6: duplicate Content-Length headers must not be
            // silently reconciled — a proxy in front may honour a different
            // copy than we do, desyncing the framing (request smuggling).
            if name == "content-length" && headers.get(&name).is_some_and(|prev| *prev != value) {
                return Ok(invalid(
                    400,
                    "bad_request",
                    "conflicting Content-Length headers",
                ));
            }
            headers.insert(name, value);
        }
    }

    if headers.contains_key("transfer-encoding") {
        return Ok(invalid(
            400,
            "bad_request",
            "chunked transfer encoding is not supported; send Content-Length",
        ));
    }

    // Body, bounded by the declared Content-Length.
    let content_length = match headers.get("content-length") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return Ok(invalid(
                    400,
                    "bad_request",
                    format!("unparsable Content-Length `{v}`"),
                ))
            }
        },
        None => 0,
    };
    if content_length > max_body {
        return Ok(invalid(
            413,
            "payload_too_large",
            format!("request body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    if headers
        .get("expect")
        .map(|v| v.eq_ignore_ascii_case("100-continue"))
        .unwrap_or(false)
    {
        writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        writer.flush()?;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let close = headers
        .get("connection")
        .map(|v| v.eq_ignore_ascii_case("close"))
        .unwrap_or(false);

    let request_id = headers
        .get("x-request-id")
        .filter(|v| {
            !v.is_empty()
                && v.len() <= 64
                && v.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        })
        .cloned();

    let (path, params) = parse_target(&target);
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        params,
        body,
        close,
        request_id,
    }))
}

/// Splits a request target into its decoded path and query parameters.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let params = query
        .map(|q| {
            q.split('&')
                .filter(|pair| !pair.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(pair), String::new()),
                })
                .collect()
        })
        .unwrap_or_default();
    (percent_decode_path(path), params)
}

/// Decodes `%XX` escapes and `+`-as-space — the decoding for **query-string
/// components**. Invalid escapes pass through verbatim (lenient, like most
/// servers).
pub fn percent_decode(s: &str) -> String {
    decode_inner(s, true)
}

/// Decodes `%XX` escapes in a URL **path**. Per RFC 3986, `+` is an ordinary
/// path character — only `application/x-www-form-urlencoded` query
/// components spell space as `+` — so a path segment like `/stores/a+b`
/// keeps its plus sign (spaces in paths arrive as `%20`).
pub fn percent_decode_path(s: &str) -> String {
    decode_inner(s, false)
}

fn decode_inner(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP response: status plus body (JSON on every endpoint except
/// `/metrics`, which speaks the Prometheus text exposition format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// Optional `Retry-After` header value in seconds — set on `429` when
    /// admission control turns a request away.
    pub retry_after: Option<u64>,
    /// `Content-Type` of the body (default `application/json`).
    pub content_type: &'static str,
    /// Request ID echoed back as the `X-Request-Id` header.
    pub request_id: Option<String>,
}

impl Response {
    /// A `200 OK` response.
    pub fn ok(body: String) -> Response {
        Response::new(200, body)
    }

    /// A response with `status` and `body` and no extra headers.
    pub fn new(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            retry_after: None,
            content_type: "application/json",
            request_id: None,
        }
    }

    /// A `200 OK` response with an explicit content type (the `/metrics`
    /// exposition is `text/plain`).
    pub fn with_content_type(body: String, content_type: &'static str) -> Response {
        Response {
            content_type,
            ..Response::new(200, body)
        }
    }
}

/// The reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        410 => "Gone",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes `response` to `writer` as an HTTP/1.1 message.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    close: bool,
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        connection
    )?;
    if let Some(seconds) = response.retry_after {
        write!(writer, "Retry-After: {seconds}\r\n")?;
    }
    if let Some(id) = &response.request_id {
        write!(writer, "X-Request-Id: {id}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(response.body.as_bytes())?;
    writer.flush()
}

/// Target size of one response chunk: the streaming emitter buffers at most
/// this many body bytes before flushing them as a chunk, so server-side
/// response memory is O(chunk size) regardless of result cardinality.
pub const CHUNK_BYTES: usize = 8 * 1024;

/// A streaming HTTP/1.1 response using **chunked transfer encoding** with
/// trailers.
///
/// [`ChunkedWriter::begin`] writes the response head (status, headers, the
/// `Trailer:` declaration) and flushes it immediately — the client's
/// time-to-first-byte does not wait for the first result row, let alone the
/// last. Body bytes then accumulate into a bounded buffer flushed as HTTP
/// chunks of about [`CHUNK_BYTES`]; [`ChunkedWriter::finish`] writes the
/// terminal chunk plus the trailer fields (response facts unknowable up
/// front: row count, truncation, work counters). Keep-alive is preserved —
/// chunked framing delimits the message without a `Content-Length`.
///
/// If the connection dies mid-stream the response simply stops before the
/// terminal chunk; any HTTP client can detect the truncation, which is the
/// protocol-level reason streamed errors close the connection instead of
/// inventing an in-band error frame.
#[derive(Debug)]
pub struct ChunkedWriter<'w, W: Write> {
    writer: &'w mut W,
    buf: Vec<u8>,
}

impl<'w, W: Write> ChunkedWriter<'w, W> {
    /// Writes and flushes the chunked response head, declaring `trailers`
    /// (header names sent after the body) and echoing `request_id` as the
    /// `X-Request-Id` header, and returns the body writer.
    pub fn begin(
        writer: &'w mut W,
        status: u16,
        close: bool,
        trailers: &[&str],
        request_id: Option<&str>,
    ) -> io::Result<Self> {
        let connection = if close { "close" } else { "keep-alive" };
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n",
            status,
            status_text(status),
            connection
        )?;
        if let Some(id) = request_id {
            write!(writer, "X-Request-Id: {id}\r\n")?;
        }
        if !trailers.is_empty() {
            write!(writer, "Trailer: {}\r\n", trailers.join(", "))?;
        }
        writer.write_all(b"\r\n")?;
        writer.flush()?;
        Ok(ChunkedWriter {
            writer,
            buf: Vec::with_capacity(CHUNK_BYTES),
        })
    }

    /// Appends body text, flushing a chunk whenever the buffer reaches
    /// [`CHUNK_BYTES`].
    pub fn write_text(&mut self, text: &str) -> io::Result<()> {
        self.buf.extend_from_slice(text.as_bytes());
        if self.buf.len() >= CHUNK_BYTES {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Flushes buffered bytes as one chunk (no-op when empty).
    pub fn flush_chunk(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        write!(self.writer, "{:x}\r\n", self.buf.len())?;
        self.writer.write_all(&self.buf)?;
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()?;
        self.buf.clear();
        Ok(())
    }

    /// Writes the terminal chunk and the trailer fields, completing the
    /// message (the connection stays usable under keep-alive).
    pub fn finish(mut self, trailers: &[(&str, String)]) -> io::Result<()> {
        self.flush_chunk()?;
        self.writer.write_all(b"0\r\n")?;
        for (name, value) in trailers {
            write!(self.writer, "{name}: {value}\r\n")?;
        }
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(raw: &str) -> ReadOutcome {
        let mut reader = BufReader::new(raw.as_bytes());
        read_request(&mut reader, &mut Vec::new(), 1024).unwrap()
    }

    #[test]
    fn parses_get_with_params() {
        let out = read("GET /query?store=my%20db&x=a+b&flag HTTP/1.1\r\nHost: x\r\n\r\n");
        match out {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.path, "/query");
                assert_eq!(req.param("store"), Some("my db"));
                assert_eq!(req.param("x"), Some("a b"));
                assert_eq!(req.param("flag"), Some(""));
                assert_eq!(req.param("missing"), None);
                assert!(req.body.is_empty());
                assert!(!req.close);
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn parses_post_body_and_connection_close() {
        let out =
            read("POST /load HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello");
        match out {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.body_utf8(), Some("hello"));
                assert!(req.close);
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let out = read("POST /load HTTP/1.1\r\nContent-Length: 99999\r\n\r\n");
        match out {
            ReadOutcome::Invalid { status, kind, .. } => {
                assert_eq!(status, 413);
                assert_eq!(kind, "payload_too_large");
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_and_unsupported_requests() {
        assert!(matches!(
            read("garbage\r\n\r\n"),
            ReadOutcome::Invalid { status: 400, .. }
        ));
        assert!(matches!(
            read("GET / HTTP/2.0\r\n\r\n"),
            ReadOutcome::Invalid { status: 505, .. }
        ));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            ReadOutcome::Invalid { status: 400, .. }
        ));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"),
            ReadOutcome::Invalid { status: 400, .. }
        ));
        assert!(matches!(read(""), ReadOutcome::Closed));
        // Conflicting duplicate Content-Length headers are a smuggling
        // vector and must be rejected, not last-wins reconciled.
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 30\r\n\r\nhello"),
            ReadOutcome::Invalid { status: 400, .. }
        ));
        // Identical duplicates are tolerated.
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello"),
            ReadOutcome::Request(_)
        ));
    }

    #[test]
    fn expect_100_continue_gets_the_interim_response() {
        let raw = "POST /load HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nok";
        let mut reader = BufReader::new(raw.as_bytes());
        let mut interim = Vec::new();
        match read_request(&mut reader, &mut interim, 1024).unwrap() {
            ReadOutcome::Request(req) => assert_eq!(req.body_utf8(), Some("ok")),
            other => panic!("expected request, got {other:?}"),
        }
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
        // No Expect header: nothing interim is written.
        let mut reader = BufReader::new("GET / HTTP/1.1\r\n\r\n".as_bytes());
        let mut interim = Vec::new();
        read_request(&mut reader, &mut interim, 1024).unwrap();
        assert!(interim.is_empty());
    }

    #[test]
    fn giant_head_lines_are_cut_off_at_the_cap() {
        // A request line (or header line) with no newline must not buffer
        // beyond MAX_HEAD_BYTES: the Take cap turns it into a 431.
        let giant = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 * 1024));
        let mut reader = BufReader::new(giant.as_bytes());
        assert!(matches!(
            read_request(&mut reader, &mut Vec::new(), 1024).unwrap(),
            ReadOutcome::Invalid { status: 431, .. }
        ));
        let giant_header = format!(
            "GET / HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
            "b".repeat(64 * 1024)
        );
        let mut reader = BufReader::new(giant_header.as_bytes());
        assert!(matches!(
            read_request(&mut reader, &mut Vec::new(), 1024).unwrap(),
            ReadOutcome::Invalid { status: 431, .. }
        ));
    }

    #[test]
    fn percent_decoding_is_lenient() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("bad%2"), "bad%2");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("%E2%9C%B6"), "✶");
    }

    #[test]
    fn path_decoding_keeps_plus_literal() {
        // `+` only means space in form-encoded query components; in the
        // path it is an ordinary character (RFC 3986).
        assert_eq!(percent_decode_path("/stores/a+b"), "/stores/a+b");
        assert_eq!(percent_decode_path("/stores/a%20b"), "/stores/a b");
        assert_eq!(percent_decode_path("/stores/a%2Bb"), "/stores/a+b");
        assert_eq!(percent_decode_path("bad%2"), "bad%2");
    }

    #[test]
    fn request_path_with_plus_survives_while_query_plus_decodes() {
        let out = read("GET /stores/a+b?x=a+b HTTP/1.1\r\nHost: x\r\n\r\n");
        match out {
            ReadOutcome::Request(req) => {
                assert_eq!(req.path, "/stores/a+b");
                assert_eq!(req.param("x"), Some("a b"));
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn response_writing_includes_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::ok("{\"a\":1}".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"a\":1}"));
    }

    #[test]
    fn rejected_responses_can_carry_retry_after() {
        let mut out = Vec::new();
        let mut response = Response::new(429, "{}".into());
        response.retry_after = Some(2);
        write_response(&mut out, &response, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn chunked_responses_frame_body_and_trailers() {
        let mut out = Vec::new();
        let mut writer =
            ChunkedWriter::begin(&mut out, 200, false, &["X-Count"], Some("req-1")).unwrap();
        writer.write_text("{\"rows\":[").unwrap();
        writer.write_text("1,2,3]}").unwrap();
        writer.finish(&[("X-Count", "3".into())]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("X-Request-Id: req-1\r\n"));
        assert!(text.contains("Trailer: X-Count\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Content-Length"));
        // One 16-byte chunk, terminal chunk, then the trailer.
        let body = text.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(body, "10\r\n{\"rows\":[1,2,3]}\r\n0\r\nX-Count: 3");
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn chunked_writer_flushes_at_the_chunk_size() {
        let mut out = Vec::new();
        let mut writer = ChunkedWriter::begin(&mut out, 200, true, &[], None).unwrap();
        let big = "x".repeat(CHUNK_BYTES + 10);
        writer.write_text(&big).unwrap();
        // The full buffer was flushed as one chunk the moment it crossed the
        // threshold; the terminal chunk follows on finish.
        writer.finish(&[]).unwrap();
        let text = String::from_utf8(out).unwrap();
        let chunk_header = format!("{:x}\r\n", CHUNK_BYTES + 10);
        assert!(text.contains(&chunk_header));
        assert!(text.ends_with("0\r\n\r\n"));
        assert!(!text.contains("Trailer"));
    }
}
