//! `trial-serve` — the TriAL query service as a standalone binary.
//!
//! ```bash
//! trial-serve --preload transport --port 7878 --workers 8
//! curl -s localhost:7878/query -d "(E JOIN[1,3',3 | 2=1'] E)"
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use trial_server::{preload_workload, Server, ServerConfig, WORKLOAD_NAMES};

/// Set from the signal handler; the main loop polls it and drains.
static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM/SIGINT handlers that flip [`TERMINATE`]. Storing to a
/// static atomic is async-signal-safe; everything else (draining, printing)
/// happens on the main thread after the poll loop observes the flag.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_term(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_term);
        signal(SIGTERM, on_term);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

const USAGE: &str = "\
trial-serve — serve TriAL queries over HTTP

USAGE:
    trial-serve [OPTIONS]

OPTIONS:
    --host <ADDR>        interface to bind            [default: 127.0.0.1]
    --port <PORT>        port to bind (0 = ephemeral) [default: 7878]
    --workers <N>        worker threads               [default: 4]
    --preload <NAME>     preload a workload store (repeatable);
                         names: figure1 transport social random chain
                                cycle grid clique
    --cache <N>          query-cache entries (0 = off) [default: 128]
    --eval-threads <N>   intra-query parallelism degree (0 = all cores);
                         per-request override: ?threads= (clamped to 16)
                                                       [default: 1]
    --max-body <BYTES>   request body limit            [default: 8388608]
    --max-universe <N>   universal-relation cap        [default: 1000000]
    --max-rounds <N>     fixpoint-round cap per star   [default: 10000]
    --profile-sample <N> per-operator profiling stride: time every N-th
                         cursor pull (0 = off outside ?analyze=1; also
                         settable via TRIAL_PROFILE_SAMPLE)  [default: 0]
    --flight-slots <N>   flight-recorder capacity (slowest + errored spans
                         each; 0 disables /debug/slow)       [default: 16]
    --no-obs             disable request tracing and latency histograms
                         (service counters and /metrics itself stay live)
    --default-timeout-ms <MS>
                         evaluation deadline applied to every query that
                         doesn't set its own ?timeout_ms= (0 = none; also
                         settable via TRIAL_DEFAULT_TIMEOUT_MS) [default: 0]
    --drain-grace-ms <MS>
                         how long SIGTERM lets in-flight requests finish
                         before cancelling them              [default: 2000]
    --chaos <SPEC>       arm fault injection, e.g. \"eval=panic@3,
                         stream.chunk=ioerror@2\" (also settable via
                         TRIAL_CHAOS; see the chaos module docs)
    -h, --help           print this help

SIGNALS:
    SIGTERM/SIGINT    graceful drain: stop accepting (late requests get a
                      structured 503), let in-flight work finish within the
                      grace window, cancel stragglers, flush /debug/slow

ENDPOINTS:
    POST /query       TriAL expression (plain text) -> JSON triples + stats
                      (?limit=, ?threads=)
    POST /explain     TriAL expression -> rendered physical plan; ?analyze=1
                      also runs it and reports actual rows + per-node
                      elapsed_us next to the estimates
    POST /load        N-Triples document (?store=, ?relation=) -> new epoch
    GET  /stores      store inventory
    GET  /healthz     liveness + eval-thread & cache counters
    GET  /metrics     Prometheus text exposition of every server metric
    GET  /debug/slow  slow-query flight recorder: phase-timed span records
                      for the slowest and all errored/shed requests
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("trial-serve: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut config = ServerConfig {
        port: 7878,
        ..ServerConfig::default()
    };
    let mut preloads: Vec<String> = Vec::new();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            "--host" => config.host = take_value(&args, &mut i)?,
            "--port" => config.port = parse_num(&take_value(&args, &mut i)?, "--port")?,
            "--workers" => {
                config.workers =
                    parse_num::<usize>(&take_value(&args, &mut i)?, "--workers")?.max(1)
            }
            "--preload" => preloads.push(take_value(&args, &mut i)?),
            "--cache" => config.cache_capacity = parse_num(&take_value(&args, &mut i)?, "--cache")?,
            "--eval-threads" => {
                let n: usize = parse_num(&take_value(&args, &mut i)?, "--eval-threads")?;
                // 0 = auto-detect; anything else is clamped to the same
                // ceiling the per-request ?threads= knob gets.
                let n = if n == 0 {
                    trial_eval::available_threads()
                } else {
                    n
                };
                config.eval.threads = n.clamp(1, trial_server::MAX_EVAL_THREADS);
            }
            "--max-body" => {
                config.max_body_bytes = parse_num(&take_value(&args, &mut i)?, "--max-body")?
            }
            "--max-universe" => {
                config.eval.max_universe = parse_num(&take_value(&args, &mut i)?, "--max-universe")?
            }
            "--max-rounds" => {
                config.eval.max_fixpoint_rounds =
                    parse_num(&take_value(&args, &mut i)?, "--max-rounds")?
            }
            "--profile-sample" => {
                config.eval.profile_sample =
                    parse_num(&take_value(&args, &mut i)?, "--profile-sample")?
            }
            "--flight-slots" => {
                config.flight_slots = parse_num(&take_value(&args, &mut i)?, "--flight-slots")?
            }
            "--no-obs" => config.observe = false,
            "--default-timeout-ms" => {
                let ms: u64 = parse_num(&take_value(&args, &mut i)?, "--default-timeout-ms")?;
                config.default_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--drain-grace-ms" => {
                let ms: u64 = parse_num(&take_value(&args, &mut i)?, "--drain-grace-ms")?;
                config.drain_grace = Duration::from_millis(ms);
            }
            "--chaos" => config.chaos = Some(take_value(&args, &mut i)?),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
        i += 1;
    }

    // Generate preloads before binding so a typo fails fast.
    let mut stores = Vec::new();
    for name in &preloads {
        let store = preload_workload(name).ok_or_else(|| {
            format!(
                "unknown workload `{name}`; available: {}",
                WORKLOAD_NAMES.join(" ")
            )
        })?;
        stores.push((name.clone(), store));
    }

    let drain_grace = config.drain_grace;
    let server = Server::spawn(config).map_err(|e| format!("failed to bind: {e}"))?;
    for (name, store) in stores {
        let triples = store.triple_count();
        let epoch = server.registry().set(&name, store);
        println!("preloaded store `{name}` (epoch {epoch}, {triples} triples)");
    }
    println!("trial-serve listening on http://{}", server.addr());
    println!("try: curl -s http://{}/healthz", server.addr());

    // Serve until asked to stop, then drain: refuse new work, let in-flight
    // requests finish within the grace window, cancel stragglers with
    // reason `shutdown`, and flush the flight recorder so the final spans
    // aren't lost with the process.
    install_signal_handlers();
    while !TERMINATE.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!(
        "trial-serve: draining (grace {} ms)",
        drain_grace.as_millis()
    );
    let spans = server.drain();
    for span in &spans {
        println!(
            "trial-serve: flushed span {} {} {} -> {} ({} us{})",
            span.request_id,
            span.method,
            span.path,
            span.status,
            span.total_us,
            span.error_kind
                .as_deref()
                .map(|k| format!(", {k}"))
                .unwrap_or_default()
        );
    }
    println!("trial-serve: drained, exiting");
    Ok(ExitCode::SUCCESS)
}

/// Consumes the value of the flag at `args[*i]`, advancing the cursor.
fn take_value(args: &[String], i: &mut usize) -> Result<String, String> {
    let flag = args[*i].clone();
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse::<T>()
        .map_err(|_| format!("unparsable value `{raw}` for {flag}"))
}
