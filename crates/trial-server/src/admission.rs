//! Per-store admission control for query evaluation.
//!
//! Every worker thread that evaluates a query first acquires a permit from
//! a per-store counting semaphore. Under saturation the semaphore degrades
//! in two explicit steps instead of queueing unboundedly:
//!
//! 1. up to [`Admission::permits`] evaluations per store run concurrently;
//! 2. up to `max_waiters` further requests **wait** (bounded, with a
//!    deadline) for a permit to free up;
//! 3. everything beyond that is **rejected immediately** with a structured
//!    `429 Too Many Requests` carrying a `Retry-After` hint — the client
//!    sees a complete, parseable response instead of a hung socket.
//!
//! Cache hits bypass admission entirely (they run no evaluation), and
//! waiters that time out count as rejections. The `admitted` / `rejected` /
//! live `in_flight`+`waiting` counters are served in the `admission`
//! section of `/healthz`, which is how the saturation harness (and
//! operators) observe shedding.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct Gate {
    in_flight: usize,
    waiting: usize,
}

/// A per-store counting semaphore with a bounded wait queue.
#[derive(Debug)]
pub struct Admission {
    permits: usize,
    max_waiters: usize,
    max_wait: Duration,
    gates: Mutex<HashMap<String, Gate>>,
    freed: Condvar,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

/// A held admission slot; dropping it releases the permit and wakes one
/// waiter. Holds an `Arc` to the semaphore so streaming responses can carry
/// their permit across the whole chunked write.
#[derive(Debug)]
pub struct AdmissionPermit {
    admission: Arc<Admission>,
    store: String,
}

impl Admission {
    /// Creates a semaphore admitting `permits` concurrent evaluations per
    /// store, queueing at most `max_waiters` more for up to `max_wait`.
    /// `permits == 0` disables admission control (everything is admitted).
    pub fn new(permits: usize, max_waiters: usize, max_wait: Duration) -> Self {
        Admission {
            permits,
            max_waiters,
            max_wait,
            gates: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Tries to admit one evaluation against `store`: returns a permit, or
    /// `Err(retry_after_seconds)` when the store is saturated and the
    /// bounded wait queue is full (or the wait deadline passed).
    pub fn acquire(self: &Arc<Self>, store: &str) -> Result<AdmissionPermit, u64> {
        if self.permits == 0 {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(AdmissionPermit {
                admission: Arc::clone(self),
                store: String::new(),
            });
        }
        let mut gates = self
            .gates
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        {
            let gate = gates.entry(store.to_owned()).or_default();
            if gate.in_flight < self.permits {
                gate.in_flight += 1;
                drop(gates);
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(AdmissionPermit {
                    admission: Arc::clone(self),
                    store: store.to_owned(),
                });
            }
            if gate.waiting >= self.max_waiters {
                drop(gates);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(self.retry_after_secs());
            }
            gate.waiting += 1;
        }
        // Bounded wait: a permit may free up before the deadline. The
        // condvar is shared across stores, so spurious wakeups for other
        // stores just loop; correctness only needs the re-check.
        let deadline = Instant::now() + self.max_wait;
        loop {
            let now = Instant::now();
            if now >= deadline {
                Self::leave_queue(&mut gates, store);
                drop(gates);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(self.retry_after_secs());
            }
            let (next, timeout) = self
                .freed
                .wait_timeout(gates, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            gates = next;
            let gate = gates.entry(store.to_owned()).or_default();
            if gate.in_flight < self.permits {
                gate.in_flight += 1;
                gate.waiting -= 1;
                drop(gates);
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(AdmissionPermit {
                    admission: Arc::clone(self),
                    store: store.to_owned(),
                });
            }
            if timeout.timed_out() {
                Self::leave_queue(&mut gates, store);
                drop(gates);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(self.retry_after_secs());
            }
        }
    }

    fn leave_queue(gates: &mut HashMap<String, Gate>, store: &str) {
        if let Some(gate) = gates.get_mut(store) {
            gate.waiting = gate.waiting.saturating_sub(1);
            if gate.in_flight == 0 && gate.waiting == 0 {
                gates.remove(store);
            }
        }
    }

    /// The `Retry-After` hint for rejections: the full wait deadline already
    /// passed (or would), so suggest retrying after roughly that long again,
    /// rounded up to at least one second.
    fn retry_after_secs(&self) -> u64 {
        self.max_wait.as_secs().max(1)
    }

    /// Configured permits per store (0 = admission disabled).
    pub fn permits(&self) -> usize {
        self.permits
    }

    /// Configured wait-queue bound per store.
    pub fn max_waiters(&self) -> usize {
        self.max_waiters
    }

    /// Evaluations admitted since startup (including bypasses when disabled).
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests shed with a 429 since startup.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Live totals `(in_flight, waiting)` summed across stores.
    pub fn live(&self) -> (u64, u64) {
        let gates = self
            .gates
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        gates.values().fold((0, 0), |(f, w), gate| {
            (f + gate.in_flight as u64, w + gate.waiting as u64)
        })
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        if self.admission.permits == 0 {
            return;
        }
        let mut gates = self
            .admission
            .gates
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(gate) = gates.get_mut(&self.store) {
            gate.in_flight = gate.in_flight.saturating_sub(1);
            if gate.in_flight == 0 && gate.waiting == 0 {
                gates.remove(&self.store);
            }
        }
        drop(gates);
        self.admission.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admission(permits: usize, waiters: usize, wait_ms: u64) -> Arc<Admission> {
        Arc::new(Admission::new(
            permits,
            waiters,
            Duration::from_millis(wait_ms),
        ))
    }

    #[test]
    fn permits_bound_concurrency_and_release_on_drop() {
        let a = admission(2, 0, 10);
        let p1 = a.acquire("s").unwrap();
        let _p2 = a.acquire("s").unwrap();
        assert_eq!(a.live(), (2, 0));
        // Saturated with an empty wait queue: immediate rejection.
        assert!(a.acquire("s").is_err());
        // A different store has its own gate.
        let _other = a.acquire("t").unwrap();
        drop(p1);
        let _p3 = a.acquire("s").unwrap();
        assert_eq!(a.admitted(), 4);
        assert_eq!(a.rejected(), 1);
    }

    #[test]
    fn waiters_are_bounded_and_time_out() {
        let a = admission(1, 1, 30);
        let held = a.acquire("s").unwrap();
        // One waiter fits in the queue and times out after ~max_wait.
        let waiter = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || a.acquire("s").map(|_| ()))
        };
        // Give the waiter time to enqueue, then overflow the queue.
        std::thread::sleep(Duration::from_millis(5));
        let overflow = a.acquire("s");
        assert_eq!(overflow.err(), Some(1)); // retry-after ≥ 1s hint
        assert!(waiter.join().unwrap().is_err());
        assert_eq!(a.rejected(), 2);
        drop(held);
        assert_eq!(a.live(), (0, 0));
    }

    #[test]
    fn a_freed_permit_wakes_a_waiter_in_time() {
        let a = admission(1, 4, 2_000);
        let held = a.acquire("s").unwrap();
        let waiter = {
            let a = Arc::clone(&a);
            std::thread::spawn(move || a.acquire("s").map(drop))
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(held); // frees the permit well before the 2s deadline
        assert!(waiter.join().unwrap().is_ok());
        assert_eq!(a.rejected(), 0);
        assert_eq!(a.live(), (0, 0));
    }

    #[test]
    fn zero_permits_disables_admission() {
        let a = admission(0, 0, 10);
        let permits: Vec<_> = (0..64).map(|_| a.acquire("s").unwrap()).collect();
        assert_eq!(a.admitted(), 64);
        assert_eq!(a.rejected(), 0);
        drop(permits);
    }
}
