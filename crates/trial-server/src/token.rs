//! Opaque resumable-pagination cursor tokens.
//!
//! A truncated **ordered** `/query?stream=1` response carries an
//! `X-Trial-Cursor` trailer: an opaque token encoding everything the server
//! needs to resume the stream exactly after the last row it sent —
//! `(store, epoch, order, last permutation key)`. Resuming is **not** a
//! replay: the engine seeks the permutation index to the key's successor
//! (`RangeCursor::seek`, an `O(log n)` partition point), so page `n+1` costs
//! the same as page 1 regardless of how deep into the result it starts.
//!
//! The wire form is URL-safe base64 (no padding) over a versioned plain-text
//! payload with an FNV-1a checksum:
//!
//! ```text
//! v1|{store}|{epoch}|{order}|{s},{p},{o}|{fnv1a64:016x}
//! ```
//!
//! Tokens are *opaque but honest*: nothing in them is secret (the fields are
//! the client's own request parameters plus a row key it already received),
//! so the checksum guards against corruption and accidental cross-server
//! reuse, not against tampering. Validation is strict and structured:
//!
//! * undecodable / checksum-mismatched / wrong-version tokens → `400
//!   bad_cursor`;
//! * a token minted against an older epoch of the store → `410 stale_cursor`
//!   (the store was reloaded; row keys from the old snapshot are
//!   meaningless in the new one);
//! * a token naming a different store than the request resolves to → `400
//!   bad_cursor`.

use std::fmt::Write as _;
use trial_core::{ObjectId, Permutation};

/// The decoded contents of a pagination cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CursorToken {
    /// Registry name of the store the stream ran against.
    pub store: String,
    /// Epoch of the snapshot the row keys belong to.
    pub epoch: u64,
    /// The permutation whose key order the stream follows.
    pub order: Permutation,
    /// The permutation key of the **last row already delivered**; the
    /// resumed stream starts strictly after it.
    pub last: [ObjectId; 3],
}

/// Why a token failed to decode. All variants map to `400 bad_cursor` —
/// stale-epoch detection happens *after* decoding, against the live store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MalformedToken;

const VERSION: &str = "v1";

/// URL-safe base64 alphabet (RFC 4648 §5), emitted without padding.
const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

fn b64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = u32::from(b[0]) << 16 | u32::from(b[1]) << 8 | u32::from(b[2]);
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        if chunk.len() > 1 {
            out.push(B64[(n >> 6) as usize & 63] as char);
        }
        if chunk.len() > 2 {
            out.push(B64[n as usize & 63] as char);
        }
    }
    out
}

fn b64_value(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some(u32::from(c - b'A')),
        b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
        b'-' => Some(62),
        b'_' => Some(63),
        _ => None,
    }
}

fn b64_decode(text: &str) -> Option<Vec<u8>> {
    let bytes = text.as_bytes();
    if bytes.len() % 4 == 1 {
        return None; // no valid unpadded base64 length is ≡ 1 (mod 4)
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3 + 2);
    for chunk in bytes.chunks(4) {
        let mut n: u32 = 0;
        for &c in chunk {
            n = n << 6 | b64_value(c)?;
        }
        // Left-align a short final group so the high bytes are the data.
        n <<= 6 * (4 - chunk.len());
        out.push((n >> 16) as u8);
        if chunk.len() > 2 {
            out.push((n >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(n as u8);
        }
    }
    Some(out)
}

/// 64-bit FNV-1a over `data` — cheap corruption detection, not a MAC.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl CursorToken {
    /// Renders the opaque wire form.
    pub fn encode(&self) -> String {
        let mut payload = format!(
            "{VERSION}|{}|{}|{}|{},{},{}",
            self.store,
            self.epoch,
            self.order.name(),
            self.last[0].0,
            self.last[1].0,
            self.last[2].0,
        );
        let checksum = fnv1a64(payload.as_bytes());
        write!(payload, "|{checksum:016x}").expect("writing to String cannot fail");
        b64_encode(payload.as_bytes())
    }

    /// Decodes and checksum-verifies a wire token. Epoch/store validation
    /// against the live registry is the caller's job.
    pub fn decode(text: &str) -> Result<CursorToken, MalformedToken> {
        let raw = b64_decode(text).ok_or(MalformedToken)?;
        let payload = String::from_utf8(raw).map_err(|_| MalformedToken)?;
        let (body, checksum_hex) = payload.rsplit_once('|').ok_or(MalformedToken)?;
        let checksum = u64::from_str_radix(checksum_hex, 16).map_err(|_| MalformedToken)?;
        if checksum_hex.len() != 16 || fnv1a64(body.as_bytes()) != checksum {
            return Err(MalformedToken);
        }
        let mut parts = body.split('|');
        let version = parts.next().ok_or(MalformedToken)?;
        if version != VERSION {
            return Err(MalformedToken);
        }
        let store = parts.next().ok_or(MalformedToken)?.to_owned();
        let epoch = parts
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or(MalformedToken)?;
        let order = parts
            .next()
            .and_then(Permutation::parse)
            .ok_or(MalformedToken)?;
        let key_text = parts.next().ok_or(MalformedToken)?;
        if parts.next().is_some() {
            return Err(MalformedToken);
        }
        let mut components = key_text.split(',');
        let mut last = [ObjectId(0); 3];
        for slot in &mut last {
            *slot = components
                .next()
                .and_then(|s| s.parse::<u32>().ok())
                .map(ObjectId)
                .ok_or(MalformedToken)?;
        }
        if components.next().is_some() {
            return Err(MalformedToken);
        }
        Ok(CursorToken {
            store,
            epoch,
            order,
            last,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token() -> CursorToken {
        CursorToken {
            store: "transport".into(),
            epoch: 3,
            order: Permutation::Pos,
            last: [ObjectId(7), ObjectId(0), ObjectId(u32::MAX)],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let t = token();
        let wire = t.encode();
        // Opaque: URL-safe characters only, no raw payload text visible.
        assert!(wire
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_'));
        assert!(!wire.contains("transport"));
        assert_eq!(CursorToken::decode(&wire).unwrap(), t);
    }

    #[test]
    fn round_trips_all_orders_and_awkward_store_names() {
        for order in Permutation::ALL {
            for store in ["s", "a b/c?d=e", "store-with-|pipe"] {
                let t = CursorToken {
                    store: store.into(),
                    epoch: u64::MAX,
                    order,
                    last: [ObjectId(0), ObjectId(1), ObjectId(2)],
                };
                // A `|` in the store name corrupts the payload framing; the
                // checksum still matches (it covers the corrupted framing),
                // so decode either fails or returns a *different* token —
                // never panics. Pipe-free names must round-trip exactly.
                match CursorToken::decode(&t.encode()) {
                    Ok(decoded) if !store.contains('|') => assert_eq!(decoded, t),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn rejects_corruption_and_garbage() {
        let wire = token().encode();
        // Flip one character: checksum mismatch or framing damage.
        let mut corrupted = wire.clone().into_bytes();
        corrupted[3] = if corrupted[3] == b'A' { b'B' } else { b'A' };
        let corrupted = String::from_utf8(corrupted).unwrap();
        assert!(CursorToken::decode(&corrupted).is_err());
        // Truncation.
        assert!(CursorToken::decode(&wire[..wire.len() / 2]).is_err());
        // Outright garbage, invalid alphabet, empty.
        assert!(CursorToken::decode("not!base64*").is_err());
        assert!(CursorToken::decode("").is_err());
        assert!(CursorToken::decode("AAAA").is_err());
        // A well-formed payload with the wrong version string.
        let payload = "v9|s|1|spo|1,2,3";
        let with_sum = format!("{payload}|{:016x}", super::fnv1a64(payload.as_bytes()));
        assert!(CursorToken::decode(&super::b64_encode(with_sum.as_bytes())).is_err());
    }

    #[test]
    fn base64_round_trips_arbitrary_bytes() {
        for len in 0..40 {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(b64_decode(&b64_encode(&data)).unwrap(), data);
        }
        assert!(b64_decode("AAAAA").is_none()); // length ≡ 1 (mod 4)
    }
}
