//! Server lifecycle: listener, fixed worker thread pool, shutdown.
//!
//! The shape is the classic std-only accept loop: one acceptor thread pulls
//! connections off a [`TcpListener`] and hands them to a fixed pool of
//! worker threads over an `mpsc` channel (workers share the receiver behind
//! a mutex). Each worker speaks HTTP/1.1 with keep-alive on its connection
//! and dispatches requests through [`crate::routes`]. All shared state lives
//! in one `Arc<ServerState>`; queries clone store snapshots out of the
//! registry and never hold a lock while evaluating.

use crate::admission::Admission;
use crate::cache::{PrefixCache, QueryCache};
use crate::chaos::Chaos;
use crate::http::{self, ReadOutcome, Response};
use crate::metrics::Metrics;
use crate::registry::StoreRegistry;
use crate::routes::{self, Routed};
use crate::trace::{FlightRecorder, Span};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use trial_eval::{CancelReason, CancelToken, EvalOptions};

/// Configuration for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Interface to bind (default `127.0.0.1`).
    pub host: String,
    /// Port to bind; 0 asks the OS for an ephemeral port.
    pub port: u16,
    /// Number of worker threads handling connections.
    pub workers: usize,
    /// Per-request body size limit in bytes (requests above it get `413`).
    pub max_body_bytes: usize,
    /// Query-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Evaluation limits applied to **every** query. The defaults are much
    /// tighter than the library defaults because the input is untrusted: a
    /// bounded universe (`COMPL`/`U` cannot cube a large store) and a
    /// bounded number of star rounds.
    pub eval: EvalOptions,
    /// Read timeout per socket read on a kept-alive connection. Together
    /// with the 16 KiB head cap and the body limit this bounds what a slow
    /// client can make a worker buffer, but a deliberately drip-feeding
    /// client can still pin a blocking worker for a long time (classic
    /// slowloris) — an accepted trade-off of the thread-per-connection
    /// design; front the service with a reverse proxy if exposed to
    /// adversarial networks.
    pub read_timeout: Duration,
    /// Maximum number of named stores `/load` may create — together with
    /// `max_store_triples` this caps how much resident memory well-formed
    /// clients can pin, since stores have no expiry or delete endpoint.
    pub max_stores: usize,
    /// Maximum triples a single store may accumulate across loads; a load
    /// that would exceed it gets a structured `422`.
    pub max_store_triples: usize,
    /// Maximum concurrent query evaluations **per store** before admission
    /// control starts queueing and shedding (0 disables admission). Cache
    /// hits bypass admission entirely.
    pub admission_permits: usize,
    /// How many saturated requests per store may **wait** for a permit
    /// before further arrivals are rejected outright with `429`.
    pub admission_max_waiters: usize,
    /// How long a queued request waits for a permit before giving up with
    /// `429` (also the basis of the `Retry-After` hint).
    pub admission_wait: Duration,
    /// Whether request tracing and latency histograms are recorded
    /// (`trial-serve --no-obs` turns this off). Service counters and
    /// `/metrics` itself stay live either way — disabling observation only
    /// skips the per-request clock reads, span allocation, histogram
    /// samples and flight-recorder writes, which is what the
    /// `observability_overhead` bench measures.
    pub observe: bool,
    /// Flight-recorder capacity: keep this many slowest successful spans
    /// plus this many most-recent errored/shed spans (0 disables the
    /// recorder; `/debug/slow` then serves empty lists).
    pub flight_slots: usize,
    /// Default deadline applied to every fresh `/query` evaluation that does
    /// not choose its own with `?timeout_ms=` (`None` = no default; a
    /// per-request `?timeout_ms=0` opts out of the default explicitly).
    /// Expired queries get a structured `408 deadline_exceeded` on buffered
    /// responses and an `X-Trial-Error` trailer on chunked ones, and always
    /// release their admission permit, worker threads and exchange lanes.
    /// The `TRIAL_DEFAULT_TIMEOUT_MS` environment variable seeds the
    /// default (read once per process; 0 or unset = none).
    pub default_timeout: Option<Duration>,
    /// How long [`Server::drain`] waits for in-flight requests to finish on
    /// their own before cancelling the stragglers with
    /// [`trial_eval::CancelReason::Shutdown`].
    pub drain_grace: Duration,
    /// Fault-injection spec (see [`crate::chaos`]); `None` disables
    /// injection entirely. Seeded from the `TRIAL_CHAOS` environment
    /// variable, settable with `trial-serve --chaos`.
    pub chaos: Option<String>,
}

/// The process-wide default for [`ServerConfig::default_timeout`]: the
/// `TRIAL_DEFAULT_TIMEOUT_MS` environment variable if set to a positive
/// integer (read once), otherwise `None` (no server-side deadline). CI runs
/// the whole suite a second time with a low value to prove every test
/// finishes under an armed deadline without spurious 408s.
pub fn default_timeout_ms() -> Option<u64> {
    static DEFAULT: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("TRIAL_DEFAULT_TIMEOUT_MS")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
    })
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".into(),
            port: 0,
            workers: 4,
            max_body_bytes: 8 * 1024 * 1024,
            cache_capacity: 128,
            eval: EvalOptions {
                max_universe: 1_000_000,
                max_fixpoint_rounds: 10_000,
                ..EvalOptions::default()
            },
            read_timeout: Duration::from_secs(10),
            max_stores: 64,
            max_store_triples: 5_000_000,
            // Generous defaults: admission only bites when a store is
            // genuinely saturated, far beyond the default 4-worker pool.
            admission_permits: 64,
            admission_max_waiters: 64,
            admission_wait: Duration::from_millis(500),
            observe: true,
            flight_slots: 16,
            default_timeout: default_timeout_ms().map(Duration::from_millis),
            drain_grace: Duration::from_secs(2),
            chaos: std::env::var("TRIAL_CHAOS").ok().filter(|s| !s.is_empty()),
        }
    }
}

/// The in-flight request registry: one armed [`CancelToken`] per fresh
/// evaluation, registered before admission and pruned lazily — a token whose
/// every other clone has been dropped ([`CancelToken::is_unique`]) belongs
/// to a finished request. [`Server::drain`] cancels whatever is left after
/// the grace window with [`CancelReason::Shutdown`].
#[derive(Debug, Default)]
pub(crate) struct Inflight {
    tokens: Mutex<Vec<CancelToken>>,
}

impl Inflight {
    /// Registers an armed token (inert tokens have nothing to cancel),
    /// pruning tokens whose requests have finished.
    pub(crate) fn register(&self, token: &CancelToken) {
        if !token.is_armed() {
            return;
        }
        let mut tokens = self
            .tokens
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        tokens.retain(|t| !t.is_unique());
        tokens.push(token.clone());
    }

    /// The number of registered tokens whose requests are still live.
    pub(crate) fn live(&self) -> usize {
        let mut tokens = self
            .tokens
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        tokens.retain(|t| !t.is_unique());
        tokens.len()
    }

    /// Cancels every live token with `reason` and empties the registry
    /// (latches are sticky — the running queries keep their clones).
    /// Returns how many were still live.
    pub(crate) fn cancel_all(&self, reason: CancelReason) -> usize {
        let mut tokens = self
            .tokens
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        tokens.retain(|t| !t.is_unique());
        for token in tokens.iter() {
            token.cancel(reason);
        }
        let live = tokens.len();
        tokens.clear();
        live
    }
}

/// Shared server state: the store registry, the query cache, evaluation
/// limits, and the observability surface (metrics + flight recorder).
///
/// The caches, the admission semaphore and the store registry sit behind
/// `Arc`s because the metric registry's fn-backed series read them at
/// scrape time — `/metrics` and `/healthz` observe the same atomics by
/// construction. Service counters live in [`Metrics`] for the same reason.
#[derive(Debug)]
pub struct ServerState {
    pub(crate) registry: Arc<StoreRegistry>,
    pub(crate) cache: Arc<QueryCache>,
    /// Prefix-closed cache of ordered results: one deep prefix serves every
    /// smaller `?limit=` by slicing.
    pub(crate) prefix: Arc<PrefixCache>,
    /// Per-store admission semaphore; `Arc` so streaming responses can hold
    /// their permit across the whole chunked write.
    pub(crate) admission: Arc<Admission>,
    pub(crate) eval: EvalOptions,
    pub(crate) max_stores: usize,
    pub(crate) max_store_triples: usize,
    /// The metric registry behind `GET /metrics`, also owning the service
    /// counters `/healthz` reports.
    pub(crate) metrics: Metrics,
    /// Slow/errored request spans behind `GET /debug/slow`.
    pub(crate) recorder: FlightRecorder,
    /// Whether per-request tracing and histogram sampling run (see
    /// [`ServerConfig::observe`]).
    pub(crate) observe: bool,
    pub(crate) started: Instant,
    /// The server-wide default deadline for fresh evaluations.
    pub(crate) default_timeout: Option<Duration>,
    /// Armed cancel tokens of in-flight requests, for the drain path.
    pub(crate) inflight: Inflight,
    /// The fault-injection plan (inert unless configured).
    pub(crate) chaos: Chaos,
    /// Set by [`Server::drain`]: new work is refused with a structured
    /// `503 shutdown` and keep-alive connections close after the response
    /// in flight.
    pub(crate) draining: AtomicBool,
}

impl ServerState {
    fn new(config: &ServerConfig) -> io::Result<Self> {
        let started = Instant::now();
        let registry = Arc::new(StoreRegistry::new());
        let cache = Arc::new(QueryCache::new(config.cache_capacity));
        let prefix = Arc::new(PrefixCache::new(config.cache_capacity));
        let admission = Arc::new(Admission::new(
            config.admission_permits,
            config.admission_max_waiters,
            config.admission_wait,
        ));
        let metrics = Metrics::new(&registry, &cache, &prefix, &admission, started);
        let chaos = match &config.chaos {
            Some(spec) => Chaos::parse(spec)
                .map_err(|message| io::Error::new(io::ErrorKind::InvalidInput, message))?,
            None => Chaos::none(),
        };
        Ok(ServerState {
            registry,
            cache,
            prefix,
            admission,
            eval: config.eval.clone(),
            max_stores: config.max_stores,
            max_store_triples: config.max_store_triples,
            metrics,
            recorder: FlightRecorder::new(config.flight_slots),
            observe: config.observe,
            started,
            default_timeout: config.default_timeout,
            inflight: Inflight::default(),
            chaos,
            draining: AtomicBool::new(false),
        })
    }
}

/// A running TriAL query service.
///
/// Dropping the handle shuts the server down and joins every thread; tests
/// and benches use [`Server::spawn_ephemeral`] for an in-process instance on
/// a free port.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    drain_grace: Duration,
}

impl Server {
    /// Binds and starts serving with `config`.
    pub fn spawn(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState::new(&config)?);
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(config.workers + 1);
        for _ in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let max_body = config.max_body_bytes;
            let read_timeout = config.read_timeout;
            threads.push(std::thread::spawn(move || loop {
                let next = rx.lock().expect("worker receiver lock poisoned").recv();
                match next {
                    Ok(stream) => handle_connection(&state, stream, max_body, read_timeout),
                    Err(_) => break, // acceptor gone: shutdown
                }
            }));
        }

        let acceptor_shutdown = Arc::clone(&shutdown);
        threads.push(std::thread::spawn(move || {
            // `tx` lives in this thread; when the acceptor exits, the channel
            // closes and the workers drain out.
            for stream in listener.incoming() {
                if acceptor_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
        }));

        Ok(Server {
            addr,
            state,
            shutdown,
            threads,
            drain_grace: config.drain_grace,
        })
    }

    /// Starts an in-process server on an OS-assigned port with default
    /// configuration — the entry point for tests, benches and examples.
    pub fn spawn_ephemeral() -> io::Result<Server> {
        Server::spawn(ServerConfig::default())
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The store registry, e.g. to preload workloads before serving traffic.
    pub fn registry(&self) -> &StoreRegistry {
        &self.state.registry
    }

    /// The query cache (counters are also served on `/healthz`).
    pub fn cache(&self) -> &QueryCache {
        &self.state.cache
    }

    /// The prefix-closed ordered-result cache.
    pub fn prefix_cache(&self) -> &PrefixCache {
        &self.state.prefix
    }

    /// The per-store admission semaphore (counters on `/healthz`). Returned
    /// as the `Arc` so tests and harnesses can hold permits of their own to
    /// saturate a store deterministically.
    pub fn admission(&self) -> &Arc<Admission> {
        &self.state.admission
    }

    /// The metric surface served on `GET /metrics`.
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// Stops accepting, drains the workers and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Graceful shutdown with the configured grace window (see
    /// [`Server::drain_within`]).
    pub fn drain(self) -> Vec<Arc<Span>> {
        let grace = self.drain_grace;
        self.drain_within(grace)
    }

    /// Graceful shutdown: stop accepting new connections, refuse new work
    /// with a structured `503 shutdown`, give in-flight requests up to
    /// `grace` to finish on their own, then cancel the stragglers with
    /// [`CancelReason::Shutdown`] — cancelled evaluations unwind at their
    /// next checkpoint, release their admission permits and close their
    /// streams with an `X-Trial-Error: shutdown` trailer. Finally joins
    /// every thread and flushes the flight recorder, returning the retained
    /// spans so the process can log them before exiting.
    pub fn drain_within(mut self, grace: Duration) -> Vec<Arc<Span>> {
        // Refuse new work first, then stop accepting: a connection that
        // slips past the acceptor check still gets a clean 503.
        self.state.draining.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        let deadline = Instant::now() + grace;
        while self.state.inflight.live() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.state.inflight.cancel_all(CancelReason::Shutdown);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        self.state.recorder.flush()
    }

    fn shutdown_inner(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of `accept()` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serves one connection: requests in a keep-alive loop until the peer
/// closes, asks to close, errors, or times out.
fn handle_connection(
    state: &ServerState,
    stream: TcpStream,
    max_body: usize,
    read_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader, &mut writer, max_body) {
            Ok(ReadOutcome::Request(request)) => {
                // A panicking handler must cost at most its own request:
                // without the catch, one panic per worker would silently
                // drain the whole pool while the acceptor keeps queueing.
                let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    routes::route(state, &request)
                }))
                .unwrap_or_else(|_| {
                    let mut response = Response::new(
                        500,
                        routes::error_body("internal", "request handler panicked", None),
                    );
                    response.request_id = request.request_id.clone();
                    Routed::Buffered(response)
                });
                match routed {
                    Routed::Buffered(response) => {
                        if http::write_response(&mut writer, &response, request.close).is_err() {
                            return;
                        }
                        if request.close {
                            return;
                        }
                    }
                    Routed::Stream(job) => {
                        // The job writes its own chunked head, body and
                        // trailers. A panic or I/O error mid-stream leaves
                        // the chunk stream without its terminal chunk — the
                        // client's truncation signal — and the only safe
                        // recovery is dropping the connection.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                job.run(state, &mut writer)
                            }));
                        match outcome {
                            Ok(Ok(true)) => {} // keep-alive continues
                            _ => return,
                        }
                    }
                }
                // A draining server finishes the response in flight, then
                // closes: keep-alive must not pin a worker past the grace
                // window.
                if state.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Invalid {
                status,
                kind,
                message,
            }) => {
                // Protocol-level failure: answer if possible, then drop the
                // connection (framing may be lost).
                let body = routes::error_body(kind, &message, None);
                let _ = http::write_response(&mut writer, &Response::new(status, body), true);
                return;
            }
            Err(_) => return, // timeout or broken socket
        }
    }
}
