//! A minimal blocking HTTP client for the service's own endpoints.
//!
//! One connection per call, `Connection: close`. This is not a general HTTP
//! client — it exists so the integration tests, benches and examples can
//! drive a [`crate::Server`] without pulling in a dependency, and so the
//! `server_demo` example can show the full over-the-wire round trip.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Response body as UTF-8 text.
    pub body: String,
}

impl HttpResponse {
    /// `true` for 2xx statuses.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Issues `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", path, "")
}

/// Issues `POST path` with a plain-text body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<HttpResponse> {
    request(addr, "POST", path, body)
}

/// Issues a single request on a fresh connection and reads the response.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: trial\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line `{}`", status_line.trim_end()),
            )
        })?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }

    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8_lossy(&buf).into_owned()
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(HttpResponse { status, body })
}
