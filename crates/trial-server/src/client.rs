//! A minimal blocking HTTP client for the service's own endpoints.
//!
//! Two shapes, both std-only (no dependency; the integration tests, benches
//! and examples drive a [`crate::Server`] with this):
//!
//! * [`get`] / [`post`] / [`request`] — one connection per call,
//!   `Connection: close`. Simple, stateless, fine for tests.
//! * [`HttpClient`] — a **keep-alive** connection that issues many requests
//!   over one socket (reconnecting transparently when the server closes or
//!   the socket dies). This is what the saturation harness uses: hundreds
//!   of clients each holding one connection, the way real load looks.
//!
//! Both parse `Content-Length` bodies **and** `Transfer-Encoding: chunked`
//! responses, including trailer fields after the terminal chunk — the
//! response side of `/query?stream=1` ([`HttpResponse::trailer`] exposes
//! `X-Trial-Count` / `X-Trial-Truncated` / `X-Trial-Cursor`). A chunked
//! response whose terminal chunk never arrives (the server's mid-stream
//! failure signal is closing the connection) surfaces as an
//! `UnexpectedEof` error, never as a silently truncated body.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Response body as UTF-8 text (chunked framing already removed).
    pub body: String,
    /// Trailer fields that followed the terminal chunk of a chunked
    /// response (empty for `Content-Length` responses).
    pub trailers: Vec<(String, String)>,
    /// `true` when the body arrived with `Transfer-Encoding: chunked`.
    pub chunked: bool,
}

impl HttpResponse {
    /// `true` for 2xx statuses.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Looks up a trailer field, case-insensitively.
    pub fn trailer(&self, name: &str) -> Option<&str> {
        self.trailers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a (non-trailer) response header, case-insensitively — the
    /// one-shot helpers record the few headers tests care about
    /// (`Retry-After`) in `trailers` too, so this is an alias.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.trailer(name)
    }
}

/// Issues `GET path` on a fresh `Connection: close` socket.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", path, "")
}

/// Issues `POST path` with a plain-text body on a fresh socket.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<HttpResponse> {
    request(addr, "POST", path, body)
}

/// Issues a single request on a fresh connection and reads the response.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> io::Result<HttpResponse> {
    request_with(addr, method, path, body, &[])
}

/// [`request`] with extra request headers (e.g. `X-Request-Id`).
pub fn request_with(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    write_request(&mut writer, method, path, body, true, headers)?;
    let mut reader = BufReader::new(stream);
    let (response, _server_closes) = read_response(&mut reader)?;
    Ok(response)
}

/// A keep-alive HTTP connection to one server.
///
/// Requests reuse the socket until the server signals `Connection: close`
/// (or the socket errors), after which the next request transparently
/// reconnects. One retry: a request that fails on a *reused* socket is
/// replayed once on a fresh connection (the server may have timed the idle
/// connection out between requests).
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    read_timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
    /// How many times a `429 saturated` response is retried (0 = never,
    /// the default — the saturation harness *counts* 429s, so shed load
    /// must stay visible unless a caller explicitly opts in).
    retry_attempts: u32,
    /// Ceiling on any single retry backoff sleep.
    retry_cap: Duration,
}

impl HttpClient {
    /// Creates a client for `addr`; no connection is opened until the first
    /// request.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            read_timeout: Duration::from_secs(30),
            conn: None,
            retry_attempts: 0,
            retry_cap: Duration::from_secs(5),
        }
    }

    /// Opts into bounded retry of `429 saturated` responses: up to
    /// `attempts` retries, sleeping the server's `Retry-After` hint (capped
    /// at `cap`) plus up to 25% jitter between tries — the jitter keeps a
    /// fleet of shed clients from re-arriving in lockstep. Retries are
    /// **off by default**: a 429 is a deliberate, complete answer, and
    /// harnesses that measure shedding must see every one.
    pub fn retry_saturated(mut self, attempts: u32, cap: Duration) -> Self {
        self.retry_attempts = attempts;
        self.retry_cap = cap;
        self
    }

    /// Issues `GET path` over the kept-alive connection.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, "")
    }

    /// Issues `POST path` with a plain-text body over the kept-alive
    /// connection.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request("POST", path, body)
    }

    /// Issues one request, reusing the connection when possible.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<HttpResponse> {
        self.request_with(method, path, body, &[])
    }

    /// [`HttpClient::request`] with extra request headers.
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<HttpResponse> {
        let mut attempt = 0;
        loop {
            let response = self.request_reconnecting(method, path, body, headers)?;
            if response.status != 429 || attempt >= self.retry_attempts {
                return Ok(response);
            }
            attempt += 1;
            std::thread::sleep(self.saturated_backoff(&response));
        }
    }

    /// The sleep before retrying a shed request: the server's `Retry-After`
    /// hint (whole seconds, default 1) capped at `retry_cap`, plus up to
    /// 25% jitter so retries from many clients spread out.
    fn saturated_backoff(&self, response: &HttpResponse) -> Duration {
        let hinted_secs = response
            .header("Retry-After")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1);
        let base = Duration::from_secs(hinted_secs).min(self.retry_cap);
        // std-only jitter source: the clock's current subsecond nanos are
        // uncorrelated across clients, which is all the spreading needs.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        let quarter_ns = base.as_nanos() as u64 / 4;
        let jitter = if quarter_ns == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(nanos % quarter_ns)
        };
        base + jitter
    }

    /// One request with the keep-alive reconnect discipline (no 429 retry).
    fn request_reconnecting(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<HttpResponse> {
        let reused = self.conn.is_some();
        match self.request_once(method, path, body, headers) {
            Ok(response) => Ok(response),
            Err(e) if reused => {
                // The idle socket died between requests (server timeout,
                // restart): retry once on a fresh connection. A failure
                // mid-fresh-request is real and propagates.
                let _ = e;
                self.conn = None;
                self.request_once(method, path, body, headers)
            }
            Err(e) => Err(e),
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> io::Result<HttpResponse> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        let reader = self.conn.as_mut().expect("connection just ensured");
        let mut writer = reader.get_ref().try_clone()?;
        let outcome = write_request(&mut writer, method, path, body, false, headers)
            .and_then(|()| read_response(reader));
        match outcome {
            Ok((response, server_closes)) => {
                if server_closes {
                    self.conn = None;
                }
                Ok(response)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

fn write_request(
    writer: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
    close: bool,
    headers: &[(&str, &str)],
) -> io::Result<()> {
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: trial\r\nConnection: {}\r\nContent-Length: {}\r\n",
        if close { "close" } else { "keep-alive" },
        body.len()
    )?;
    for (name, value) in headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// Reads one full response (status line, headers, body in either framing,
/// trailers). Returns the response plus whether the server asked to close.
fn read_response<R: BufRead>(reader: &mut R) -> io::Result<(HttpResponse, bool)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a status line",
        ));
    }
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line `{}`", status_line.trim_end()),
            )
        })?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut server_closes = false;
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                chunked = value.eq_ignore_ascii_case("chunked");
            } else if name.eq_ignore_ascii_case("connection") {
                server_closes = value.eq_ignore_ascii_case("close");
            }
            headers.push((name.to_owned(), value.to_owned()));
        }
    }

    if chunked {
        // Surface the pre-body headers (e.g. `X-Request-Id`) through the
        // same lookup as the trailers that follow the terminal chunk.
        let (body, mut trailers) = read_chunked(reader)?;
        trailers.extend(headers);
        return Ok((
            HttpResponse {
                status,
                body,
                trailers,
                chunked: true,
            },
            server_closes,
        ));
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8_lossy(&buf).into_owned()
        }
        None => {
            // No framing at all: the body runs to connection close (only the
            // one-shot `Connection: close` path can land here).
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            server_closes = true;
            buf
        }
    };
    // Surface plain headers (e.g. `Retry-After` on a 429) through the same
    // lookup the trailer accessor uses.
    Ok((
        HttpResponse {
            status,
            body,
            trailers: headers,
            chunked: false,
        },
        server_closes,
    ))
}

/// Decodes a chunked body: size-prefixed chunks, the terminal `0` chunk,
/// then trailer fields up to the blank line.
fn read_chunked<R: BufRead>(reader: &mut R) -> io::Result<(String, Vec<(String, String)>)> {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid chunk stream (response truncated)",
            ));
        }
        let size_text = size_line
            .trim_end()
            .split(';') // ignore chunk extensions
            .next()
            .unwrap_or("");
        let size = usize::from_str_radix(size_text, 16).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed chunk size `{size_text}`"),
            )
        })?;
        if size == 0 {
            break;
        }
        let mut chunk = vec![0u8; size];
        reader.read_exact(&mut chunk)?;
        body.extend_from_slice(&chunk);
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "chunk data not followed by CRLF",
            ));
        }
    }
    // Trailer section: header-shaped lines until the blank line.
    let mut trailers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the trailer terminator",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            trailers.push((name.trim().to_owned(), value.trim().to_owned()));
        }
    }
    Ok((String::from_utf8_lossy(&body).into_owned(), trailers))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_content_length_responses() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 7\r\nConnection: keep-alive\r\n\r\n{\"a\":1}";
        let mut reader = raw.as_bytes();
        let (response, closes) = read_response(&mut reader).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "{\"a\":1}");
        assert!(!response.chunked);
        assert!(!closes);
    }

    #[test]
    fn parses_chunked_responses_with_trailers() {
        let raw = concat!(
            "HTTP/1.1 200 OK\r\n",
            "Transfer-Encoding: chunked\r\n",
            "Trailer: X-Trial-Count\r\n",
            "Connection: keep-alive\r\n",
            "\r\n",
            "6\r\n{\"a\":[\r\n",
            "3\r\n1]}\r\n",
            "0\r\n",
            "X-Trial-Count: 1\r\n",
            "X-Trial-Truncated: false\r\n",
            "\r\n",
        );
        let mut reader = raw.as_bytes();
        let (response, closes) = read_response(&mut reader).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "{\"a\":[1]}");
        assert!(response.chunked);
        assert_eq!(response.trailer("x-trial-count"), Some("1"));
        assert_eq!(response.trailer("X-Trial-Truncated"), Some("false"));
        assert!(response.trailer("X-Trial-Cursor").is_none());
        assert!(!closes);
    }

    #[test]
    fn a_truncated_chunk_stream_is_an_error_not_a_short_body() {
        // The server died mid-stream: no terminal chunk, no trailers.
        let raw = concat!(
            "HTTP/1.1 200 OK\r\n",
            "Transfer-Encoding: chunked\r\n",
            "\r\n",
            "6\r\n{\"a\":[\r\n",
        );
        let mut reader = raw.as_bytes();
        let err = read_response(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn round_trips_the_server_side_chunked_writer() {
        // What `ChunkedWriter` emits must be exactly what this client
        // parses back.
        let mut wire = Vec::new();
        let mut writer =
            crate::http::ChunkedWriter::begin(&mut wire, 200, false, &["X-Trial-Count"], None)
                .unwrap();
        writer.write_text("{\"triples\":[").unwrap();
        writer.write_text("[\"a\",\"b\",\"c\"]]}").unwrap();
        writer.finish(&[("X-Trial-Count", "1".to_owned())]).unwrap();
        let mut reader = wire.as_slice();
        let (response, closes) = read_response(&mut reader).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "{\"triples\":[[\"a\",\"b\",\"c\"]]}");
        assert_eq!(response.trailer("X-Trial-Count"), Some("1"));
        assert!(!closes);
    }
}
