//! Request tracing: per-request IDs, phase-timed spans and the slow-query
//! flight recorder behind `GET /debug/slow`.
//!
//! Every request gets an ID — the client's `X-Request-Id` header when it
//! sent a well-formed one, a generated `r<millis>-<seq>` otherwise — echoed
//! back as a response header on both buffered and chunked responses, so one
//! string correlates client logs, server traces and `/debug/slow` entries.
//!
//! A [`Trace`] rides along the request and stamps phase boundaries
//! (`parse → plan → admission → eval → serialize`); at the end it freezes
//! into a [`Span`] carrying the phase durations, the query text, the chosen
//! physical plan and (when per-operator profiling is on) the per-node
//! timings. The [`FlightRecorder`] keeps the N slowest successful spans
//! plus a bounded ring of **every** errored or shed request — a saturated
//! or misbehaving client is always inspectable after the fact, no matter
//! how fast its failures were.
//!
//! Tracing is on by default and disabled by `trial-serve --no-obs` (or
//! [`ServerConfig::observe`](crate::ServerConfig)); a disabled trace skips
//! the clock reads and never allocates a span.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use trial_eval::{NodeProfile, QueryProfile};

/// Longest query text a span stores; longer bodies are truncated (the
/// recorder is a diagnostic ring, not an archive).
const MAX_SPAN_QUERY_BYTES: usize = 512;

static REQUEST_SEQ: AtomicU64 = AtomicU64::new(0);

/// Generates a process-unique request ID (`r<unix-millis-hex>-<seq-hex>`)
/// for requests that did not present an `X-Request-Id` of their own.
pub fn next_request_id() -> String {
    let millis = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let seq = REQUEST_SEQ.fetch_add(1, Ordering::Relaxed);
    format!("r{millis:x}-{seq:x}")
}

/// A finished, immutable request record — what the flight recorder stores
/// and `/debug/slow` renders.
#[derive(Debug, Clone)]
pub struct Span {
    /// The request's correlation ID (client-supplied or generated).
    pub request_id: String,
    /// HTTP method.
    pub method: String,
    /// Request path (no query string).
    pub path: String,
    /// Target store, once resolved.
    pub store: Option<String>,
    /// The query text (truncated to a diagnostic-sized prefix).
    pub query: Option<String>,
    /// Final HTTP status.
    pub status: u16,
    /// Structured error kind for non-2xx outcomes (`saturated`,
    /// `bad_cursor`, `stale_cursor`, `parse`, …).
    pub error_kind: Option<String>,
    /// `true` when the response was served from a cache.
    pub cached: bool,
    /// `true` for chunked streaming responses.
    pub streamed: bool,
    /// End-to-end wall time in microseconds.
    pub total_us: u64,
    /// `(phase, microseconds)` in the order the phases completed.
    pub phases: Vec<(&'static str, u64)>,
    /// The physical plan (`explain()` rendering) of a fresh evaluation.
    pub plan: Option<String>,
    /// Per-operator timings in plan preorder, when profiling was on.
    pub nodes: Vec<NodeProfile>,
    /// The sampling stride the node timings were measured under (1 = exact,
    /// 0 = profiling was off).
    pub profile_stride: u32,
}

/// The live, mutable trace a request carries through its handler.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    start: Instant,
    request_id: String,
    method: String,
    path: String,
    store: Option<String>,
    query: Option<String>,
    cached: bool,
    streamed: bool,
    phases: Vec<(&'static str, u64)>,
    plan: Option<String>,
    /// Snapshotted at [`Trace::finish`] — cursor wrappers flush their local
    /// measurements when they exhaust or drop, so the snapshot must happen
    /// after the stream is done, which finish-time is by construction.
    profile: Option<QueryProfile>,
    /// Per-node timings recorded directly (the analyze path, which has a
    /// finished snapshot in hand).
    nodes: Vec<NodeProfile>,
    profile_stride: u32,
}

impl Trace {
    /// Starts a trace. With `enabled = false` every recording method is a
    /// no-op and [`Trace::now`] returns `None`, so the request pays no
    /// clock reads or allocations beyond this constructor.
    pub(crate) fn begin(request_id: String, method: &str, path: &str, enabled: bool) -> Trace {
        Trace {
            enabled,
            start: Instant::now(),
            request_id,
            method: if enabled {
                method.to_owned()
            } else {
                String::new()
            },
            path: if enabled {
                path.to_owned()
            } else {
                String::new()
            },
            store: None,
            query: None,
            cached: false,
            streamed: false,
            phases: Vec::new(),
            plan: None,
            profile: None,
            nodes: Vec::new(),
            profile_stride: 0,
        }
    }

    /// The request's correlation ID (always present, even when disabled —
    /// the ID is echoed on every response regardless of tracing).
    pub(crate) fn request_id(&self) -> &str {
        &self.request_id
    }

    /// A phase start stamp, or `None` when tracing is off. Pair with
    /// [`Trace::phase`].
    pub(crate) fn now(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Closes a phase opened by [`Trace::now`].
    pub(crate) fn phase(&mut self, name: &'static str, since: Option<Instant>) {
        if let Some(t) = since {
            self.phases.push((name, t.elapsed().as_micros() as u64));
        }
    }

    pub(crate) fn set_store(&mut self, store: &str) {
        if self.enabled {
            self.store = Some(store.to_owned());
        }
    }

    pub(crate) fn set_query(&mut self, text: &str) {
        if self.enabled {
            let mut end = text.len().min(MAX_SPAN_QUERY_BYTES);
            while !text.is_char_boundary(end) {
                end -= 1;
            }
            self.query = Some(text[..end].to_owned());
        }
    }

    pub(crate) fn set_cached(&mut self) {
        self.cached = true;
    }

    pub(crate) fn set_streamed(&mut self) {
        self.streamed = true;
    }

    /// Records the chosen physical plan; the rendering closure only runs
    /// when tracing is on.
    pub(crate) fn set_plan(&mut self, render: impl FnOnce() -> String) {
        if self.enabled {
            self.plan = Some(render());
        }
    }

    /// Attaches a streaming query's profile handle; node timings are
    /// snapshotted at [`Trace::finish`], after the stream has flushed.
    pub(crate) fn set_profile(&mut self, profile: Option<QueryProfile>) {
        if self.enabled {
            self.profile = profile;
        }
    }

    /// Records already-snapshotted node timings (the `?analyze=1` path).
    pub(crate) fn set_nodes(&mut self, nodes: Vec<NodeProfile>, stride: u32) {
        if self.enabled {
            self.nodes = nodes;
            self.profile_stride = stride;
        }
    }

    /// Freezes the trace into a [`Span`]. Returns `None` when tracing is
    /// disabled.
    pub(crate) fn finish(mut self, status: u16, error_kind: Option<String>) -> Option<Span> {
        if !self.enabled {
            return None;
        }
        if let Some(profile) = self.profile.take() {
            self.nodes = profile.snapshot();
            self.profile_stride = profile.stride();
        }
        Some(Span {
            request_id: self.request_id,
            method: self.method,
            path: self.path,
            store: self.store,
            query: self.query,
            status,
            error_kind,
            cached: self.cached,
            streamed: self.streamed,
            total_us: self.start.elapsed().as_micros() as u64,
            phases: self.phases,
            plan: self.plan,
            nodes: self.nodes,
            profile_stride: self.profile_stride,
        })
    }
}

/// Bounded post-hoc diagnostics: the N slowest successful requests (evicting
/// the fastest) plus a ring of the last N errored or shed requests. Errors
/// are kept unconditionally — a `429` or `410 stale_cursor` is typically
/// *fast*, and a slowest-only recorder would never retain one.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: usize,
    /// Successful spans, kept sorted by `total_us` descending.
    slow: Mutex<Vec<Arc<Span>>>,
    /// Most recent errored/shed spans, oldest first.
    errors: Mutex<VecDeque<Arc<Span>>>,
}

impl FlightRecorder {
    /// A recorder keeping up to `slots` slow spans and `slots` error spans.
    /// `slots = 0` disables recording.
    pub(crate) fn new(slots: usize) -> FlightRecorder {
        FlightRecorder {
            slots,
            slow: Mutex::new(Vec::new()),
            errors: Mutex::new(VecDeque::new()),
        }
    }

    /// Files a finished span.
    pub(crate) fn record(&self, span: Span) {
        if self.slots == 0 {
            return;
        }
        let span = Arc::new(span);
        if span.status >= 400 {
            let mut errors = self
                .errors
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if errors.len() == self.slots {
                errors.pop_front();
            }
            errors.push_back(span);
        } else {
            let mut slow = self
                .slow
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if slow.len() == self.slots && slow.last().is_some_and(|s| s.total_us >= span.total_us)
            {
                return; // faster than everything retained
            }
            let at = slow.partition_point(|s| s.total_us >= span.total_us);
            slow.insert(at, span);
            slow.truncate(self.slots);
        }
    }

    /// The retained successful spans, slowest first.
    pub(crate) fn slow(&self) -> Vec<Arc<Span>> {
        self.slow
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// The retained errored/shed spans, most recent first.
    pub(crate) fn errors(&self) -> Vec<Arc<Span>> {
        self.errors
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .rev()
            .cloned()
            .collect()
    }

    /// Flushes the recorder: takes every retained span (slowest successes
    /// first, then errors most recent first) and leaves it empty. A draining
    /// server flushes so the final diagnostics survive the process —
    /// `trial-serve` prints them on SIGTERM before exiting.
    pub fn flush(&self) -> Vec<Arc<Span>> {
        let mut out: Vec<Arc<Span>> = std::mem::take(
            &mut *self
                .slow
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        let errors = std::mem::take(
            &mut *self
                .errors
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        out.extend(errors.into_iter().rev());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(status: u16, total_us: u64) -> Span {
        let trace = Trace::begin(next_request_id(), "POST", "/query", true);
        let mut span = trace.finish(status, None).expect("enabled");
        span.total_us = total_us;
        span
    }

    #[test]
    fn request_ids_are_unique() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = Trace::begin("x".into(), "POST", "/query", false);
        assert!(trace.now().is_none());
        trace.set_query("E");
        trace.set_plan(|| unreachable!("disabled traces must not render plans"));
        assert!(trace.finish(200, None).is_none());
    }

    #[test]
    fn recorder_keeps_slowest_and_all_errors() {
        let rec = FlightRecorder::new(2);
        rec.record(span(200, 10));
        rec.record(span(200, 30));
        rec.record(span(200, 20));
        rec.record(span(200, 5)); // fastest: dropped
        let slow: Vec<u64> = rec.slow().iter().map(|s| s.total_us).collect();
        assert_eq!(slow, vec![30, 20]);

        rec.record(span(429, 1));
        rec.record(span(400, 2));
        rec.record(span(410, 3));
        let errors: Vec<u16> = rec.errors().iter().map(|s| s.status).collect();
        assert_eq!(errors, vec![410, 400], "ring keeps the most recent");
    }

    #[test]
    fn zero_slots_disables_recording() {
        let rec = FlightRecorder::new(0);
        rec.record(span(200, 10));
        rec.record(span(500, 10));
        assert!(rec.slow().is_empty());
        assert!(rec.errors().is_empty());
    }
}
