//! A hand-rolled JSON *emitter* (no parser).
//!
//! The server's request bodies are plain text — a TriAL query for `/query`
//! and `/explain`, an N-Triples document for `/load` — and request options
//! travel in the URL query string, so the crate only ever needs to *produce*
//! JSON. Emission is append-only string building with correct escaping; the
//! [`JsonObject`] builder keeps commas and braces right by construction.

use std::fmt::Write;

/// Escapes `s` as the contents of a JSON string (without the quotes).
///
/// Handles the two mandatory classes: `"` / `\` and the C0 control range
/// (emitted as `\uXXXX`, with the usual short forms for `\n`, `\r`, `\t`),
/// plus three characters that are legal raw JSON but hostile downstream:
/// DEL (U+007F, a control character many terminals mangle) and the line
/// separators U+2028 / U+2029, which are valid JSON but *not* valid
/// JavaScript string content — a raw pass-through breaks any consumer that
/// feeds the response to `eval`/JSONP or embeds it in a `<script>` block.
/// Everything else — including non-ASCII — passes through verbatim, which is
/// valid JSON as long as the transport is UTF-8 (ours is).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' || c == '\u{2028}' || c == '\u{2029}' => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a JSON string literal, quotes included.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders a JSON array of string literals.
pub fn string_array<I, S>(items: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let rendered: Vec<String> = items.into_iter().map(|s| string(s.as_ref())).collect();
    format!("[{}]", rendered.join(","))
}

/// Renders a JSON array of pre-rendered JSON fragments.
pub fn array<I, S>(items: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item.as_ref());
    }
    out.push(']');
    out
}

/// An incremental JSON array emitter for streaming responses.
///
/// Elements are written **one at a time** into a caller-supplied sink (the
/// chunked-transfer writer on `/query?stream=1`), so the array as a whole is
/// never materialised — memory stays bounded by one rendered element no
/// matter how many rows flow through. The emitter only keeps the
/// comma/bracket discipline; errors from the sink propagate immediately.
///
/// ```
/// use trial_server::json::ArrayStream;
///
/// let mut out = String::new();
/// let mut rows = ArrayStream::begin(|s: &str| {
///     out.push_str(s);
///     Ok::<(), std::io::Error>(())
/// })
/// .unwrap();
/// rows.element("[1,2]").unwrap();
/// rows.element("[3,4]").unwrap();
/// rows.finish().unwrap();
/// assert_eq!(out, "[[1,2],[3,4]]");
/// ```
#[derive(Debug)]
pub struct ArrayStream<E, F: FnMut(&str) -> Result<(), E>> {
    sink: F,
    first: bool,
}

impl<E, F: FnMut(&str) -> Result<(), E>> ArrayStream<E, F> {
    /// Opens the array, writing `[` to the sink.
    pub fn begin(mut sink: F) -> Result<Self, E> {
        sink("[")?;
        Ok(ArrayStream { sink, first: true })
    }

    /// Appends one pre-rendered JSON element.
    pub fn element(&mut self, fragment: &str) -> Result<(), E> {
        if !self.first {
            (self.sink)(",")?;
        }
        self.first = false;
        (self.sink)(fragment)
    }

    /// Closes the array with `]`.
    pub fn finish(mut self) -> Result<(), E> {
        (self.sink)("]")
    }
}

/// An append-only JSON object builder.
///
/// ```
/// use trial_server::json::JsonObject;
///
/// let body = JsonObject::new()
///     .str("status", "ok")
///     .num("stores", 2)
///     .boolean("cached", false)
///     .finish();
/// assert_eq!(body, r#"{"status":"ok","stores":2,"cached":false}"#);
/// ```
#[derive(Debug, Clone)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push_str(&string(value));
        self
    }

    /// Adds an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        write!(self.buf, "{value}").expect("writing to String cannot fail");
        self
    }

    /// Adds a boolean field.
    pub fn boolean(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is an already-rendered JSON fragment
    /// (object, array, number — the caller guarantees validity).
    pub fn raw(mut self, key: &str, fragment: &str) -> Self {
        self.key(key);
        self.buf.push_str(fragment);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("line1\nline2\ttab\r"), "line1\\nline2\\ttab\\r");
        assert_eq!(escape("\u{01}"), "\\u0001");
        assert_eq!(escape("héllo✶"), "héllo✶"); // non-ASCII passes through
    }

    #[test]
    fn escaping_covers_del_and_unicode_line_separators() {
        // U+2028/U+2029 are valid JSON but not valid JavaScript string
        // content; DEL is a control character. All three must be escaped.
        assert_eq!(escape("a\u{2028}b"), "a\\u2028b");
        assert_eq!(escape("a\u{2029}b"), "a\\u2029b");
        assert_eq!(escape("a\u{7f}b"), "a\\u007fb");
        // The neighbouring characters are untouched.
        assert_eq!(escape("\u{2027}\u{202a}\u{7e}"), "\u{2027}\u{202a}\u{7e}");
    }

    #[test]
    fn builders_produce_valid_shapes() {
        assert_eq!(string("x\"y"), "\"x\\\"y\"");
        assert_eq!(string_array(["a", "b\""]), "[\"a\",\"b\\\"\"]");
        assert_eq!(string_array(Vec::<String>::new()), "[]");
        assert_eq!(array(["1", "[2]"]), "[1,[2]]");
        let obj = JsonObject::new()
            .str("k", "v")
            .num("n", 7)
            .boolean("t", true)
            .raw("a", "[1,2]")
            .finish();
        assert_eq!(obj, r#"{"k":"v","n":7,"t":true,"a":[1,2]}"#);
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn array_stream_matches_batch_rendering() {
        let mut out = String::new();
        let sink = |s: &str| {
            out.push_str(s);
            Ok::<(), ()>(())
        };
        let mut rows = ArrayStream::begin(sink).unwrap();
        for fragment in ["1", "[2,3]", "\"x\""] {
            rows.element(fragment).unwrap();
        }
        rows.finish().unwrap();
        assert_eq!(out, array(["1", "[2,3]", "\"x\""]));

        let mut empty = String::new();
        ArrayStream::begin(|s: &str| {
            empty.push_str(s);
            Ok::<(), ()>(())
        })
        .unwrap()
        .finish()
        .unwrap();
        assert_eq!(empty, "[]");
    }
}
