//! # trial-server
//!
//! A concurrent HTTP/1.1 query service for TriAL over triplestores — the
//! serving layer that turns the PODS'13 reproduction into something you can
//! `curl`. Std-only: the listener is `std::net::TcpListener`, the HTTP and
//! JSON layers are hand-rolled ([`http`], [`json`]), and concurrency is a
//! fixed worker thread pool.
//!
//! ## Serving TriAL over HTTP
//!
//! Start a server with a preset workload:
//!
//! ```bash
//! trial-serve --preload transport --port 7878
//! ```
//!
//! then drive it with curl (bodies are plain text — a TriAL expression for
//! `/query`/`/explain`, an N-Triples document for `/load`; options ride in
//! the query string; responses are JSON):
//!
//! ```bash
//! # Example 2 of the paper: cities connected by a service, with the company.
//! curl -s localhost:7878/query -d "(E JOIN[1,3',3 | 2=1'] E)"
//!
//! # The physical plan the cost-based planner picked, without running it.
//! curl -s localhost:7878/explain -d "STAR(E JOIN[1,2,3' | 3=1'])"
//!
//! # Load an N-Triples document into relation E of store `mydata`
//! # (copy-on-write: in-flight queries keep their snapshot).
//! curl -s "localhost:7878/load?store=mydata&relation=E" --data-binary @data.nt
//!
//! # Cap the result: the limit is pushed into the physical plan, so
//! # evaluation stops after 100 distinct triples instead of truncating a
//! # fully evaluated result. ?limit=0 is the exact-count path.
//! curl -s "localhost:7878/query?store=mydata&limit=100" -d "E"
//! curl -s "localhost:7878/query?store=mydata&limit=0" -d "E"
//!
//! # The plan a bounded query runs, with per-node cardinality estimates and
//! # pipelined/breaker flags in the structured `tree` field.
//! curl -s "localhost:7878/explain?store=mydata&limit=100" -d "E"
//!
//! # Store inventory and service/cache counters.
//! curl -s localhost:7878/stores
//! curl -s localhost:7878/healthz
//! ```
//!
//! ## Ordered responses and top-k
//!
//! `?order=spo|pos|osp` streams the result rows in that permutation's key
//! order — served straight from the matching index permutation whenever the
//! plan can deliver it (bare scans, filters, merge unions), an explicit
//! sort breaker otherwise — making the response row sequence deterministic.
//! `?topk=k` returns the `k` smallest distinct triples under the order
//! (default `spo`) via a bounded heap that never buffers more than `k`
//! rows; over an already-ordered plan it collapses to a plain limit and
//! terminates early. Both are cache-keyed and work on `/explain` too:
//!
//! ```bash
//! # Rows in predicate-object-subject order, deterministic across runs.
//! curl -s "localhost:7878/query?order=pos" -d "E"
//!
//! # The 5 canonically smallest connections Example 2 derives.
//! curl -s "localhost:7878/query?topk=5" -d "(E JOIN[1,3',3 | 2=1'] E)"
//!
//! # Top-k under a non-canonical order: bounded heap, ≤ k rows buffered
//! # (watch stats.topk_buffered_peak and stats.hash_tables_built).
//! curl -s "localhost:7878/query?order=osp&topk=10" -d "(E JOIN[1,3',3 | 2=1'] E)"
//!
//! # The ordered plan: scan permutations, [merge pos⋈spo] joins and
//! # [sort]/[topk] tags, plus per-node "ordering" in the structured tree.
//! curl -s "localhost:7878/explain?order=pos&topk=3" -d "E"
//! ```
//!
//! ## Path queries
//!
//! `POST /path` evaluates a **regular path query** — label atoms, `/`
//! concatenation, `|` alternation, `*`/`+`/`?` closures — over one edge
//! relation (`?relation=`, default `E`) and returns the reachable pairs
//! `(x, y)` encoded as triples `(x, x, y)`. Closure-free expressions are
//! lowered to TriAL algebra and inherit the whole planner; closures (or a
//! `?max_hops=` walk bound, which the lowering cannot express) run the
//! Thompson-NFA product walk. `?algo=auto|nfa|lower` pins the strategy,
//! and every `/query` delivery knob — `?limit=`, `?order=`, `?topk=`,
//! `?stream=1`, cursors, caching, `?timeout_ms=` — works identically:
//!
//! ```bash
//! # Two-step connections: lowers to a join plan the planner optimises.
//! curl -s localhost:7878/path -d "a/b"
//!
//! # Reachability over either label, bounded to walks of at most 4 edges.
//! curl -s "localhost:7878/path?max_hops=4" -d "(a|b)+"
//!
//! # Which strategy `auto` resolved to, and the plan it produced.
//! curl -s "localhost:7878/explain?path=1" -d "(a/b)*"
//!
//! # Ordered, paginated path results — same cursor protocol as /query.
//! curl -sN --raw "localhost:7878/path?order=spo&limit=1000&stream=1" -d "next+"
//! ```
//!
//! ## Streaming and pagination
//!
//! `?stream=1` switches `/query` from a buffered `Content-Length` body to
//! **chunked transfer encoding** fed by a parallel exchange operator:
//! producer threads evaluate morsels and pump row batches through bounded
//! channels while the connection worker renders them straight onto the
//! socket. The head is flushed before evaluation starts, so time-to-first-
//! byte is planning time, not evaluation time, and the server never buffers
//! more than one 8 KiB chunk plus the bounded exchange lanes regardless of
//! result size. `count`/`truncated` can't be known up front, so they arrive
//! as HTTP **trailers** (`X-Trial-Count`, `X-Trial-Truncated`,
//! `X-Trial-Elapsed-Us`) after the terminal chunk — and a missing terminal
//! chunk is the unambiguous truncation signal if a stream dies mid-flight:
//!
//! ```bash
//! # Rows on the wire as they are produced; trailers close the stream.
//! curl -sN --raw "localhost:7878/query?stream=1&order=spo&limit=1000" -d "E"
//! ```
//!
//! A truncated **ordered** stream is resumable: its `X-Trial-Cursor`
//! trailer is an opaque token `(store, epoch, order, last row key)` that the
//! next request presents to continue the row sequence exactly where the
//! page stopped — the engine seeks the index past the last delivered key
//! instead of replaying and discarding:
//!
//! ```bash
//! curl -s "localhost:7878/query?cursor=$TOKEN&limit=1000" -d "E"  # next page
//! ```
//!
//! Cursor failure modes are structured and happen before any bytes stream:
//! a malformed or cross-store token is `400 bad_cursor`, a token minted
//! against a reloaded store is `410 stale_cursor` (restart pagination —
//! row keys from the old epoch are meaningless), and top-k responses never
//! mint cursors (they are complete sets, not stream positions).
//!
//! Two more pieces round out the serving path. A **prefix-closed ordered
//! cache**: an ordered result under a fixed `(store, epoch, query, threads,
//! order)` is the same row sequence for every limit, so one deep evaluation
//! serves every smaller `?limit=` by slicing (hits show up as
//! `hits_prefix` on `/healthz`). And **admission control**: each store has
//! a bounded pool of concurrent-evaluation permits plus a bounded wait
//! queue; beyond both, requests are shed immediately with a complete
//! `429 {"error":{"kind":"saturated",...}}` and a `Retry-After` hint rather
//! than queueing without bound (cache hits bypass admission entirely).
//! `/healthz` exposes the live picture: `in_flight`, `waiting`, `admitted`,
//! `rejected`.
//!
//! ## Parallel evaluation
//!
//! `trial-serve --eval-threads N` turns on morsel-driven intra-query
//! parallelism (see the *Parallel execution* section of the `trial-eval`
//! docs) for every query; `--eval-threads 0` auto-detects the core count.
//! Individual requests override the degree with `?threads=`, clamped to
//! [`routes::MAX_EVAL_THREADS`]:
//!
//! ```bash
//! trial-serve --preload transport --eval-threads 4
//!
//! # Evaluate this query on 8 worker threads (same result, same counters —
//! # only wall-clock changes); plans show which operators ran [parallel×8].
//! curl -s "localhost:7878/query?threads=8" -d "(E JOIN[1,3',3 | 2=1'] E)"
//! curl -s "localhost:7878/explain?threads=8" -d "(E JOIN[1,3',3 | 2=1'] E)"
//!
//! # EXPLAIN ANALYZE: run the (bounded) query and report actual per-node
//! # rows next to the planner's estimates in the structured tree.
//! curl -s "localhost:7878/explain?analyze=1" -d "(E JOIN[1,3',3 | 2=1'] E)"
//!
//! # /healthz reports the configured degree and how many fresh queries
//! # actually executed parallel morsels vs. stayed sequential.
//! curl -s localhost:7878/healthz
//! ```
//!
//! ## Adaptive planning
//!
//! Every `?analyze=1` run feeds its observed per-node cardinalities into a
//! per-store [`trial_eval::StatsStore`]; later plans against the same
//! store draw estimates from it instead of the static heuristics (see the
//! *Adaptive planning* section of the `trial-eval` docs). Each node of the
//! structured `/explain` tree reports where its estimate came from:
//!
//! ```bash
//! # Feed the statistics (runs the query, reports actual rows per node).
//! curl -s "localhost:7878/explain?analyze=1" -d "(E JOIN[1,2,3' | 3=1'] E)"
//!
//! # Later plans report "est_src": "stats" on nodes with observed
//! # cardinalities, "heuristic" elsewhere.
//! curl -s localhost:7878/explain -d "(E JOIN[1,2,3' | 3=1'] E)"
//!
//! # Escape hatch: plan this request from pure heuristics.
//! curl -s "localhost:7878/query?nostats=1" -d "(E JOIN[1,2,3' | 3=1'] E)"
//! ```
//!
//! `/load` invalidates the store's statistics atomically with the epoch
//! bump — observed cardinalities (and the `ObjectId`s baked into plan
//! fingerprints) never outlive the data they were measured on. The
//! feedback loop is observable: `trial_planner_stats_entries`,
//! `trial_planner_stats_observations_total`, `trial_planner_replans_total`
//! and the `trial_planner_est_error_pct` histogram ride on `/metrics`.
//!
//! ## Observability
//!
//! The server is instrumented end to end with the std-only `trial-obs`
//! registry — atomic counters, gauges and fixed-bucket histograms, rendered
//! in Prometheus text exposition format:
//!
//! ```bash
//! # Every server metric, scrape-ready (text/plain; version=0.0.4).
//! curl -s localhost:7878/metrics
//!
//! # The slow-query flight recorder: phase-timed span records (with plan
//! # and per-operator timings) for the N slowest requests plus every
//! # errored or shed one.
//! curl -s localhost:7878/debug/slow
//! ```
//!
//! **Naming conventions.** Metrics are prefixed `trial_`; counters end in
//! `_total`, durations are histograms in microseconds ending in `_us`
//! (log-scaled buckets 50µs–10s), row-count histograms use power-of-ten
//! buckets. Cardinality rides in labels: `trial_requests_total{endpoint,
//! status}` (status is the class, `2xx`/`4xx`/`5xx`),
//! `trial_request_duration_us{endpoint}`, `trial_phase_duration_us{phase}`
//! for the five request phases (`parse`, `plan`, `admission`, `eval`,
//! `serialize`), `trial_errors_total{kind}` for structured error kinds.
//! Engine work counters surface as `trial_eval_hash_tables_built_total`,
//! `trial_eval_parallel_morsels_total` and the
//! `trial_eval_topk_buffered_peak` high-water gauge. `/healthz` and
//! `/metrics` read the *same* registry-owned counters and the same
//! cache/admission structs, so the two surfaces cannot disagree.
//!
//! **Request IDs.** Every response carries an `X-Request-Id` header — the
//! client's own (when it sent a well-formed one, ≤ 64 chars of
//! `[A-Za-z0-9._-]`) or a generated one — on buffered and chunked responses
//! alike, and the same ID keys the span in `/debug/slow`:
//!
//! ```bash
//! curl -s -H "X-Request-Id: deploy-42" localhost:7878/query -d "E" -i
//! ```
//!
//! **Per-operator timing.** `/explain?analyze=1` reports `elapsed_us` (and
//! `build_us` for breakers) on every node of the structured `tree`, next to
//! the estimated and actual rows. Outside analyze, per-node timing is off
//! unless sampled: `trial-serve --profile-sample N` (or the
//! `TRIAL_PROFILE_SAMPLE` env var) times every N-th cursor pull and spans
//! in `/debug/slow` then carry node timings too. `--no-obs` turns off
//! tracing and latency histograms entirely for overhead-sensitive
//! deployments; service counters and `/metrics` itself stay live.
//!
//! ## Robustness
//!
//! Every fresh evaluation runs under a **cancel token** — a deadline plus
//! an explicit-cancel flag checked cooperatively at every cursor pull,
//! morsel loop, fixpoint round and blocking build (see the *Cancellation*
//! section of the `trial-eval` docs). `?timeout_ms=` arms a per-request
//! deadline; `trial-serve --default-timeout-ms` (or
//! `TRIAL_DEFAULT_TIMEOUT_MS`) sets a server-wide default that individual
//! requests override, with `?timeout_ms=0` as the explicit opt-out:
//!
//! ```bash
//! # Give this query 250 ms; past that the evaluation stops where it is
//! # and the response is a structured 408.
//! curl -s "localhost:7878/query?timeout_ms=250" -d "STAR(E JOIN[1,2,3' | 3=1'])"
//! # → 408 {"error":{"kind":"deadline_exceeded",...}}
//!
//! # Every request gets 2 s unless it says otherwise.
//! trial-serve --preload transport --default-timeout-ms 2000
//! ```
//!
//! Cancellation semantics: a cancelled query releases its admission permit
//! and worker threads promptly (the in-tree harness asserts within 50 ms of
//! the deadline), never seeds the query or prefix caches, and shows up in
//! `trial_queries_timeout_total` / `trial_queries_cancelled_total` on
//! `/metrics`. A **buffered** response that hits its deadline is a complete
//! `408`; a **chunked** response that has already streamed its head cannot
//! change status, so it ends early and names the reason in an
//! `X-Trial-Error` trailer instead (`deadline_exceeded`, `shutdown`, or
//! `internal` after a mid-stream fault) — a stream that aborts mid-flight
//! always tells you why before the connection closes.
//!
//! **Graceful shutdown.** [`Server::drain`] (and SIGTERM in `trial-serve`)
//! stops accepting new work (late requests get a complete
//! `503 {"error":{"kind":"shutdown",...}}`), lets in-flight requests finish
//! within a grace window (`--drain-grace-ms`), cancels stragglers with
//! reason `shutdown`, then joins the workers and flushes the slow-query
//! flight recorder so the final spans are not lost with the process.
//!
//! **Fault injection.** `trial-serve --chaos "<spec>"` (or `TRIAL_CHAOS`)
//! arms the [`chaos`] layer: deterministic injected panics, socket errors
//! and stalls at named serving sites — see the [`chaos`] module docs for
//! the grammar and site table. The chaos test suite drives these rules to
//! prove the invariants the rest of this section claims: no leaked
//! admission permits, no poisoned locks, no partial cache entries, accurate
//! error counters.
//!
//! ```bash
//! # Panic every 3rd evaluation, kill every 2nd stream mid-flight.
//! trial-serve --preload transport --chaos "eval=panic@3,stream.chunk=ioerror@2"
//! ```
//!
//! ## Architecture
//!
//! * **[`registry`]** — named stores as epoch-versioned immutable snapshots
//!   behind `Arc`s. Readers clone the `Arc` under a momentary read lock and
//!   evaluate lock-free; `/load` builds the replacement store entirely off
//!   to the side and swaps the pointer. A query that started on epoch *n*
//!   sees epoch *n* to completion — no reader ever blocks on a writer.
//! * **[`cache`]** — an LRU of rendered result fragments keyed by
//!   `(store, epoch, kind, query text)`, plus the prefix-closed ordered
//!   cache that serves any smaller limit by slicing a deeper cached prefix.
//!   Epoch bumps invalidate implicitly; hit/miss counters are served on
//!   `/healthz`.
//! * **[`admission`]** — per-store concurrent-evaluation permits with a
//!   bounded wait queue; saturation sheds load as structured `429`s with
//!   `Retry-After` instead of queueing unboundedly.
//! * **[`token`]** — opaque resumable pagination cursors: base64url over
//!   `(store, epoch, order, last row key)` with an integrity checksum,
//!   minted as `X-Trial-Cursor` trailers and validated before any bytes
//!   stream.
//! * **[`metrics`]** — the server's `trial-obs` registry wiring: owned
//!   service counters (read by both `/healthz` and `/metrics`), fn-backed
//!   gauges over the cache/admission/registry structs, per-endpoint and
//!   per-phase latency histograms.
//! * **[`trace`]** — request IDs, phase-timed spans and the bounded
//!   flight recorder behind `GET /debug/slow`.
//! * **[`chaos`]** — the gated fault-injection layer: deterministic
//!   injected panics, socket errors and stalls at named serving sites,
//!   inert (one `is_empty()` test per site) unless armed.
//! * **[`server`]** — listener + fixed worker pool with keep-alive
//!   connections and graceful shutdown; [`Server::spawn_ephemeral`] gives
//!   tests and benches an in-process instance on a free port.
//! * **[`routes`]** — the endpoint handlers. `/query` executes through
//!   `trial-eval`'s streaming cursor pipeline: `?limit=` becomes a `Limit`
//!   plan node so bounded queries terminate early, rows are rendered into
//!   the JSON body as the cursors yield them (the result set is never
//!   buffered), and `?limit=0` drains a counting cursor that renders no
//!   rows (order-preserving plans count allocation-free; unordered plans
//!   track seen triples, never name strings). Untrusted input is bounded
//!   everywhere: request bodies by [`ServerConfig::max_body_bytes`], query
//!   evaluation by the server's [`trial_eval::EvalOptions`] (universe size
//!   and star-round caps), response bodies by `?limit=`, and registry
//!   growth by [`ServerConfig::max_stores`] /
//!   [`ServerConfig::max_store_triples`] (stores never expire, so `/load`
//!   refuses to grow past them).
//!
//! ```
//! use trial_server::{client, Server};
//! use trial_workloads::figure1_store;
//!
//! let server = Server::spawn_ephemeral().unwrap();
//! server.registry().set("transport", figure1_store());
//! let response =
//!     client::post(server.addr(), "/query", "(E JOIN[1,3',3 | 2=1'] E)").unwrap();
//! assert_eq!(response.status, 200);
//! assert!(response.body.contains("\"count\":3"));
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod preload;
pub mod registry;
pub mod routes;
pub mod server;
pub mod token;
pub mod trace;

pub use admission::{Admission, AdmissionPermit};
pub use cache::{CacheKey, PrefixCache, PrefixEntry, PrefixKey, QueryCache, QueryKind};
pub use chaos::Chaos;
pub use metrics::Metrics;
pub use preload::{preload_workload, WORKLOAD_NAMES};
pub use registry::{StoreRegistry, StoreSnapshot};
pub use routes::MAX_EVAL_THREADS;
pub use server::{default_timeout_ms, Server, ServerConfig};
pub use token::CursorToken;
pub use trace::{next_request_id, FlightRecorder, Span};

// The server hands `Arc<ServerState>` and store snapshots across worker
// threads; these mirror the assertions in trial-core / trial-eval at the
// point of use.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
    assert_send_sync::<StoreRegistry>();
    assert_send_sync::<QueryCache>();
};
