//! The server's metric surface: one [`trial_obs::Registry`] holding every
//! counter, gauge and histogram served on `GET /metrics`.
//!
//! Two registration styles keep the surface honest:
//!
//! * **Owned instruments** ([`trial_obs::Counter`] handles held here) are
//!   the *single source of truth* for the service counters — `/healthz`
//!   reads the very same atomics `/metrics` renders, so the two surfaces
//!   cannot drift.
//! * **Fn-backed series** (`counter_fn`/`gauge_fn`) expose state that
//!   already has an owner — the query/prefix caches, the admission
//!   semaphore, the store registry — by reading it at scrape time instead
//!   of duplicating it.
//!
//! Naming follows the Prometheus conventions: `trial_` prefix,
//! `snake_case`, unit suffixes (`_us`, `_seconds`, `_total` for counters).
//! Label cardinality is bounded by construction: `endpoint` ranges over the
//! fixed route table, `status` over `1xx`…`5xx` classes, `phase` over the
//! five request phases, and `kind` over the server's structured error kinds.

use crate::admission::Admission;
use crate::cache::{PrefixCache, QueryCache};
use crate::registry::StoreRegistry;
use std::sync::Arc;
use std::time::Instant;
use trial_eval::{EvalStats, ObserveSummary};
use trial_obs::{Counter, Gauge, Histogram, Registry, LATENCY_BUCKETS_US, ROW_BUCKETS};

/// Relative estimate-error buckets in percent: 0 % (exact) through 10×
/// off and beyond. The shape of this histogram is the health signal of the
/// feedback loop — mass migrating toward the low buckets means the observed
/// statistics are converging on the workload.
const EST_ERROR_BUCKETS: &[u64] = &[0, 1, 5, 10, 25, 50, 100, 250, 500, 1_000, 10_000];

/// The request phases a traced request is broken into, in wall order.
/// `eval` covers planning's cursor compilation onward for buffered queries;
/// for streamed queries it covers the whole row pump (rendering overlaps
/// evaluation there, so `serialize` only measures head/trailer writes).
pub const PHASES: &[&str] = &["parse", "plan", "admission", "eval", "serialize"];

/// Typed handles onto the server's metric registry.
///
/// Handles that the hot path increments are plain fields (one relaxed
/// atomic add, no registry lock); labelled series that only materialise
/// when traffic arrives (`trial_requests_total{endpoint,status}`,
/// `trial_errors_total{kind}`) go through the registry's get-or-create,
/// which costs one short mutex hold per request.
#[derive(Debug)]
pub struct Metrics {
    registry: Arc<Registry>,
    /// Queries answered (cache hits included) — mirrors `/healthz`.
    pub(crate) queries_served: Arc<Counter>,
    /// `/load` requests that swapped in a new store epoch.
    pub(crate) loads_completed: Arc<Counter>,
    /// Fresh evaluations that actually ran parallel morsels.
    pub(crate) queries_parallel: Arc<Counter>,
    /// Fresh evaluations that stayed single-threaded.
    pub(crate) queries_sequential: Arc<Counter>,
    /// `/query?stream=1` responses completed.
    pub(crate) queries_streamed: Arc<Counter>,
    /// Requests shed with `429` by admission control.
    pub(crate) queries_shed: Arc<Counter>,
    /// Queries cancelled by their deadline (`408 deadline_exceeded`).
    pub(crate) queries_timeout: Arc<Counter>,
    /// Queries cancelled for any other reason (shutdown drain, client
    /// disconnect).
    pub(crate) queries_cancelled: Arc<Counter>,
    /// Sum of [`EvalStats::hash_tables_built`] over fresh evaluations.
    pub(crate) hash_tables_built: Arc<Counter>,
    /// Sum of [`EvalStats::parallel_morsels`] over fresh evaluations.
    pub(crate) parallel_morsels: Arc<Counter>,
    /// High watermark of [`EvalStats::topk_buffered_peak`] across queries.
    pub(crate) topk_buffered_peak: Arc<Gauge>,
    /// Rows rendered into `/query` responses (decade buckets).
    rows_returned: Arc<Histogram>,
    /// Per-node relative estimate error (percent) reported by analyzed
    /// runs — the feedback loop's convergence signal.
    est_error_pct: Arc<Histogram>,
    /// Plan-node observations ingested into feedback statistics.
    stats_observations: Arc<Counter>,
}

impl Metrics {
    /// Builds the metric surface, wiring fn-backed series onto the caches,
    /// the admission semaphore and the store registry.
    pub(crate) fn new(
        stores: &Arc<StoreRegistry>,
        cache: &Arc<QueryCache>,
        prefix: &Arc<PrefixCache>,
        admission: &Arc<Admission>,
        started: Instant,
    ) -> Metrics {
        let r = Arc::new(Registry::new());

        let queries_served = r.counter(
            "trial_queries_served_total",
            "Queries answered on /query and /explain, cache hits included.",
            &[],
        );
        let loads_completed = r.counter(
            "trial_loads_completed_total",
            "Successful /load requests (each swapped in a new store epoch).",
            &[],
        );
        let queries_parallel = r.counter(
            "trial_queries_parallel_total",
            "Fresh evaluations whose execution ran parallel morsels.",
            &[],
        );
        let queries_sequential = r.counter(
            "trial_queries_sequential_total",
            "Fresh evaluations that stayed single-threaded.",
            &[],
        );
        let queries_streamed = r.counter(
            "trial_queries_streamed_total",
            "Chunked /query?stream=1 responses completed.",
            &[],
        );
        let queries_shed = r.counter(
            "trial_queries_shed_total",
            "Requests shed with 429 by per-store admission control.",
            &[],
        );
        let queries_timeout = r.counter(
            "trial_queries_timeout_total",
            "Queries cancelled by their deadline (408 deadline_exceeded).",
            &[],
        );
        let queries_cancelled = r.counter(
            "trial_queries_cancelled_total",
            "Queries cancelled by shutdown drain or client disconnect.",
            &[],
        );
        let hash_tables_built = r.counter(
            "trial_eval_hash_tables_built_total",
            "Join hash tables built across fresh evaluations.",
            &[],
        );
        let parallel_morsels = r.counter(
            "trial_eval_parallel_morsels_total",
            "Morsels dispatched to parallel workers across fresh evaluations.",
            &[],
        );
        let topk_buffered_peak = r.gauge(
            "trial_eval_topk_buffered_peak",
            "Largest top-k heap any single query buffered (high watermark).",
            &[],
        );
        let rows_returned = r.histogram(
            "trial_query_rows_returned",
            "Rows rendered into one /query response.",
            &[],
            ROW_BUCKETS,
        );
        let est_error_pct = r.histogram(
            "trial_planner_est_error_pct",
            "Per-node relative estimate error (percent) from analyzed runs.",
            &[],
            EST_ERROR_BUCKETS,
        );
        let stats_observations = r.counter(
            "trial_planner_stats_observations_total",
            "Plan-node cardinality observations ingested into feedback statistics.",
            &[],
        );

        // Fn-backed series: /metrics and /healthz read the same atomics.
        let c = Arc::clone(cache);
        r.counter_fn(
            "trial_cache_hits_total",
            "Exact-key query-cache hits.",
            &[],
            move || c.hits(),
        );
        let c = Arc::clone(cache);
        r.counter_fn(
            "trial_cache_misses_total",
            "Exact-key query-cache misses.",
            &[],
            move || c.misses(),
        );
        let c = Arc::clone(cache);
        r.gauge_fn(
            "trial_cache_entries",
            "Live query-cache entries.",
            &[],
            move || c.len() as u64,
        );
        let c = Arc::clone(cache);
        r.gauge_fn(
            "trial_cache_capacity",
            "Configured query-cache capacity.",
            &[],
            move || c.capacity() as u64,
        );
        let p = Arc::clone(prefix);
        r.counter_fn(
            "trial_prefix_cache_hits_total",
            "Ordered-prefix cache hits (answered by slicing a deeper prefix).",
            &[],
            move || p.hits(),
        );
        let p = Arc::clone(prefix);
        r.gauge_fn(
            "trial_prefix_cache_entries",
            "Live ordered-prefix cache entries.",
            &[],
            move || p.len() as u64,
        );

        let a = Arc::clone(admission);
        r.counter_fn(
            "trial_admission_admitted_total",
            "Evaluations granted an admission permit.",
            &[],
            move || a.admitted(),
        );
        let a = Arc::clone(admission);
        r.counter_fn(
            "trial_admission_rejected_total",
            "Evaluations shed by admission control.",
            &[],
            move || a.rejected(),
        );
        let a = Arc::clone(admission);
        r.gauge_fn(
            "trial_admission_in_flight",
            "Evaluations currently holding a permit (all stores).",
            &[],
            move || a.live().0,
        );
        let a = Arc::clone(admission);
        r.gauge_fn(
            "trial_admission_waiting",
            "Requests currently queued for a permit (all stores).",
            &[],
            move || a.live().1,
        );
        let a = Arc::clone(admission);
        r.gauge_fn(
            "trial_admission_permits",
            "Configured per-store concurrent-evaluation permits.",
            &[],
            move || a.permits() as u64,
        );

        let s = Arc::clone(stores);
        r.gauge_fn(
            "trial_stores",
            "Named stores currently registered.",
            &[],
            move || s.len() as u64,
        );
        // Feedback-statistics state, read at scrape time from the same
        // StatsStores the planner consults.
        let s = Arc::clone(stores);
        r.gauge_fn(
            "trial_planner_stats_entries",
            "Observed-cardinality fingerprints held across all stores.",
            &[],
            move || {
                s.stats_list()
                    .iter()
                    .map(|(_, stats)| stats.entries() as u64)
                    .sum()
            },
        );
        let s = Arc::clone(stores);
        r.counter_fn(
            "trial_planner_replans_total",
            "Plans that drew on at least one observed estimate.",
            &[],
            move || {
                s.stats_list()
                    .iter()
                    .map(|(_, stats)| stats.replans())
                    .sum()
            },
        );
        r.gauge_fn(
            "trial_uptime_seconds",
            "Seconds since the server started.",
            &[],
            move || started.elapsed().as_secs(),
        );

        Metrics {
            registry: r,
            queries_served,
            loads_completed,
            queries_parallel,
            queries_sequential,
            queries_streamed,
            queries_shed,
            queries_timeout,
            queries_cancelled,
            hash_tables_built,
            parallel_morsels,
            topk_buffered_peak,
            rows_returned,
            est_error_pct,
            stats_observations,
        }
    }

    /// The underlying registry (rendered on `GET /metrics`).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Renders the whole surface in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.registry.render()
    }

    /// Records one finished request: the per-endpoint/status-class counter
    /// and the per-endpoint latency histogram.
    pub(crate) fn observe_request(&self, endpoint: &'static str, status: u16, duration_us: u64) {
        let class = match status {
            100..=199 => "1xx",
            200..=299 => "2xx",
            300..=399 => "3xx",
            400..=499 => "4xx",
            _ => "5xx",
        };
        self.registry
            .counter(
                "trial_requests_total",
                "HTTP requests handled, by endpoint and status class.",
                &[("endpoint", endpoint), ("status", class)],
            )
            .inc();
        self.registry
            .histogram(
                "trial_request_duration_us",
                "End-to-end request latency in microseconds, by endpoint.",
                &[("endpoint", endpoint)],
                LATENCY_BUCKETS_US,
            )
            .observe(duration_us);
    }

    /// Records one request phase (`parse`/`plan`/`admission`/`eval`/
    /// `serialize`) duration.
    pub(crate) fn observe_phase(&self, phase: &'static str, duration_us: u64) {
        self.registry
            .histogram(
                "trial_phase_duration_us",
                "Request-phase latency in microseconds.",
                &[("phase", phase)],
                LATENCY_BUCKETS_US,
            )
            .observe(duration_us);
    }

    /// Counts one cancelled query by its reason kind: `deadline_exceeded`
    /// lands on the timeout counter, shutdown/disconnect on the cancelled
    /// counter. Both the buffered 408/503 path and the mid-stream trailer
    /// path report through here, so the counters see every cancellation
    /// regardless of response framing.
    pub(crate) fn observe_cancel(&self, kind: &str) {
        if kind == "deadline_exceeded" {
            self.queries_timeout.inc();
        } else {
            self.queries_cancelled.inc();
        }
    }

    /// Records one structured error (`trial_errors_total{kind=...}`); kinds
    /// are the server's fixed error vocabulary, so cardinality is bounded.
    pub(crate) fn observe_error(&self, kind: &str) {
        self.registry
            .counter(
                "trial_errors_total",
                "Structured error responses, by error kind.",
                &[("kind", kind)],
            )
            .inc();
    }

    /// Folds a fresh evaluation's work counters into the surface.
    pub(crate) fn observe_eval(&self, stats: &EvalStats) {
        self.hash_tables_built.add(stats.hash_tables_built);
        self.parallel_morsels.add(stats.parallel_morsels);
        self.topk_buffered_peak.set_max(stats.topk_buffered_peak);
    }

    /// Records the number of rows rendered into one `/query` response.
    pub(crate) fn observe_rows(&self, rows: u64) {
        self.rows_returned.observe(rows);
    }

    /// Folds one analyzed run's feedback into the surface: every per-node
    /// estimate error lands in the histogram, every ingested observation in
    /// the counter.
    pub(crate) fn observe_feedback(&self, feedback: &ObserveSummary) {
        for &error in &feedback.est_errors {
            self.est_error_pct.observe(error);
        }
        self.stats_observations.add(feedback.ingested as u64);
    }
}
