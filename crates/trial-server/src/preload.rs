//! Named workload presets for `trial-serve --preload` and the examples.
//!
//! Each name maps to a `trial-workloads` generator with its default (or a
//! modest fixed) configuration, so a server with realistic data is one flag
//! away: `trial-serve --preload transport`. The store is registered under
//! the workload's name with its triples in relation `E` (every generator
//! uses that relation).

use trial_core::Triplestore;
use trial_workloads::{
    chain_store, clique_store, cycle_store, figure1_store, grid_store, random_store,
    social_network, transport_network, RandomStoreConfig, SocialConfig, TransportConfig,
};

/// The names accepted by [`preload_workload`].
pub const WORKLOAD_NAMES: &[&str] = &[
    "figure1",
    "transport",
    "social",
    "random",
    "chain",
    "cycle",
    "grid",
    "clique",
];

/// Generates the named preset workload, or `None` for an unknown name.
pub fn preload_workload(name: &str) -> Option<Triplestore> {
    match name {
        "figure1" => Some(figure1_store()),
        "transport" => Some(transport_network(&TransportConfig::default())),
        "social" => Some(social_network(&SocialConfig::default())),
        "random" => Some(random_store(&RandomStoreConfig::default())),
        "chain" => Some(chain_store(512)),
        "cycle" => Some(cycle_store(512)),
        "grid" => Some(grid_store(24)),
        "clique" => Some(clique_store(40)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_workload_generates() {
        for name in WORKLOAD_NAMES {
            let store = preload_workload(name)
                .unwrap_or_else(|| panic!("workload `{name}` failed to generate"));
            assert!(store.triple_count() > 0, "workload `{name}` is empty");
            assert!(store.relation("E").is_some(), "workload `{name}` lacks E");
        }
        assert!(preload_workload("nope").is_none());
    }
}
