//! The store registry: named, epoch-versioned, copy-on-write triplestores.
//!
//! Concurrency model (the heart of the server's snapshot isolation):
//!
//! * every named store is an immutable [`StoreSnapshot`] behind an `Arc`;
//! * readers take a brief `RwLock` read guard only to **clone the `Arc`**,
//!   then evaluate against their snapshot with no lock held — a query that
//!   started on epoch *n* sees epoch *n*'s triples to completion, no matter
//!   how many loads land meanwhile;
//! * writers build the replacement store entirely **off to the side** (the
//!   expensive parse + index work happens outside every lock), then swap the
//!   `Arc` under the write lock — held for a pointer swap, nothing more;
//! * concurrent writers to the *same* store are serialised by that store's
//!   [`StoreRegistry::write_gate`] mutex so two `/load`s cannot interleave
//!   their read-modify-write cycles; loads to different stores run in
//!   parallel, and readers never touch any gate.
//!
//! Epochs increment on every swap and key the query cache, so a load
//! invalidates cached results for its store without touching other stores.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use trial_core::Triplestore;
use trial_eval::StatsStore;

/// One immutable version of a named store.
#[derive(Debug)]
pub struct StoreSnapshot {
    name: String,
    epoch: u64,
    store: Arc<Triplestore>,
}

impl StoreSnapshot {
    /// The store's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The version number: 1 for the first load, +1 per swap.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The triplestore itself.
    pub fn store(&self) -> &Arc<Triplestore> {
        &self.store
    }
}

/// A concurrent map of named stores with copy-on-write swap semantics.
#[derive(Debug, Default)]
pub struct StoreRegistry {
    stores: RwLock<HashMap<String, Arc<StoreSnapshot>>>,
    /// One writer gate per store name, so loads to *different* stores build
    /// in parallel while loads to the same store serialise.
    write_gates: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// One feedback-statistics store per store name. The `Arc` outlives
    /// snapshot swaps — `/load` *invalidates* it (clearing entries, adopting
    /// the new epoch) rather than replacing it, so engines holding the old
    /// `Arc` keep working and their stale observations are epoch-rejected.
    stats: Mutex<HashMap<String, Arc<StatsStore>>>,
}

impl StoreRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        StoreRegistry::default()
    }

    /// The current snapshot of store `name`, if it exists. The returned
    /// `Arc` stays valid (and immutable) even if the store is swapped or
    /// removed afterwards.
    pub fn snapshot(&self, name: &str) -> Option<Arc<StoreSnapshot>> {
        self.stores
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// If exactly one store is registered, its snapshot — the "default
    /// store" convenience for single-tenant deployments, so `curl` users can
    /// omit `?store=`.
    pub fn single(&self) -> Option<Arc<StoreSnapshot>> {
        let stores = self
            .stores
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if stores.len() == 1 {
            stores.values().next().cloned()
        } else {
            None
        }
    }

    /// Snapshots of every store, sorted by name.
    pub fn list(&self) -> Vec<Arc<StoreSnapshot>> {
        let mut all: Vec<Arc<StoreSnapshot>> = self
            .stores
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .cloned()
            .collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Number of registered stores.
    pub fn len(&self) -> usize {
        self.stores
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// `true` if no stores are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The writer gate for store `name`: lock the returned mutex across a
    /// read-modify-write cycle (snapshot → build off to the side →
    /// [`StoreRegistry::set`]) so concurrent loads to the *same* store
    /// cannot lose updates. Loads to different stores get independent gates
    /// and proceed in parallel; readers never touch any gate.
    pub fn write_gate(&self, name: &str) -> Arc<Mutex<()>> {
        let mut gates = self
            .write_gates
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(gates.entry(name.to_owned()).or_default())
    }

    /// Publishes `store` as the new version of `name` and returns its epoch
    /// (previous epoch + 1, or 1 for a new name). The write lock is held
    /// only for the map insert — the store was built by the caller outside.
    pub fn set(&self, name: impl Into<String>, store: Triplestore) -> u64 {
        self.try_set(name, store, usize::MAX)
            .expect("usize::MAX store cap cannot be reached")
    }

    /// Like [`StoreRegistry::set`], but refuses (returns `None`, registry
    /// unchanged) when the store would be a *new* name and `max_stores`
    /// names already exist. The check and the insert happen under one write
    /// lock, so concurrent loads cannot overshoot the cap.
    pub fn try_set(
        &self,
        name: impl Into<String>,
        store: Triplestore,
        max_stores: usize,
    ) -> Option<u64> {
        let name = name.into();
        let mut stores = self
            .stores
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let epoch = match stores.get(&name) {
            Some(current) => current.epoch + 1,
            None if stores.len() >= max_stores => return None,
            None => 1,
        };
        stores.insert(
            name.clone(),
            Arc::new(StoreSnapshot {
                name,
                epoch,
                store: Arc::new(store),
            }),
        );
        Some(epoch)
    }

    /// The feedback-statistics store for `name`, created on first use. The
    /// same `Arc` is handed to every query against the store, so analyzed
    /// runs accumulate observed cardinalities that later plans draw on.
    pub fn stats_for(&self, name: &str) -> Arc<StatsStore> {
        let mut stats = self
            .stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(
            stats
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(StatsStore::new())),
        )
    }

    /// Clears `name`'s feedback statistics and stamps them with `epoch` (the
    /// snapshot epoch just published). Called by `/load` under the store's
    /// [`StoreRegistry::write_gate`], immediately after the snapshot swap,
    /// so the bump is atomic with respect to concurrent loads: observations
    /// from plans built against the old snapshot carry the old epoch and are
    /// rejected on ingest.
    pub fn invalidate_stats(&self, name: &str, epoch: u64) {
        self.stats_for(name).invalidate(epoch);
    }

    /// Every store's feedback statistics, sorted by name — the metrics
    /// exposition walks this to report entry and replan counts.
    pub fn stats_list(&self) -> Vec<(String, Arc<StatsStore>)> {
        let stats = self
            .stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut all: Vec<(String, Arc<StatsStore>)> = stats
            .iter()
            .map(|(name, s)| (name.clone(), Arc::clone(s)))
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trial_core::TriplestoreBuilder;

    fn store_with(n: usize) -> Triplestore {
        let mut b = TriplestoreBuilder::new();
        for i in 0..n {
            b.add_triple("E", format!("a{i}"), "p", format!("b{i}"));
        }
        b.finish()
    }

    #[test]
    fn set_bumps_epochs_per_store() {
        let reg = StoreRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.set("x", store_with(1)), 1);
        assert_eq!(reg.set("x", store_with(2)), 2);
        assert_eq!(reg.set("y", store_with(3)), 1);
        assert_eq!(reg.len(), 2);
        let x = reg.snapshot("x").unwrap();
        assert_eq!(x.epoch(), 2);
        assert_eq!(x.name(), "x");
        assert_eq!(x.store().triple_count(), 2);
        assert!(reg.snapshot("nope").is_none());
    }

    #[test]
    fn snapshots_outlive_swaps() {
        let reg = StoreRegistry::new();
        reg.set("x", store_with(1));
        let old = reg.snapshot("x").unwrap();
        reg.set("x", store_with(5));
        // The reader's snapshot still sees the old version.
        assert_eq!(old.epoch(), 1);
        assert_eq!(old.store().triple_count(), 1);
        assert_eq!(reg.snapshot("x").unwrap().store().triple_count(), 5);
    }

    #[test]
    fn single_is_only_for_exactly_one_store() {
        let reg = StoreRegistry::new();
        assert!(reg.single().is_none());
        reg.set("x", store_with(1));
        assert_eq!(reg.single().unwrap().name(), "x");
        reg.set("y", store_with(1));
        assert!(reg.single().is_none());
        assert_eq!(
            reg.list()
                .iter()
                .map(|s| s.name().to_owned())
                .collect::<Vec<_>>(),
            vec!["x", "y"]
        );
    }

    #[test]
    fn try_set_enforces_the_store_cap_atomically() {
        let reg = StoreRegistry::new();
        assert_eq!(reg.try_set("a", store_with(1), 2), Some(1));
        assert_eq!(reg.try_set("b", store_with(1), 2), Some(1));
        // A third name is refused; existing names still swap.
        assert_eq!(reg.try_set("c", store_with(1), 2), None);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.try_set("a", store_with(2), 2), Some(2));
    }

    #[test]
    fn write_gates_are_per_store() {
        let reg = StoreRegistry::new();
        let a1 = reg.write_gate("a");
        let a2 = reg.write_gate("a");
        let b = reg.write_gate("b");
        assert!(Arc::ptr_eq(&a1, &a2), "same store must share a gate");
        assert!(!Arc::ptr_eq(&a1, &b), "different stores must not serialise");
        // Holding `a`'s gate does not block `b`'s.
        let _guard_a = a1.lock().unwrap();
        assert!(b.try_lock().is_ok());
    }

    #[test]
    fn stats_are_per_store_and_survive_swaps_via_invalidation() {
        let reg = StoreRegistry::new();
        let a = reg.stats_for("a");
        assert!(
            Arc::ptr_eq(&a, &reg.stats_for("a")),
            "same store must share stats"
        );
        assert!(!Arc::ptr_eq(&a, &reg.stats_for("b")));
        // Invalidation keeps the Arc but adopts the new epoch.
        reg.set("a", store_with(1));
        reg.invalidate_stats("a", reg.snapshot("a").unwrap().epoch());
        assert!(Arc::ptr_eq(&a, &reg.stats_for("a")));
        assert_eq!(a.epoch(), 1);
        assert_eq!(
            reg.stats_list()
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn registry_is_send_sync() {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreRegistry>();
        assert_send_sync::<StoreSnapshot>();
    }
}
