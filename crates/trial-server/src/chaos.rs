//! Fault injection for robustness testing.
//!
//! A [`Chaos`] plan is parsed from a spec string (the `--chaos` flag or the
//! `TRIAL_CHAOS` environment variable) and consulted at **named sites** on
//! the serving path. Each rule fires deterministically every N-th hit of
//! its site, which makes chaos runs reproducible: the same request sequence
//! injects the same faults.
//!
//! Spec grammar (comma-separated rules):
//!
//! ```text
//! <site>=<action>[@<every>]
//! ```
//!
//! * `action` is `panic` (unwind the worker right there), `ioerror`
//!   (surface a synthetic `ConnectionReset` from a socket write), or
//!   `slow<ms>` (sleep that many milliseconds — a drip-feeding peer);
//! * `every` is the firing period in site hits (default 1 = every hit).
//!
//! The wired sites:
//!
//! | site           | where it fires                                        |
//! |----------------|-------------------------------------------------------|
//! | `route`        | request dispatch, before any handler runs             |
//! | `eval`         | `/query` evaluation, after the admission permit       |
//! | `stream.pump`  | the streaming row pump, after the chunked head        |
//! | `stream.chunk` | each streamed row batch, as an injected socket error  |
//! | `stream.slow`  | each streamed row batch, as an injected stall         |
//!
//! Example: `--chaos "eval=panic@3,stream.chunk=ioerror@2"` panics every
//! third fresh evaluation and kills every second streamed response with a
//! synthetic socket error. The chaos test suite drives exactly these rules
//! and asserts the invariants that matter: no leaked admission permits, no
//! poisoned locks, no partial cache entries, accurate error counters.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What an armed rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Panic on the worker thread (exercises the `catch_unwind` paths).
    Panic,
    /// Surface a synthetic `ConnectionReset` I/O error.
    IoError,
    /// Sleep this many milliseconds before proceeding.
    Slow(u64),
}

/// One parsed injection rule: fire `action` every `every`-th hit of `site`.
#[derive(Debug)]
struct Rule {
    site: String,
    action: Action,
    every: u64,
    hits: AtomicU64,
}

/// A set of fault-injection rules consulted at named sites.
///
/// The default ([`Chaos::none`]) carries no rules; every site check is then
/// one `is_empty()` test, so production servers pay nothing.
#[derive(Debug, Default)]
pub struct Chaos {
    rules: Vec<Rule>,
}

impl Chaos {
    /// The inert plan: no rules, no injected faults.
    pub fn none() -> Chaos {
        Chaos { rules: Vec::new() }
    }

    /// Parses a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<Chaos, String> {
        let mut rules = Vec::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let part = part.trim();
            let (site, action_spec) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos rule `{part}` is missing `=<action>`"))?;
            let (action_name, every) = match action_spec.split_once('@') {
                Some((a, n)) => {
                    let every = n
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("chaos rule `{part}` has a bad period `{n}`"))?;
                    (a, every)
                }
                None => (action_spec, 1),
            };
            let action = match action_name {
                "panic" => Action::Panic,
                "ioerror" => Action::IoError,
                slow if slow.starts_with("slow") => {
                    let ms = slow["slow".len()..]
                        .parse::<u64>()
                        .map_err(|_| format!("chaos rule `{part}` has a bad slow duration"))?;
                    Action::Slow(ms)
                }
                other => {
                    return Err(format!(
                        "chaos rule `{part}` has unknown action `{other}` \
                         (expected panic, ioerror or slow<ms>)"
                    ))
                }
            };
            rules.push(Rule {
                site: site.trim().to_owned(),
                action,
                every,
                hits: AtomicU64::new(0),
            });
        }
        Ok(Chaos { rules })
    }

    /// `true` when at least one rule is armed.
    pub fn enabled(&self) -> bool {
        !self.rules.is_empty()
    }

    /// Counts one hit of `site` and returns the action of a rule whose
    /// period divides the hit count, if any.
    fn fire(&self, site: &str) -> Option<Action> {
        let rule = self.rules.iter().find(|r| r.site == site)?;
        let hit = rule.hits.fetch_add(1, Ordering::Relaxed) + 1;
        (hit % rule.every == 0).then_some(rule.action)
    }

    /// Checkpoint for panic/slow sites: a firing `panic` rule unwinds right
    /// here, a `slow` rule sleeps, an `ioerror` rule is ignored (use
    /// [`Chaos::io`] at sites that can surface an `io::Error`).
    pub fn trigger(&self, site: &str) {
        match self.fire(site) {
            Some(Action::Panic) => panic!("chaos: injected panic at site `{site}`"),
            Some(Action::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(Action::IoError) | None => {}
        }
    }

    /// Checkpoint for I/O sites: a firing `ioerror` rule returns a synthetic
    /// `ConnectionReset`, `slow` sleeps, `panic` unwinds.
    pub fn io(&self, site: &str) -> io::Result<()> {
        match self.fire(site) {
            Some(Action::Panic) => panic!("chaos: injected panic at site `{site}`"),
            Some(Action::IoError) => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                format!("chaos: injected socket error at site `{site}`"),
            )),
            Some(Action::Slow(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(())
            }
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let chaos = Chaos::none();
        assert!(!chaos.enabled());
        chaos.trigger("route");
        assert!(chaos.io("stream.chunk").is_ok());
    }

    #[test]
    fn parses_rules_with_periods() {
        let chaos = Chaos::parse("eval=panic@3,stream.chunk=ioerror,stream.slow=slow5@2").unwrap();
        assert!(chaos.enabled());
        // Every hit of an @1 rule fires.
        assert!(chaos.io("stream.chunk").is_err());
        assert!(chaos.io("stream.chunk").is_err());
        // An @3 rule fires on the third hit only.
        assert_eq!(chaos.fire("eval"), None);
        assert_eq!(chaos.fire("eval"), None);
        assert_eq!(chaos.fire("eval"), Some(Action::Panic));
        assert_eq!(chaos.fire("eval"), None);
        // Unknown sites never fire.
        assert_eq!(chaos.fire("nope"), None);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(Chaos::parse("no-equals").is_err());
        assert!(Chaos::parse("eval=explode").is_err());
        assert!(Chaos::parse("eval=panic@0").is_err());
        assert!(Chaos::parse("eval=slowx").is_err());
        // Empty specs are fine (no rules).
        assert!(!Chaos::parse("").unwrap().enabled());
    }

    #[test]
    #[should_panic(expected = "chaos: injected panic at site `eval`")]
    fn panic_rules_unwind() {
        Chaos::parse("eval=panic").unwrap().trigger("eval");
    }
}
