//! Request routing and the endpoint handlers.
//!
//! | Endpoint        | Method | Body        | Purpose                                  |
//! |-----------------|--------|-------------|------------------------------------------|
//! | `/query`        | POST   | TriAL text  | evaluate a query, JSON triples + stats   |
//! | `/path`         | POST   | path expr   | evaluate a regular path query            |
//! | `/explain`      | POST   | TriAL text  | render the physical plan, don't execute  |
//! | `/load`         | POST   | N-Triples   | (re)build a named store copy-on-write    |
//! | `/stores`       | GET    | —           | per-store name/epoch/size statistics     |
//! | `/healthz`      | GET    | —           | liveness + service & cache counters      |
//! | `/metrics`      | GET    | —           | Prometheus text exposition of all metrics|
//! | `/debug/slow`   | GET    | —           | slow-query flight recorder (span trees)  |
//!
//! Request options ride in the query string (`?store=`, `?relation=`,
//! `?limit=`, `?threads=`, `?analyze=`, `?order=`, `?topk=`); bodies are
//! plain text. Responses are always JSON; errors are structured as
//! `{"error":{"kind":...,"message":...,"offset":...}}` with the byte offset
//! present for parse errors.
//!
//! **Parallelism**: `?threads=` overrides the server's configured
//! evaluation degree (`trial-serve --eval-threads`) per request, clamped to
//! `[1, MAX_EVAL_THREADS]`; the effective degree is reported as `threads`
//! on `/explain` and (as the configured default) on `/healthz`, whose
//! `eval` section also counts how many fresh `/query` evaluations actually
//! executed parallel morsels vs. stayed sequential. `/explain?analyze=1`
//! additionally **runs** the (bounded) query and reports each plan node's
//! actual output rows next to the planner's `est` in the structured `tree`
//! — the cost-model feedback that exposes estimates bad enough to mislead
//! morsel sizing.
//!
//! `/query` executes through the **streaming cursor pipeline**: `?limit=` is
//! compiled into the physical plan as a `Limit` node, so bounded queries
//! terminate the moment the limit is satisfied instead of truncating a fully
//! evaluated result, and rows are rendered into the JSON body as they are
//! pulled — the full result set is never buffered. Consequently `count` is
//! the number of rows **in the response**; `truncated: true` signals that
//! the limit stopped evaluation early (more rows exist). The count-only path
//! (`?limit=0`) drains a counting cursor — no rendered rows; order-preserving
//! plans count allocation-free, unordered plans (joins) track seen triples
//! (12 bytes each, never name strings or JSON) — and reports
//! the exact cardinality. `/explain` accepts the same `?limit=` and returns
//! both the rendered plan and a structured `tree` with per-node estimated
//! cardinality and `pipelined` flags, making pushdown decisions observable.
//!
//! **Ordered responses**: `?order=spo|pos|osp` streams the rows in that
//! permutation's key order — served from the matching index permutation
//! (and merge unions of such) whenever the plan can deliver it, an explicit
//! `[sort]` breaker otherwise — so the response row sequence is
//! deterministic. `?topk=k` returns the `k` smallest distinct triples under
//! the order (default `spo`) through a bounded heap that never buffers more
//! than `k` rows; over an already-ordered plan it collapses to a plain
//! early-terminating limit. Both knobs apply to `/explain` too (the plan
//! shows the chosen scan permutations and `[merge]`/`[sort]`/`[topk]`
//! tags), are echoed in the result fragment, and are part of the cache key;
//! epoch bumps invalidate ordered fragments like any other.
//!
//! **Path queries**: `POST /path` takes a regular path expression (atoms,
//! `/` concatenation, `|` alternation, `*`, `+`, `?`) over one relation
//! (`?relation=`, default `E`) and returns the reachable pairs encoded as
//! `(x, x, y)` triples. `?algo=auto|nfa|lower` picks the strategy —
//! closure-free paths **lower to TriAL joins** the adaptive planner
//! optimises like any hand-written query, while starred paths (or a
//! `?max_hops=` bound) run as a Thompson-NFA product walk — and
//! `/explain?path=1` renders whichever plan the same request would run.
//! Every `/query` knob (limit, threads, order, topk, streaming, cursors,
//! timeouts, caching) applies unchanged.

use crate::admission::AdmissionPermit;
use crate::cache::{CacheKey, PrefixEntry, PrefixKey, QueryKind};
use crate::http::{self, ChunkedWriter, Request, Response};
use crate::json::{self, ArrayStream, JsonObject};
use crate::registry::StoreSnapshot;
use crate::server::ServerState;
use crate::token::CursorToken;
use crate::trace::{self, Span, Trace};
use std::io::{self, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use trial_core::{Error, Expr, Permutation, Triplestore, TriplestoreBuilder, Value};
use trial_eval::{
    AnalyzedEvaluation, CancelToken, EvalStats, NodeProfile, PathStrategy, QueryStream, SmartEngine,
};
use trial_parser::PathExpr;
use trial_rdf::{parse_ntriples_iter, Term};

/// Default cap on the number of triples included in a `/query` response
/// body; override per request with `?limit=`. The limit is pushed into the
/// physical plan, so evaluation itself stops once the cap is reached
/// (`truncated: true` marks a response whose evaluation was cut short; use
/// `?limit=0` for an exact count).
pub const DEFAULT_RESULT_LIMIT: usize = 10_000;

/// Hard ceiling on `?limit=`: the limit is part of the cache key and each
/// rendered fragment lives in the LRU, so an unbounded client-chosen limit
/// would let well-formed requests pin unbounded memory. Requests above the
/// ceiling are clamped (observable via `truncated`).
pub const MAX_RESULT_LIMIT: usize = 100_000;

/// Fragments larger than this are served but not cached — the LRU counts
/// entries, not bytes, so giant renderings must not occupy slots.
const MAX_CACHED_FRAGMENT_BYTES: usize = 1 << 20;

/// Hard ceiling on the per-request `?threads=` knob (and on `--eval-threads`
/// via clamping in the binary): every evaluation thread is a real OS thread
/// on a worker already owned by the connection, so an unbounded
/// client-chosen degree would let one request fork the box. With the cap,
/// transient evaluation threads are bounded by `workers × MAX_EVAL_THREADS`
/// (morsel workers are scoped per operator and joined before the response
/// renders). Requests above the ceiling are clamped, observable via the
/// `threads` field of `/explain` and `/healthz`; degrees above the host's
/// core count oversubscribe without changing results.
pub const MAX_EVAL_THREADS: usize = 16;

/// Per-lane depth (in [`trial_eval::Exchange`] batches) of the streaming
/// exchange: enough buffering to overlap evaluation with socket writes,
/// small enough that a slow client backpressures producers instead of
/// accumulating the result in channel memory.
const EXCHANGE_DEPTH_BATCHES: usize = 4;

/// How a request is answered. Almost everything is a fully-buffered
/// [`Response`] written with `Content-Length`; `/query?stream=1` (or
/// `?cursor=`) validates everything it can up front and returns a
/// [`StreamingQuery`] job that the connection worker then drives against
/// the socket with chunked transfer encoding.
#[allow(clippy::large_enum_variant)] // Response dominates; Stream is boxed
pub(crate) enum Routed {
    /// A buffered response.
    Buffered(Response),
    /// A validated streaming query, ready to run against the socket.
    Stream(Box<StreamingQuery>),
}

/// Dispatches a request to its handler.
///
/// Every request gets a trace here: its ID (client-supplied `X-Request-Id`
/// or generated) is echoed on the response, and the finished span feeds the
/// per-endpoint metrics and the flight recorder. Buffered responses
/// finalize before returning; streaming jobs carry their trace and
/// finalize when the chunked response completes.
pub(crate) fn route(state: &ServerState, req: &Request) -> Routed {
    let request_id = req
        .request_id
        .clone()
        .unwrap_or_else(trace::next_request_id);
    let mut trace = Trace::begin(request_id, &req.method, &req.path, state.observe);
    // Fault-injection checkpoint: a `route=panic` chaos rule unwinds here,
    // inside the connection worker's catch_unwind, exercising the 500 path.
    state.chaos.trigger("route");
    // A draining server refuses new work with a complete structured 503
    // (observability endpoints keep answering — useful while watching a
    // drain); requests already past this gate run to completion or get
    // cancelled with reason `shutdown` when the grace window expires.
    if state.draining.load(Ordering::SeqCst)
        && matches!(req.path.as_str(), "/query" | "/path" | "/explain" | "/load")
    {
        let response = error_response(
            503,
            "shutdown",
            "server is draining; no new work is accepted",
            None,
        );
        let endpoint = endpoint_label(&req.path);
        return Routed::Buffered(finalize(state, trace, response, endpoint));
    }
    if req.method == "POST" && matches!(req.path.as_str(), "/query" | "/path") && wants_stream(req)
    {
        let kind = if req.path == "/path" {
            QueryKind::Path
        } else {
            QueryKind::Query
        };
        let endpoint = endpoint_label(&req.path);
        trace.set_streamed();
        return match streaming_query(state, req, kind, &mut trace) {
            Ok(mut job) => {
                job.trace = Some(trace);
                Routed::Stream(Box::new(job))
            }
            Err(response) => Routed::Buffered(finalize(state, trace, *response, endpoint)),
        };
    }
    let endpoint = endpoint_label(&req.path);
    let response = route_buffered(state, req, &mut trace);
    Routed::Buffered(finalize(state, trace, response, endpoint))
}

/// The bounded `endpoint` label value for a request path.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/query" => "query",
        "/path" => "path",
        "/explain" => "explain",
        "/load" => "load",
        "/stores" => "stores",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/debug/slow" => "debug_slow",
        _ => "other",
    }
}

/// Extracts the structured error kind from an [`error_body`] rendering.
/// The kind is always the first field, so a prefix match suffices (kinds
/// are a fixed vocabulary without escapes).
fn error_kind_of(body: &str) -> Option<String> {
    let rest = body.strip_prefix("{\"error\":{\"kind\":\"")?;
    Some(rest[..rest.find('"')?].to_owned())
}

/// Completes a buffered request: echoes the request ID, counts sheds and
/// structured errors, records the per-endpoint latency sample and files the
/// span with the flight recorder (every errored/shed request is retained;
/// successes compete for the slowest slots).
fn finalize(
    state: &ServerState,
    trace: Trace,
    mut response: Response,
    endpoint: &'static str,
) -> Response {
    if response.status == 429 {
        state.metrics.queries_shed.inc();
    }
    let kind = (response.status >= 400)
        .then(|| error_kind_of(&response.body))
        .flatten();
    if let Some(kind) = &kind {
        state.metrics.observe_error(kind);
    }
    response.request_id = Some(trace.request_id().to_owned());
    if let Some(span) = trace.finish(response.status, kind) {
        state
            .metrics
            .observe_request(endpoint, span.status, span.total_us);
        for (phase, us) in &span.phases {
            state.metrics.observe_phase(phase, *us);
        }
        state.recorder.record(span);
    }
    response
}

/// `?stream=1` opts into chunked streaming; presenting a pagination cursor
/// implies it (resumed pages are always streamed).
fn wants_stream(req: &Request) -> bool {
    matches!(req.param("stream"), Some("1" | "true" | "yes")) || req.param("cursor").is_some()
}

/// Dispatches a request to its buffered handler.
fn route_buffered(state: &ServerState, req: &Request, trace: &mut Trace) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/stores") => stores(state),
        ("GET", "/metrics") => metrics_text(state),
        ("GET", "/debug/slow") => debug_slow(state),
        ("POST", "/query") => query(state, req, QueryKind::Query, trace),
        ("POST", "/path") => query(state, req, QueryKind::Path, trace),
        // `?path=1` switches /explain to the path-expression grammar — the
        // plan rendered is exactly what the equivalent POST /path would run.
        ("POST", "/explain") => {
            let kind = if matches!(req.param("path"), Some("1" | "true" | "yes")) {
                QueryKind::PathExplain
            } else {
                QueryKind::Explain
            };
            query(state, req, kind, trace)
        }
        ("POST", "/load") => load(state, req),
        (
            _,
            "/healthz" | "/stores" | "/metrics" | "/debug/slow" | "/query" | "/path" | "/explain"
            | "/load",
        ) => error_response(
            405,
            "method_not_allowed",
            &format!("`{}` does not accept {}", req.path, req.method),
            None,
        ),
        _ => error_response(
            404,
            "not_found",
            &format!(
                "no route for `{}`; endpoints: /query /path /explain /load /stores /healthz /metrics /debug/slow",
                req.path
            ),
            None,
        ),
    }
}

/// Renders the structured JSON error body shared by all failure paths.
pub(crate) fn error_body(kind: &str, message: &str, offset: Option<usize>) -> String {
    let mut err = JsonObject::new().str("kind", kind).str("message", message);
    if let Some(offset) = offset {
        err = err.num("offset", offset as u64);
    }
    JsonObject::new().raw("error", &err.finish()).finish()
}

fn error_response(status: u16, kind: &str, message: &str, offset: Option<usize>) -> Response {
    Response::new(status, error_body(kind, message, offset))
}

/// Maps evaluation-time [`Error`]s onto HTTP statuses and error kinds.
///
/// Cancellation carries its reason slug as the kind: a query that hit its
/// deadline is a `408 deadline_exceeded`; one cancelled by a draining
/// server (or a vanished client) is a `503`. Cancelled evaluations also
/// count on the `trial_queries_{timeout,cancelled}_total` metrics here —
/// this is the one funnel every cancelled buffered evaluation exits
/// through, and refusals that never ran anything (the draining 503) don't
/// pass this way, so the counters measure cancelled *work*, not shed load.
fn eval_error_response(state: &ServerState, error: &Error) -> Response {
    let (status, kind) = match error {
        Error::Parse { .. } => (400, "parse"),
        Error::UnknownRelation(_) => (400, "unknown_relation"),
        Error::UnknownObject(_) => (400, "unknown_object"),
        Error::LimitExceeded(_) => (422, "limit_exceeded"),
        Error::Unsupported(_) => (422, "unsupported"),
        Error::InvalidExpression(_) | Error::SelectionUsesRightPosition { .. } => {
            (400, "invalid_expression")
        }
        Error::Cancelled(reason) => {
            state.metrics.observe_cancel(reason);
            let status = if reason == "deadline_exceeded" {
                408
            } else {
                503
            };
            (status, reason.as_str())
        }
    };
    error_response(status, kind, &error.to_string(), error.parse_offset())
}

/// `/healthz` reads every counter from the same sources `/metrics` renders
/// — the service counters are the registry's own [`trial_obs::Counter`]s
/// and the cache/admission numbers are the structs the registry's
/// fn-backed series read at scrape time — so the two surfaces cannot
/// disagree about any shared value.
fn healthz(state: &ServerState) -> Response {
    let cache = JsonObject::new()
        .num("hits", state.cache.hits())
        .num("misses", state.cache.misses())
        .num("entries", state.cache.len() as u64)
        .num("capacity", state.cache.capacity() as u64)
        // The prefix-closed ordered cache: hits served by slicing a cached
        // ordered prefix that an exact-key lookup missed.
        .num("hits_prefix", state.prefix.hits())
        .num("prefix_entries", state.prefix.len() as u64)
        .finish();
    // Admission control: per-store evaluation permits, live occupancy and
    // the shed counter — the observable face of saturation behaviour.
    let (in_flight, waiting) = state.admission.live();
    let admission = JsonObject::new()
        .num("permits", state.admission.permits() as u64)
        .num("max_waiters", state.admission.max_waiters() as u64)
        .num("in_flight", in_flight)
        .num("waiting", waiting)
        .num("admitted", state.admission.admitted())
        .num("rejected", state.admission.rejected())
        .finish();
    // Evaluation-thread configuration plus per-query execution-shape
    // counters: a fresh /query evaluation counts as `queries_parallel` when
    // its execution actually ran parallel morsels, `queries_sequential`
    // otherwise (cache hits run nothing and count as neither).
    let eval = JsonObject::new()
        .num(
            "threads",
            state.eval.threads.clamp(1, MAX_EVAL_THREADS) as u64,
        )
        .num("max_threads", MAX_EVAL_THREADS as u64)
        .num("queries_parallel", state.metrics.queries_parallel.get())
        .num("queries_sequential", state.metrics.queries_sequential.get())
        .num("queries_streamed", state.metrics.queries_streamed.get())
        .finish();
    let body = JsonObject::new()
        .str("status", "ok")
        .num("uptime_ms", state.started.elapsed().as_millis() as u64)
        .num("stores", state.registry.len() as u64)
        .num("queries_served", state.metrics.queries_served.get())
        .num("loads_completed", state.metrics.loads_completed.get())
        .raw("eval", &eval)
        .raw("cache", &cache)
        .raw("admission", &admission)
        .finish();
    Response::ok(body)
}

/// `GET /metrics`: the whole registry in Prometheus text exposition format.
fn metrics_text(state: &ServerState) -> Response {
    Response::with_content_type(state.metrics.render(), "text/plain; version=0.0.4")
}

/// `GET /debug/slow`: the flight recorder's retained spans — the N slowest
/// successful requests plus every recent errored/shed request — each with
/// its phase breakdown, plan and (when profiling sampled it) per-operator
/// timings.
fn debug_slow(state: &ServerState) -> Response {
    let slow: Vec<String> = state.recorder.slow().iter().map(|s| span_json(s)).collect();
    let errors: Vec<String> = state
        .recorder
        .errors()
        .iter()
        .map(|s| span_json(s))
        .collect();
    Response::ok(
        JsonObject::new()
            .boolean("observe", state.observe)
            .num("profile_sample", state.eval.profile_sample as u64)
            .raw("slow", &json::array(slow))
            .raw("errors", &json::array(errors))
            .finish(),
    )
}

/// Renders one recorded request span for `/debug/slow`.
fn span_json(span: &Span) -> String {
    let mut phases = JsonObject::new();
    for (name, us) in &span.phases {
        phases = phases.num(&format!("{name}_us"), *us);
    }
    let mut obj = JsonObject::new()
        .str("request_id", &span.request_id)
        .str("method", &span.method)
        .str("path", &span.path)
        .num("status", span.status as u64)
        .num("total_us", span.total_us)
        .boolean("cached", span.cached)
        .boolean("streamed", span.streamed);
    obj = match &span.store {
        Some(store) => obj.str("store", store),
        None => obj.raw("store", "null"),
    };
    obj = match &span.query {
        Some(query) => obj.str("query", query),
        None => obj.raw("query", "null"),
    };
    obj = match &span.error_kind {
        Some(kind) => obj.str("error", kind),
        None => obj.raw("error", "null"),
    };
    obj = obj.raw("phases", &phases.finish());
    obj = match &span.plan {
        Some(plan) => obj.str("plan", plan),
        None => obj.raw("plan", "null"),
    };
    if span.profile_stride > 0 {
        let nodes: Vec<String> = span.nodes.iter().map(node_profile_json).collect();
        obj = obj
            .num("profile_stride", span.profile_stride as u64)
            .raw("nodes", &json::array(nodes));
    }
    obj.finish()
}

/// Renders one per-operator profile (preorder-indexed like the `/explain`
/// tree).
fn node_profile_json(profile: &NodeProfile) -> String {
    let mut obj = JsonObject::new().num("elapsed_us", profile.elapsed_us);
    obj = match profile.rows {
        Some(rows) => obj.num("rows", rows),
        None => obj.raw("rows", "null"),
    };
    if let Some(build_us) = profile.build_us {
        obj = obj.num("build_us", build_us);
    }
    obj.finish()
}

fn stores(state: &ServerState) -> Response {
    let entries: Vec<String> = state
        .registry
        .list()
        .iter()
        .map(|snapshot| {
            let store = snapshot.store();
            let relations: Vec<String> = store
                .relations()
                .map(|r| {
                    JsonObject::new()
                        .str("name", r.name())
                        .num("triples", r.len() as u64)
                        .finish()
                })
                .collect();
            JsonObject::new()
                .str("name", snapshot.name())
                .num("epoch", snapshot.epoch())
                .num("triples", store.triple_count() as u64)
                .num("objects", store.object_count() as u64)
                .raw("relations", &json::array(relations))
                .finish()
        })
        .collect();
    Response::ok(
        JsonObject::new()
            .raw("stores", &json::array(entries))
            .finish(),
    )
}

/// Resolves the target store: `?store=` if given, otherwise the single
/// registered store, otherwise a structured error.
fn resolve_store(state: &ServerState, req: &Request) -> Result<Arc<StoreSnapshot>, Box<Response>> {
    match req.param("store") {
        Some(name) => state.registry.snapshot(name).ok_or_else(|| {
            Box::new(error_response(
                404,
                "unknown_store",
                &format!("no store named `{name}` is loaded"),
                None,
            ))
        }),
        None => state.registry.single().ok_or_else(|| {
            let message = if state.registry.is_empty() {
                "no stores are loaded; POST an N-Triples document to /load?store=<name> first"
                    .to_owned()
            } else {
                let names: Vec<String> = state
                    .registry
                    .list()
                    .iter()
                    .map(|s| s.name().to_owned())
                    .collect();
                format!(
                    "multiple stores are loaded ({}); pick one with ?store=",
                    names.join(", ")
                )
            };
            Box::new(error_response(400, "no_store_selected", &message, None))
        }),
    }
}

/// The parsed request knobs shared by the buffered and streaming `/query`
/// paths (and `/explain`).
struct QueryParams {
    /// The explicit `?limit=` (clamped), if any.
    requested_limit: Option<usize>,
    /// The effective response cap (`DEFAULT_RESULT_LIMIT` when unset).
    limit: usize,
    /// The effective evaluation parallelism.
    threads: usize,
    /// `true` for `/explain?analyze=1`.
    analyze: bool,
    /// The `?order=` permutation, if any.
    order: Option<Permutation>,
    /// The `?topk=` bound, if any.
    topk: Option<usize>,
    /// `true` for `?nostats=1`: plan with pure heuristics, ignoring the
    /// store's observed-cardinality feedback — the escape hatch for
    /// comparing adaptive and static plans (and for pinning down a
    /// regression to the feedback loop).
    nostats: bool,
    /// The effective evaluation deadline: a positive `?timeout_ms=`, else
    /// the server default; `?timeout_ms=0` is the explicit opt-out.
    timeout: Option<Duration>,
}

/// Parses and validates the query-string knobs shared by every query path.
fn parse_query_params(
    state: &ServerState,
    req: &Request,
    kind: QueryKind,
) -> Result<QueryParams, Box<Response>> {
    let bad = |message: String| Box::new(error_response(400, "bad_request", &message, None));
    let requested_limit = match req.param("limit") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => Some(n.min(MAX_RESULT_LIMIT)),
            Err(_) => return Err(bad(format!("unparsable ?limit= value `{raw}`"))),
        },
        None => None,
    };
    // Per-request parallelism override: `?threads=` is clamped to
    // [1, MAX_EVAL_THREADS]; without it the server's configured degree
    // (`--eval-threads`) applies.
    let threads = match req.param("threads") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n.clamp(1, MAX_EVAL_THREADS),
            Err(_) => return Err(bad(format!("unparsable ?threads= value `{raw}`"))),
        },
        None => state.eval.threads.clamp(1, MAX_EVAL_THREADS),
    };
    // `/explain?analyze=1` executes the (bounded) query and reports actual
    // per-node row counts next to the estimates.
    let analyze = matches!(kind, QueryKind::Explain | QueryKind::PathExplain)
        && matches!(req.param("analyze"), Some("1" | "true" | "yes"));
    // `?order=spo|pos|osp` asks for rows in that permutation's key order
    // (delivered from the matching index permutation when possible, an
    // explicit sort breaker otherwise); `?topk=k` asks for the k smallest
    // distinct triples under that order (default spo) via a bounded heap —
    // or a plain early-terminating limit when the plan already streams
    // ordered. Both are part of the cache key.
    let order = match req.param("order") {
        Some(raw) => match Permutation::parse(raw) {
            Some(p) => Some(p),
            None => {
                // The 400 body enumerates the accepted values machine-readably
                // (kind stays the first field — error_kind_of prefix-matches).
                let err = JsonObject::new()
                    .str("kind", "bad_request")
                    .str(
                        "message",
                        &format!("unparsable ?order= value `{raw}` (expected spo, pos or osp)"),
                    )
                    .raw("accepted", &json::string_array(["spo", "pos", "osp"]));
                return Err(Box::new(Response::new(
                    400,
                    JsonObject::new().raw("error", &err.finish()).finish(),
                )));
            }
        },
        None => None,
    };
    let topk = match req.param("topk") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) => Some(k.min(MAX_RESULT_LIMIT)),
            Err(_) => return Err(bad(format!("unparsable ?topk= value `{raw}`"))),
        },
        None => None,
    };
    // `?nostats=1` opts the request out of feedback-driven planning.
    let nostats = matches!(req.param("nostats"), Some("1" | "true" | "yes"));
    // `?timeout_ms=` arms a per-request evaluation deadline (admission wait
    // counts against it); without it the server default applies, and an
    // explicit `0` opts this request out of any deadline.
    let timeout = match req.param("timeout_ms") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(0) => None,
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => return Err(bad(format!("unparsable ?timeout_ms= value `{raw}`"))),
        },
        None => state.default_timeout,
    };
    Ok(QueryParams {
        requested_limit,
        limit: requested_limit.unwrap_or(DEFAULT_RESULT_LIMIT),
        threads,
        analyze,
        order,
        topk,
        nostats,
        timeout,
    })
}

/// The trimmed plain-text query body, or a structured 400.
fn query_text(req: &Request) -> Result<&str, Box<Response>> {
    let Some(text) = req.body_utf8() else {
        return Err(Box::new(error_response(
            400,
            "bad_request",
            "query body is not valid UTF-8",
            None,
        )));
    };
    let text = text.trim();
    if text.is_empty() {
        return Err(Box::new(error_response(
            400,
            "bad_request",
            "empty query body; POST the TriAL expression as plain text",
            None,
        )));
    }
    Ok(text)
}

/// The path-specific request knobs: `?relation=` names the edge relation
/// the expression walks (default `E`), `?algo=` picks the execution
/// strategy and `?max_hops=` bounds the walk length in graph edges.
struct PathParams {
    relation: String,
    strategy: PathStrategy,
    max_hops: Option<usize>,
}

/// Parses and validates the `/path`-only query-string knobs.
fn parse_path_params(req: &Request) -> Result<PathParams, Box<Response>> {
    let bad = |message: String| Box::new(error_response(400, "bad_request", &message, None));
    let relation = req.param("relation").unwrap_or("E").to_owned();
    let strategy = match req.param("algo") {
        Some(raw) => match PathStrategy::parse(raw) {
            Some(s) => s,
            None => {
                return Err(bad(format!(
                    "unparsable ?algo= value `{raw}` (expected auto, nfa or lower)"
                )))
            }
        },
        None => PathStrategy::Auto,
    };
    let max_hops = match req.param("max_hops") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(h) => Some(h),
            Err(_) => return Err(bad(format!("unparsable ?max_hops= value `{raw}`"))),
        },
        None => None,
    };
    // The TriAL lowering evaluates full fixpoints; it has no notion of a
    // hop budget, so forcing it alongside one would silently drop the bound.
    if strategy == PathStrategy::Lower && max_hops.is_some() {
        return Err(bad(
            "?algo=lower cannot honour ?max_hops= (the TriAL lowering runs full closures); \
             use ?algo=auto or ?algo=nfa"
                .to_owned(),
        ));
    }
    Ok(PathParams {
        relation,
        strategy,
        max_hops,
    })
}

/// The cache-key text for a path request. The path kinds already separate
/// the grammar namespaces; within them, the knobs that change the result
/// ride in front of the expression text (the JSON-quoted relation cannot
/// collide with the space-delimited fields after it).
fn path_key_text(pp: &PathParams, text: &str) -> String {
    let hops = pp
        .max_hops
        .map_or_else(|| "-".to_owned(), |h| h.to_string());
    format!(
        "{} {} {hops} {text}",
        json::string(&pp.relation),
        pp.strategy.name()
    )
}

/// A compiled request body, ready to plan: ordinary TriAL algebra —
/// including the **TriAL lowering** of a path expression, which from here
/// on is indistinguishable from a hand-written query and gets the adaptive
/// planner's full treatment — or a path expression kept whole for the
/// Thompson-NFA product walk.
enum Compiled {
    Trial(Expr),
    Path {
        path: PathExpr,
        relation: String,
        max_hops: Option<usize>,
    },
}

impl Compiled {
    /// Canonical rendering for the explain `query` field.
    fn display(&self) -> String {
        match self {
            Compiled::Trial(expr) => expr.to_string(),
            Compiled::Path { path, .. } => path.to_string(),
        }
    }

    fn stream<'s>(
        &self,
        engine: &SmartEngine,
        store: &'s Triplestore,
        limit: Option<usize>,
        order: Option<Permutation>,
        topk: Option<usize>,
    ) -> trial_core::Result<QueryStream<'s>> {
        match self {
            Compiled::Trial(expr) => engine.stream_query(expr, store, limit, order, topk),
            Compiled::Path {
                path,
                relation,
                max_hops,
            } => engine.stream_path_query(path, relation, store, *max_hops, limit, order, topk),
        }
    }

    fn stream_after<'s>(
        &self,
        engine: &SmartEngine,
        store: &'s Triplestore,
        limit: Option<usize>,
        order: Permutation,
        after: [trial_core::ObjectId; 3],
    ) -> trial_core::Result<QueryStream<'s>> {
        match self {
            Compiled::Trial(expr) => engine.stream_query_after(expr, store, limit, order, after),
            Compiled::Path {
                path,
                relation,
                max_hops,
            } => engine
                .stream_path_query_after(path, relation, store, *max_hops, limit, order, after),
        }
    }

    fn plan(
        &self,
        engine: &SmartEngine,
        store: &Triplestore,
        limit: Option<usize>,
        order: Option<Permutation>,
        topk: Option<usize>,
    ) -> trial_core::Result<trial_eval::Plan> {
        match self {
            Compiled::Trial(expr) => engine.plan_query(expr, store, limit, order, topk),
            Compiled::Path {
                path,
                relation,
                max_hops,
            } => engine.plan_path_query(path, relation, store, *max_hops, limit, order, topk),
        }
    }

    fn analyzed(
        &self,
        engine: &SmartEngine,
        store: &Triplestore,
        limit: Option<usize>,
        order: Option<Permutation>,
        topk: Option<usize>,
    ) -> trial_core::Result<AnalyzedEvaluation> {
        match self {
            Compiled::Trial(expr) => {
                engine.evaluate_analyzed_query(expr, store, limit, order, topk)
            }
            Compiled::Path {
                path,
                relation,
                max_hops,
            } => engine
                .evaluate_analyzed_path_query(path, relation, store, *max_hops, limit, order, topk),
        }
    }
}

/// Parses the request body under the endpoint's grammar and resolves the
/// path execution strategy. Path expressions whose strategy resolves to the
/// TriAL lowering come back as [`Compiled::Trial`].
fn compile_body(text: &str, path_params: Option<&PathParams>) -> trial_core::Result<Compiled> {
    match path_params {
        Some(pp) => {
            let path = trial_parser::parse_path(text)?;
            Ok(if pp.strategy.resolves_to_nfa(&path, pp.max_hops) {
                Compiled::Path {
                    path,
                    relation: pp.relation.clone(),
                    max_hops: pp.max_hops,
                }
            } else {
                Compiled::Trial(trial_eval::rpq::lower(&path, &pp.relation))
            })
        }
        None => Ok(Compiled::Trial(trial_parser::parse(text)?)),
    }
}

/// The shared head of an explain fragment: the canonical query text plus,
/// for path explains, the knobs and the **resolved** strategy (what `auto`
/// actually picked) — the observable answer to "did this path lower to
/// joins or run as an NFA walk".
fn explain_head(compiled: &Compiled, path_params: Option<&PathParams>) -> JsonObject {
    let mut obj = JsonObject::new().str("query", &compiled.display());
    if let Some(pp) = path_params {
        obj = obj.str("relation", &pp.relation).str(
            "algo",
            if matches!(compiled, Compiled::Path { .. }) {
                "nfa"
            } else {
                "lower"
            },
        );
        if let Some(h) = pp.max_hops {
            obj = obj.num("max_hops", h as u64);
        }
    }
    obj
}

/// The structured `429 Too Many Requests` an admission rejection turns
/// into: a complete, parseable body plus a `Retry-After` hint — saturated
/// stores shed load visibly instead of hanging sockets.
fn rejected_response(store: &str, retry_after: u64) -> Response {
    let mut response = error_response(
        429,
        "saturated",
        &format!(
            "store `{store}` is at its concurrent-evaluation limit; retry after {retry_after}s"
        ),
        None,
    );
    response.retry_after = Some(retry_after);
    response
}

/// `/query` and `/explain`: parse the TriAL text, consult the LRU cache
/// keyed by `(store, epoch, kind, text)`, evaluate or plan on a miss.
fn query(state: &ServerState, req: &Request, kind: QueryKind, trace: &mut Trace) -> Response {
    let start = Instant::now();
    let text = match query_text(req) {
        Ok(text) => text,
        Err(response) => return *response,
    };
    trace.set_query(text);
    let params = match parse_query_params(state, req, kind) {
        Ok(p) => p,
        Err(response) => return *response,
    };
    let QueryParams {
        requested_limit,
        limit,
        threads,
        analyze,
        order,
        topk,
        nostats,
        timeout,
    } = params;
    let is_explain = matches!(kind, QueryKind::Explain | QueryKind::PathExplain);
    let path_params = if matches!(kind, QueryKind::Path | QueryKind::PathExplain) {
        match parse_path_params(req) {
            Ok(pp) => Some(pp),
            Err(response) => return *response,
        }
    } else {
        None
    };
    // Cache-key text: TriAL requests key on the body verbatim; path requests
    // fold the path-only knobs in (they change the result).
    let key_text = match &path_params {
        Some(pp) => path_key_text(pp, text),
        None => text.to_owned(),
    };

    let snapshot = match resolve_store(state, req) {
        Ok(s) => s,
        Err(response) => return *response,
    };
    trace.set_store(snapshot.name());

    // The store's feedback statistics (skipped under ?nostats=1). Fetched
    // before the cache probe: the key carries the table's generation, so a
    // fragment planned against cold statistics stops being served once the
    // table has warmed — and a cached analyze cannot starve the feedback
    // loop that warms it.
    let stats = (!nostats).then(|| state.registry.stats_for(snapshot.name()));
    let key = CacheKey {
        store: snapshot.name().to_owned(),
        epoch: snapshot.epoch(),
        kind,
        text: key_text.clone(),
        // The rendered fragment depends on the effective limit, so requests
        // with different limits must not share an entry. Explain plans also
        // change shape under an explicit limit (the pushed-down Limit nodes).
        limit: if is_explain {
            requested_limit.filter(|&k| k > 0).unwrap_or(0) as u64
        } else {
            limit as u64
        },
        threads: threads as u64,
        analyze,
        order: order.map(Permutation::name),
        topk: topk.map(|k| k as u64),
        nostats,
        stats_generation: stats.as_ref().map_or(0, |s| s.generation()),
    };
    if let Some(fragment) = state.cache.get(&key) {
        state.metrics.queries_served.inc();
        trace.set_cached();
        return Response::ok(wrap(&snapshot, true, &fragment, start));
    }

    // Prefix-closed ordered cache: an ordered (non-top-k) result under a
    // fixed `(store, epoch, text, threads, order)` is the same row sequence
    // for every limit, so a cached prefix of ≥ limit rows answers this
    // request by slicing — no parse, no plan, no evaluation, no admission.
    let ordered_prefix = match (kind, order, topk) {
        (QueryKind::Query | QueryKind::Path, Some(order), None) if limit > 0 => Some(PrefixKey {
            store: snapshot.name().to_owned(),
            epoch: snapshot.epoch(),
            kind,
            text: key_text.clone(),
            threads: threads as u64,
            order: order.name(),
        }),
        _ => None,
    };
    if let Some(prefix_key) = &ordered_prefix {
        if let Some(entry) = state.prefix.get_covering(prefix_key, limit) {
            let order = order.expect("ordered_prefix implies an order");
            let count = entry.rows.len().min(limit);
            let truncated = count < entry.rows.len() || !entry.complete;
            let fragment = Arc::new(ordered_fragment(
                order,
                &entry.rows[..count],
                truncated,
                &entry.stats,
            ));
            if fragment.len() <= MAX_CACHED_FRAGMENT_BYTES {
                state.cache.insert(key, Arc::clone(&fragment));
            }
            state.metrics.queries_served.inc();
            trace.set_cached();
            return Response::ok(wrap(&snapshot, true, &fragment, start));
        }
    }

    let parse_started = trace.now();
    let compiled = match compile_body(text, path_params.as_ref()) {
        Ok(compiled) => compiled,
        Err(e) => return eval_error_response(state, &e),
    };
    trace.phase("parse", parse_started);

    // Every fresh evaluation runs under an armed cancel token — the request
    // deadline when one applies, a manual token otherwise — registered with
    // the in-flight set so a draining server can cancel it. Created before
    // admission: the wait for a permit counts against the deadline.
    let token = match timeout {
        Some(t) => CancelToken::with_timeout(t),
        None => CancelToken::manual(),
    };
    state.inflight.register(&token);

    // Admission: every fresh evaluation (cache hits never get here) takes a
    // per-store permit; saturated stores shed load with a structured 429.
    // The traced phase is the wait for a permit (zero when uncontended).
    let admission_started = trace.now();
    let _permit = match state.admission.acquire(snapshot.name()) {
        Ok(permit) => permit,
        Err(retry_after) => return rejected_response(snapshot.name(), retry_after),
    };
    trace.phase("admission", admission_started);

    // Fault-injection checkpoint: an `eval=panic` rule unwinds here, after
    // the permit is held — the chaos suite's probe that unwinding releases
    // admission slots and poisons no locks.
    state.chaos.trigger("eval");

    let options = trial_eval::EvalOptions {
        threads,
        cancel: token.clone(),
        ..state.eval.clone()
    };
    let engine = match &stats {
        Some(stats) => SmartEngine::with_stats(options, Arc::clone(stats)),
        None => SmartEngine::with_options(options),
    };
    let fragment = match kind {
        QueryKind::Query | QueryKind::Path if ordered_prefix.is_some() => {
            // Ordered path: render per-row fragments so the prefix cache can
            // keep them for slicing under any smaller limit.
            let order = order.expect("ordered_prefix implies an order");
            match render_ordered_rows(
                &engine,
                &compiled,
                snapshot.store(),
                limit,
                order,
                &token,
                trace,
            ) {
                Ok((rows, truncated, stats_rendered, stats)) => {
                    observe_fresh_eval(state, &stats);
                    state.metrics.observe_rows(rows.len() as u64);
                    let entry = PrefixEntry {
                        rows,
                        complete: !truncated,
                        stats: stats_rendered,
                    };
                    let fragment = ordered_fragment(order, &entry.rows, truncated, &entry.stats);
                    let bytes: usize = entry.rows.iter().map(String::len).sum();
                    if bytes <= MAX_CACHED_FRAGMENT_BYTES {
                        state
                            .prefix
                            .offer(ordered_prefix.expect("checked above"), Arc::new(entry));
                    }
                    fragment
                }
                Err(e) => return eval_error_response(state, &e),
            }
        }
        QueryKind::Query | QueryKind::Path => {
            match render_query_fragment(
                &engine,
                &compiled,
                snapshot.store(),
                limit,
                order,
                topk,
                &token,
                trace,
            ) {
                Ok((fragment, rows, stats)) => {
                    // Count the execution shape of fresh evaluations (cache hits
                    // run nothing, so they count as neither).
                    observe_fresh_eval(state, &stats);
                    state.metrics.observe_rows(rows);
                    fragment
                }
                Err(e) => return eval_error_response(state, &e),
            }
        }
        QueryKind::Explain | QueryKind::PathExplain => {
            // An explicit positive ?limit= shows the limit-pushed plan the
            // equivalent /query would run; ?order=/?topk= likewise show the
            // ordered plan (scan permutations, sort breakers, top-k heaps).
            let plan_limit = requested_limit.filter(|&k| k > 0);
            if analyze {
                let eval_started = trace.now();
                match compiled.analyzed(&engine, snapshot.store(), plan_limit, order, topk) {
                    Ok(analyzed) => {
                        // Analyze runs plan + evaluation in one call; the
                        // combined wall time lands in the `eval` phase.
                        trace.phase("eval", eval_started);
                        trace.set_plan(|| analyzed.plan.explain().trim_end().to_owned());
                        trace.set_nodes(analyzed.profiles.clone(), 1);
                        observe_fresh_eval(state, &analyzed.evaluation.stats);
                        // The analyze run is what feeds the planner's
                        // statistics; its per-node estimate errors land in
                        // the est_error histogram.
                        if let Some(feedback) = &analyzed.feedback {
                            state.metrics.observe_feedback(feedback);
                        }
                        let mut index = 0;
                        let tree = plan_tree_json(
                            &analyzed.plan.root,
                            threads,
                            Some(&analyzed.est_sources),
                            Some(&analyzed.actuals),
                            Some(&analyzed.profiles),
                            &mut index,
                        );
                        explain_head(&compiled, path_params.as_ref())
                            .num("threads", threads as u64)
                            .str("plan", analyzed.plan.explain().trim_end())
                            .num("rows", analyzed.evaluation.result.len() as u64)
                            .raw("tree", &tree)
                            .raw("stats", &stats_json(&analyzed.evaluation.stats))
                            .finish()
                    }
                    Err(e) => return eval_error_response(state, &e),
                }
            } else {
                let plan_started = trace.now();
                let plan = match compiled.plan(&engine, snapshot.store(), plan_limit, order, topk) {
                    Ok(p) => p,
                    Err(e) => return eval_error_response(state, &e),
                };
                trace.phase("plan", plan_started);
                trace.set_plan(|| plan.explain().trim_end().to_owned());
                let est_sources = engine.estimate_sources(&plan);
                let mut index = 0;
                let tree = plan_tree_json(
                    &plan.root,
                    threads,
                    Some(&est_sources),
                    None,
                    None,
                    &mut index,
                );
                explain_head(&compiled, path_params.as_ref())
                    .num("threads", threads as u64)
                    .str("plan", plan.explain().trim_end())
                    .raw("tree", &tree)
                    .finish()
            }
        }
    };

    let serialize_started = trace.now();
    let fragment = Arc::new(fragment);
    if fragment.len() <= MAX_CACHED_FRAGMENT_BYTES {
        state.cache.insert(key, Arc::clone(&fragment));
    }
    state.metrics.queries_served.inc();
    let response = Response::ok(wrap(&snapshot, false, &fragment, start));
    trace.phase("serialize", serialize_started);
    response
}

/// Counts one fresh evaluation's execution shape (parallel vs. sequential)
/// and folds its work counters into the metric surface.
fn observe_fresh_eval(state: &ServerState, stats: &EvalStats) {
    if stats.parallel_morsels > 0 {
        state.metrics.queries_parallel.inc();
    } else {
        state.metrics.queries_sequential.inc();
    }
    state.metrics.observe_eval(stats);
}

/// Assembles the response envelope around a cached (or fresh) payload
/// fragment. `elapsed_us` is measured per request, so cache hits visibly
/// undercut misses.
fn wrap(snapshot: &StoreSnapshot, cached: bool, fragment: &str, start: Instant) -> String {
    JsonObject::new()
        .str("store", snapshot.name())
        .num("epoch", snapshot.epoch())
        .boolean("cached", cached)
        .num("elapsed_us", start.elapsed().as_micros() as u64)
        .raw("result", fragment)
        .finish()
}

/// Evaluates a `/query` through the streaming pipeline and renders the
/// result fragment: rows are written into the JSON body **as they are
/// pulled** from the cursor tree, so the full result set is never buffered,
/// and a satisfied limit stops evaluation itself.
///
/// `?limit=0` is the count-only path: a counting drain of the stream that
/// renders no rows and reports the exact cardinality (allocation-free for
/// order-preserving plans; unordered plans track seen triples, never rendered
/// rows).
///
/// Returns the rendered fragment, the number of rows rendered into it, and
/// the evaluation's work counters (which feed the `/healthz` and `/metrics`
/// parallel/sequential counters and the eval-stat aggregates). `trace`
/// records the plan/eval phase boundaries, the chosen plan and — when the
/// profiling stride is on — the per-operator timer handle.
#[allow(clippy::too_many_arguments)] // the buffered /query knobs, one call site
fn render_query_fragment(
    engine: &SmartEngine,
    compiled: &Compiled,
    store: &trial_core::Triplestore,
    limit: usize,
    order: Option<Permutation>,
    topk: Option<usize>,
    cancel: &CancelToken,
    trace: &mut Trace,
) -> trial_core::Result<(String, u64, EvalStats)> {
    // With ?order= or ?topk= the fragment echoes the effective knobs so
    // cached and fresh responses are self-describing.
    let annotate = |mut obj: JsonObject| {
        if let Some(p) = order.or_else(|| topk.map(|_| Permutation::Spo)) {
            obj = obj.str("order", p.name());
        }
        if let Some(k) = topk {
            obj = obj.num("topk", k as u64);
        }
        obj
    };
    if limit == 0 {
        // Count-only: the cardinality is order-independent, so don't pay
        // for a sort breaker the drain would never observe (a top-k bound
        // still changes the count and keeps its order).
        let plan_order = if topk.is_some() { order } else { None };
        let plan_started = trace.now();
        let stream = compiled.stream(engine, store, None, plan_order, topk)?;
        trace.phase("plan", plan_started);
        trace.set_plan(|| stream.plan().explain().trim_end().to_owned());
        trace.set_profile(stream.profile());
        let eval_started = trace.now();
        let (count, stats) = stream.count();
        trace.phase("eval", eval_started);
        // A cancelled counting drain stops early with a meaningless partial
        // count; surface the cancellation instead of a wrong answer.
        cancel.check()?;
        return Ok((
            annotate(
                JsonObject::new()
                    .num("count", count)
                    .boolean("truncated", count > 0),
            )
            .raw("triples", "[]")
            .raw("stats", &stats_json(&stats))
            .finish(),
            0,
            stats,
        ));
    }
    // Ask for one distinct triple beyond the response cap: pulling it proves
    // the limit cut evaluation short without rendering it. Under ?order= the
    // rows arrive in that permutation's key order (the plan root either
    // delivers it from an index permutation or sits above an explicit
    // sort/top-k), so the response sequence is deterministic.
    let plan_started = trace.now();
    let mut stream = compiled.stream(engine, store, Some(limit.saturating_add(1)), order, topk)?;
    trace.phase("plan", plan_started);
    trace.set_plan(|| stream.plan().explain().trim_end().to_owned());
    trace.set_profile(stream.profile());
    let eval_started = trace.now();
    let mut triples = String::from("[");
    let mut count: u64 = 0;
    let mut truncated = false;
    while let Some(t) = stream.next_triple() {
        if count as usize == limit {
            truncated = true;
            break;
        }
        if count > 0 {
            triples.push(',');
        }
        triples.push_str(&render_row(store, &t));
        count += 1;
    }
    triples.push(']');
    trace.phase("eval", eval_started);
    // Cancelled cursors stop yielding rather than erroring (the drain above
    // cannot tell "done" from "deadline"); this check converts a cancelled
    // partial result into the structured error before anything is cached.
    cancel.check()?;
    let stats = *stream.stats();
    Ok((
        annotate(
            JsonObject::new()
                .num("count", count)
                .boolean("truncated", truncated),
        )
        .raw("triples", &triples)
        .raw("stats", &stats_json(&stats))
        .finish(),
        count,
        stats,
    ))
}

/// Renders one result row as a `["s","p","o"]` JSON fragment.
fn render_row(store: &Triplestore, t: &trial_core::Triple) -> String {
    json::string_array([
        store.object_name(t.s()),
        store.object_name(t.p()),
        store.object_name(t.o()),
    ])
}

/// Evaluates an ordered (non-top-k) `/query` and returns the rendered rows
/// **individually** — the shape the prefix cache stores, so any smaller
/// limit can later be served by slicing. Returns
/// `(rows, truncated, stats_json, stats)`.
fn render_ordered_rows(
    engine: &SmartEngine,
    compiled: &Compiled,
    store: &Triplestore,
    limit: usize,
    order: Permutation,
    cancel: &CancelToken,
    trace: &mut Trace,
) -> trial_core::Result<(Vec<String>, bool, String, EvalStats)> {
    let plan_started = trace.now();
    let mut stream = compiled.stream(
        engine,
        store,
        Some(limit.saturating_add(1)),
        Some(order),
        None,
    )?;
    trace.phase("plan", plan_started);
    trace.set_plan(|| stream.plan().explain().trim_end().to_owned());
    trace.set_profile(stream.profile());
    let eval_started = trace.now();
    let mut rows = Vec::new();
    let mut truncated = false;
    while let Some(t) = stream.next_triple() {
        if rows.len() == limit {
            truncated = true;
            break;
        }
        rows.push(render_row(store, &t));
    }
    trace.phase("eval", eval_started);
    // A cancelled drain must not become a cached "complete" prefix: error
    // out before the caller offers these rows to the prefix cache.
    cancel.check()?;
    let stats = *stream.stats();
    let rendered = stats_json(&stats);
    Ok((rows, truncated, rendered, stats))
}

/// Assembles an ordered `/query` result fragment from pre-rendered rows —
/// field-for-field identical to what [`render_query_fragment`] produces for
/// the same ordered query, so prefix-cache hits are byte-compatible with
/// fresh evaluations.
fn ordered_fragment(order: Permutation, rows: &[String], truncated: bool, stats: &str) -> String {
    JsonObject::new()
        .num("count", rows.len() as u64)
        .boolean("truncated", truncated)
        .str("order", order.name())
        .raw("triples", &json::array(rows))
        .raw("stats", stats)
        .finish()
}

/// A fully validated `/query?stream=1` job.
///
/// Everything that can fail with a clean buffered error — parameter
/// parsing, store resolution, cursor-token validation, admission — happened
/// in [`route`] before this exists. What remains (planning and evaluation)
/// runs against the live socket: plan-time errors still produce a buffered
/// error response (nothing has been sent), but once the chunked head is on
/// the wire the only failure signal left is closing the connection early,
/// which the client detects as a chunk stream without a terminal chunk.
pub(crate) struct StreamingQuery {
    snapshot: Arc<StoreSnapshot>,
    compiled: Compiled,
    /// `"query"` or `"path"` — the metrics label and trace path.
    endpoint: &'static str,
    threads: usize,
    limit: usize,
    order: Option<Permutation>,
    topk: Option<usize>,
    /// `true` for `?nostats=1`: plan with pure heuristics.
    nostats: bool,
    /// `Some(key)` when resuming from a cursor token: the stream is seeked
    /// strictly past this permutation key instead of replaying from row 0.
    resume: Option<[trial_core::ObjectId; 3]>,
    close: bool,
    /// The armed cancel token this stream evaluates under (request deadline
    /// or manual); registered with the server's in-flight set so drain can
    /// fire it mid-stream.
    cancel: CancelToken,
    /// Held for the whole response; dropping it (with the job) releases the
    /// store's admission slot.
    _permit: Option<AdmissionPermit>,
    /// Attached by [`route`] after validation (the `Option` only exists to
    /// let the two construction steps stay separate); [`StreamingQuery::run`]
    /// finalizes it when the chunked response completes.
    trace: Option<Trace>,
}

/// Validates a streaming `/query` request up front. Errors come back as
/// complete buffered responses (the stream never starts): malformed or
/// cross-store cursors are `400 bad_cursor`, cursors minted against a
/// reloaded store are `410 stale_cursor`, saturation is `429`.
fn streaming_query(
    state: &ServerState,
    req: &Request,
    kind: QueryKind,
    trace: &mut Trace,
) -> Result<StreamingQuery, Box<Response>> {
    let text = query_text(req)?;
    trace.set_query(text);
    let params = parse_query_params(state, req, kind)?;
    let path_params = if kind == QueryKind::Path {
        Some(parse_path_params(req)?)
    } else {
        None
    };
    if params.limit == 0 {
        return Err(Box::new(error_response(
            400,
            "bad_request",
            "?limit=0 (count-only) has no streaming form; drop ?stream=1",
            None,
        )));
    }
    let snapshot = resolve_store(state, req)?;
    trace.set_store(snapshot.name());
    let mut order = params.order;
    let mut resume = None;
    if let Some(raw) = req.param("cursor") {
        let bad_cursor = |message: &str| Box::new(error_response(400, "bad_cursor", message, None));
        let Ok(token) = CursorToken::decode(raw) else {
            return Err(bad_cursor(
                "malformed ?cursor= token; pass the X-Trial-Cursor trailer value verbatim",
            ));
        };
        if params.topk.is_some() {
            return Err(bad_cursor(
                "top-k responses are complete sets, not stream positions; they cannot resume",
            ));
        }
        if token.store != snapshot.name() {
            return Err(bad_cursor(&format!(
                "cursor was issued for store `{}`, not `{}`",
                token.store,
                snapshot.name()
            )));
        }
        if token.epoch != snapshot.epoch() {
            // The store was reloaded: row keys from the old snapshot are
            // meaningless in the new one. 410 tells clients to restart
            // pagination rather than retry.
            return Err(Box::new(error_response(
                410,
                "stale_cursor",
                &format!(
                    "cursor was issued against epoch {} of store `{}`, which is now at epoch {}; restart pagination",
                    token.epoch,
                    snapshot.name(),
                    snapshot.epoch()
                ),
                None,
            )));
        }
        if let Some(requested) = order {
            if requested != token.order {
                return Err(bad_cursor(&format!(
                    "cursor resumes a ?order={} stream but the request asks for ?order={}",
                    token.order.name(),
                    requested.name()
                )));
            }
        }
        order = Some(token.order);
        resume = Some(token.last);
    }
    let parse_started = trace.now();
    let compiled = match compile_body(text, path_params.as_ref()) {
        Ok(compiled) => compiled,
        Err(e) => return Err(Box::new(eval_error_response(state, &e))),
    };
    trace.phase("parse", parse_started);
    // Same token discipline as the buffered path: armed before admission so
    // the permit wait counts against the deadline, registered so drain can
    // cancel the stream mid-flight.
    let cancel = match params.timeout {
        Some(t) => CancelToken::with_timeout(t),
        None => CancelToken::manual(),
    };
    state.inflight.register(&cancel);
    let admission_started = trace.now();
    let permit = match state.admission.acquire(snapshot.name()) {
        Ok(permit) => Some(permit),
        Err(retry_after) => return Err(Box::new(rejected_response(snapshot.name(), retry_after))),
    };
    trace.phase("admission", admission_started);
    state.chaos.trigger("eval");
    Ok(StreamingQuery {
        snapshot,
        compiled,
        endpoint: if kind == QueryKind::Path {
            "path"
        } else {
            "query"
        },
        threads: params.threads,
        limit: params.limit,
        order,
        topk: params.topk,
        nostats: params.nostats,
        resume,
        close: req.close,
        cancel,
        _permit: permit,
        trace: None,
    })
}

impl StreamingQuery {
    /// Runs the job against the socket: plans, evaluates through the
    /// exchange-fed [`trial_eval::QueryStream::channel`] (producer threads
    /// overlap evaluation with these writes), and emits the body as chunked
    /// transfer encoding with `X-Trial-Count` / `X-Trial-Truncated` /
    /// `X-Trial-Elapsed-Us` (and, for truncated ordered streams,
    /// `X-Trial-Cursor`) trailers.
    ///
    /// Returns whether the connection should be kept alive; any `Err` means
    /// the chunk stream is unfinishable and the caller must close.
    pub(crate) fn run<W: Write>(mut self, state: &ServerState, writer: &mut W) -> io::Result<bool> {
        let start = Instant::now();
        let trace_path = if self.endpoint == "path" {
            "/path"
        } else {
            "/query"
        };
        let mut trace = self
            .trace
            .take()
            .unwrap_or_else(|| Trace::begin(trace::next_request_id(), "POST", trace_path, false));
        let options = trial_eval::EvalOptions {
            threads: self.threads,
            cancel: self.cancel.clone(),
            ..state.eval.clone()
        };
        let engine = if self.nostats {
            SmartEngine::with_options(options)
        } else {
            // Streamed queries plan with (but never feed) the store's
            // observed statistics: only analyzed runs report actuals.
            SmartEngine::with_stats(options, state.registry.stats_for(self.snapshot.name()))
        };
        let store = self.snapshot.store();
        let probe_limit = Some(self.limit.saturating_add(1));
        let plan_started = trace.now();
        let stream = match self.resume {
            Some(after) => {
                let order = self.order.expect("cursor tokens always carry an order");
                self.compiled
                    .stream_after(&engine, store, probe_limit, order, after)
            }
            None => self
                .compiled
                .stream(&engine, store, probe_limit, self.order, self.topk),
        };
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                // Nothing is on the wire yet: plan-time failures still get
                // an ordinary buffered error and keep-alive survives. The
                // permit is released before the response bytes so a client
                // that can read the error never observes it still held.
                let response =
                    finalize(state, trace, eval_error_response(state, &e), self.endpoint);
                drop(self._permit.take());
                http::write_response(writer, &response, self.close)?;
                return Ok(!self.close);
            }
        };
        trace.phase("plan", plan_started);
        trace.set_plan(|| stream.plan().explain().trim_end().to_owned());
        trace.set_profile(stream.profile());

        // Head first, flushed immediately: time-to-first-byte is planning
        // time, not evaluation time. The `serialize` phase of a streamed
        // span covers only the head — row rendering happens inside the
        // `eval` pump, where serialization overlaps evaluation.
        let serialize_started = trace.now();
        let mut chunked = ChunkedWriter::begin(
            writer,
            200,
            self.close,
            &[
                "X-Trial-Count",
                "X-Trial-Truncated",
                "X-Trial-Elapsed-Us",
                "X-Trial-Cursor",
                "X-Trial-Error",
            ],
            Some(trace.request_id()),
        )?;
        let mut head = String::from("{\"store\":");
        head.push_str(&json::string(self.snapshot.name()));
        head.push_str(&format!(
            ",\"epoch\":{},\"cached\":false,\"stream\":true",
            self.snapshot.epoch()
        ));
        if let Some(p) = self.order.or_else(|| self.topk.map(|_| Permutation::Spo)) {
            head.push_str(&format!(",\"order\":\"{}\"", p.name()));
        }
        if let Some(k) = self.topk {
            head.push_str(&format!(",\"topk\":{k}"));
        }
        if self.resume.is_some() {
            head.push_str(",\"resumed\":true");
        }
        head.push_str(",\"triples\":");
        chunked.write_text(&head)?;
        trace.phase("serialize", serialize_started);

        let eval_started = trace.now();
        let limit = self.limit;
        let mut count: u64 = 0;
        let mut truncated = false;
        let mut last = None;
        // The pump runs under its own catch_unwind: once the 200 head is on
        // the wire the status can't change, so a worker panic (fault
        // injection or a real bug) must still reach `finish` below — the
        // terminal chunk plus an `X-Trial-Error` trailer naming the reason
        // is the only abort signal a chunked response has left.
        let chaos = &state.chaos;
        let cancel = self.cancel.clone();
        let pumped =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> io::Result<EvalStats> {
                let (rows_written, stats) =
                    stream.channel(EXCHANGE_DEPTH_BATCHES, |rows| -> io::Result<()> {
                        chaos.trigger("stream.pump");
                        let mut array = ArrayStream::begin(|s: &str| chunked.write_text(s))?;
                        while let Some(t) = rows.next_triple() {
                            if count as usize == limit {
                                // The probe row past the cap proves the stream
                                // was cut short; returning drops the exchange
                                // and terminates the producers.
                                truncated = true;
                                break;
                            }
                            // The producers check the token between batches,
                            // but batches already queued in the exchange
                            // would still drain to the socket; checking per
                            // row keeps a slow client from stretching a dead
                            // deadline. The break terminates the producers
                            // exactly like the row cap.
                            if cancel.is_cancelled() {
                                break;
                            }
                            chaos.io("stream.chunk")?;
                            chaos.trigger("stream.slow");
                            array.element(&render_row(store, &t))?;
                            count += 1;
                            last = Some(t);
                        }
                        array.finish()?;
                        Ok(())
                    });
                rows_written?;
                chunked.write_text("}")?;
                Ok(stats)
            }));
        trace.phase("eval", eval_started);

        let elapsed_us = (start.elapsed().as_micros() as u64).to_string();
        let stats = match pumped {
            Ok(Ok(stats)) => stats,
            Ok(Err(e)) => {
                // Socket-level death (including an injected `stream.chunk`
                // error): nothing more can be written, so there is no
                // trailer to emit — propagate and let the connection drop.
                // The missing terminal chunk is the client's signal.
                state.metrics.observe_error("stream_io");
                if let Some(span) = trace.finish(200, Some("stream_io".to_owned())) {
                    state.recorder.record(span);
                }
                drop(self._permit.take());
                return Err(e);
            }
            Err(_) => {
                // A panic mid-stream: the body is unfinishable (possibly
                // truncated mid-row), but the chunk framing is still intact
                // at `write_text` boundaries. Terminate the stream properly
                // and name the failure, then close the connection — the
                // body JSON cannot be trusted for reuse.
                state.metrics.observe_error("internal");
                let trailers: Vec<(&str, String)> = vec![
                    ("X-Trial-Error", "internal".to_owned()),
                    ("X-Trial-Elapsed-Us", elapsed_us),
                ];
                drop(self._permit.take());
                chunked.finish(&trailers)?;
                if let Some(span) = trace.finish(200, Some("internal".to_owned())) {
                    state.recorder.record(span);
                }
                return Ok(false);
            }
        };

        // Cancellation mid-stream: cursors stopped yielding, so the body is
        // well-formed but incomplete. Name the reason in the error trailer,
        // count it, and never mint a resume cursor from a cancelled position.
        let cancel_kind = self.cancel.reason().map(|r| r.as_str());
        if let Some(kind) = cancel_kind {
            truncated = true;
            state.metrics.observe_cancel(kind);
            state.metrics.observe_error(kind);
        }

        state.metrics.queries_served.inc();
        state.metrics.queries_streamed.inc();
        observe_fresh_eval(state, &stats);
        state.metrics.observe_rows(count);

        let mut trailers: Vec<(&str, String)> = vec![
            ("X-Trial-Count", count.to_string()),
            ("X-Trial-Truncated", truncated.to_string()),
            ("X-Trial-Elapsed-Us", elapsed_us),
        ];
        // A truncated *ordered* stream is resumable: the next page picks up
        // strictly after the last row we delivered. Top-k results are
        // complete sets, unordered streams have no stable position, and a
        // cancelled stream's last row is not a trustworthy position —
        // none of those get a cursor.
        if truncated && self.topk.is_none() && cancel_kind.is_none() {
            if let (Some(order), Some(t)) = (self.order, last) {
                let token = CursorToken {
                    store: self.snapshot.name().to_owned(),
                    epoch: self.snapshot.epoch(),
                    order,
                    last: order.key(&t),
                };
                trailers.push(("X-Trial-Cursor", token.encode()));
            }
        }
        if let Some(kind) = cancel_kind {
            trailers.push(("X-Trial-Error", kind.to_owned()));
        }

        // Record the span and its metrics BEFORE the terminal chunk goes on
        // the wire: a client that has read the trailers must find this
        // request already counted on /metrics (the cursors were flushed when
        // `channel` returned, so the profile snapshot is already complete).
        if let Some(span) = trace.finish(200, cancel_kind.map(str::to_owned)) {
            state
                .metrics
                .observe_request(self.endpoint, span.status, span.total_us);
            for (phase, us) in &span.phases {
                state.metrics.observe_phase(phase, *us);
            }
            state.recorder.record(span);
        }
        // Like the metrics above, the permit goes BEFORE the terminal
        // chunk: "the client has the trailers" must imply "the worker and
        // its admission slot are already free".
        drop(self._permit.take());
        chunked.finish(&trailers)?;
        Ok(!self.close)
    }
}

/// Renders the work counters of an evaluation.
fn stats_json(stats: &EvalStats) -> String {
    JsonObject::new()
        .num("pairs_considered", stats.pairs_considered)
        .num("triples_emitted", stats.triples_emitted)
        .num("triples_scanned", stats.triples_scanned)
        .num("fixpoint_rounds", stats.fixpoint_rounds)
        .num("joins_executed", stats.joins_executed)
        .num("reach_edges_traversed", stats.reach_edges_traversed)
        .num("memo_hits", stats.memo_hits)
        .num("parallel_morsels", stats.parallel_morsels)
        .num("hash_tables_built", stats.hash_tables_built)
        .num("topk_buffered_peak", stats.topk_buffered_peak)
        .finish()
}

/// Renders a physical plan tree as structured JSON: one object per operator
/// with its label, estimated cardinality, pipeline and parallelism metadata
/// — the machine-readable face of `explain()` served on `/explain`.
///
/// `index` tracks the node's preorder position, which is how `actuals` (from
/// an `?analyze=1` run, indexed per [`trial_eval::PlanNode::preorder`]) line
/// up with the tree: when present, each node carries an `"actual"` row count
/// next to its `"est"` (and `"est_src"` says whether that estimate came from
/// observed `"stats"` or the static `"heuristic"`; JSON `null` for nodes
/// that streamed through a limit
/// boundary without being individually materialised). `profiles` (also
/// preorder-indexed, from the same analyze run) adds wall-clock
/// `"elapsed_us"` — inclusive of children — and, for pipeline breakers,
/// `"build_us"` next to the cardinalities.
fn plan_tree_json(
    node: &trial_eval::PlanNode,
    threads: usize,
    est_sources: Option<&[bool]>,
    actuals: Option<&[Option<u64>]>,
    profiles: Option<&[NodeProfile]>,
    index: &mut usize,
) -> String {
    let position = *index;
    *index += 1;
    let children: Vec<String> = node
        .children()
        .into_iter()
        .map(|child| plan_tree_json(child, threads, est_sources, actuals, profiles, index))
        .collect();
    let mut object = JsonObject::new()
        .str("op", &node.label_with_threads(threads))
        .num("est", node.est() as u64);
    // Where the estimate came from: an observed cardinality from the store's
    // feedback statistics, or the static selectivity heuristics.
    if let Some(sources) = est_sources {
        object = object.str(
            "est_src",
            if sources.get(position).copied().unwrap_or(false) {
                "stats"
            } else {
                "heuristic"
            },
        );
    }
    if let Some(actuals) = actuals {
        match actuals.get(position).copied().flatten() {
            Some(actual) => object = object.num("actual", actual),
            None => object = object.raw("actual", "null"),
        }
    }
    if let Some(profiles) = profiles {
        if let Some(profile) = profiles.get(position) {
            object = object.num("elapsed_us", profile.elapsed_us);
            if let Some(build_us) = profile.build_us {
                object = object.num("build_us", build_us);
            }
        }
    }
    // "ordering" is the permutation the node's stream follows (null when
    // unordered); it subsumes the old `ordered` boolean (== "spo").
    if let Some(perm) = node.ordering() {
        object = object.str("ordering", perm.name());
    } else {
        object = object.raw("ordering", "null");
    }
    object
        .boolean("pipelined", node.pipelined())
        .boolean("parallel", threads > 1 && node.parallelizable())
        .raw("children", &json::array(children))
        .finish()
}

/// `/load`: stream-parse the N-Triples body into a **new** store built off
/// to the side, then atomically swap it in with a bumped epoch. In-flight
/// queries keep their snapshot; a parse error leaves the store untouched.
fn load(state: &ServerState, req: &Request) -> Response {
    let Some(store_name) = req.param("store") else {
        return error_response(
            400,
            "bad_request",
            "missing ?store= parameter naming the store to (re)load",
            None,
        );
    };
    let relation = req.param("relation").unwrap_or("E");
    let Some(body) = req.body_utf8() else {
        return error_response(
            400,
            "bad_request",
            "N-Triples body is not valid UTF-8",
            None,
        );
    };

    // Stores have no expiry or delete endpoint, so cap how much resident
    // memory well-formed clients can pin: a bounded number of stores, each
    // of bounded size. This pre-check runs *before* touching the gate map
    // so refused names don't leak gate entries; the `try_set` at the end
    // re-checks under the registry write lock, which is what actually
    // prevents concurrent first-loads from overshooting the cap.
    let store_cap_error = || {
        error_response(
            422,
            "limit_exceeded",
            &format!(
                "store limit reached ({} stores); reload an existing store instead",
                state.max_stores
            ),
            None,
        )
    };
    if state.registry.snapshot(store_name).is_none() && state.registry.len() >= state.max_stores {
        return store_cap_error();
    }

    // Serialise writers to *this* store; loads to other stores proceed in
    // parallel and readers are unaffected (they only clone Arcs).
    let gate = state.registry.write_gate(store_name);
    let _gate = gate
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let base = state.registry.snapshot(store_name);
    let base_triples = base.as_ref().map(|s| s.store().triple_count()).unwrap_or(0);

    let mut builder = match &base {
        Some(snapshot) => (**snapshot.store()).clone().into_builder(),
        None => TriplestoreBuilder::new(),
    };
    builder.relation(relation);

    // Streaming ingestion: one triple in flight at a time — objects are
    // named by the term's full lexical form (IRI text / literal text), and
    // literals additionally carry their lexical form as the data value ρ(o).
    let mut added: u64 = 0;
    for item in parse_ntriples_iter(body) {
        if base_triples + added as usize >= state.max_store_triples {
            return error_response(
                422,
                "limit_exceeded",
                &format!(
                    "store `{store_name}` would exceed {} triples; the store is unchanged",
                    state.max_store_triples
                ),
                None,
            );
        }
        let triple = match item {
            Ok(t) => t,
            Err(e) => return eval_error_response(state, &e),
        };
        for term in triple.terms() {
            if let Term::Literal(lexical) = term {
                builder.object_with_value(lexical, Value::str(lexical.clone()));
            }
        }
        builder.add_triple(
            relation,
            triple.subject.lexical(),
            triple.predicate.lexical(),
            triple.object.lexical(),
        );
        added += 1;
    }

    let store = builder.finish();
    let triples_total = store.triple_count() as u64;
    let relation_total = store
        .relation(relation)
        .map(|r| r.len() as u64)
        .unwrap_or(0);
    let Some(epoch) = state.registry.try_set(store_name, store, state.max_stores) else {
        return store_cap_error();
    };
    // Still under the write gate: the snapshot swap and the statistics
    // invalidation land as one atomic step with respect to other loads, so
    // no observation taken against the old snapshot can slip into the new
    // epoch's table between them.
    state.registry.invalidate_stats(store_name, epoch);
    state.metrics.loads_completed.inc();

    Response::ok(
        JsonObject::new()
            .str("store", store_name)
            .str("relation", relation)
            .num("epoch", epoch)
            .num("triples_added", added)
            .num("relation_triples", relation_total)
            .num("triples_total", triples_total)
            .finish(),
    )
}
