//! An LRU cache for query results, keyed by `(store, epoch, kind, text)`.
//!
//! A repeat of a query against the *same epoch* of a store skips
//! parse + plan + evaluate entirely and serves the rendered JSON fragment
//! from memory. Because the epoch is part of the key, a `/load` (which bumps
//! the store's epoch) invalidates every cached result for that store without
//! any explicit eviction pass — stale entries simply stop being reachable
//! and age out of the LRU order.
//!
//! Hit/miss counters are exposed on `/healthz`, which is how the integration
//! tests (and operators) observe cache behaviour.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What the cached text answers — `/query` results and `/explain` plans are
/// cached independently even for identical query text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// An evaluated result set (`/query`).
    Query,
    /// A rendered physical plan (`/explain`).
    Explain,
}

/// Cache key: store name + store epoch + endpoint kind + exact query text +
/// effective result limit + evaluation shape (threads, analyze).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registry name of the store.
    pub store: String,
    /// Epoch of the snapshot the result was computed against.
    pub epoch: u64,
    /// Which endpoint produced the value.
    pub kind: QueryKind,
    /// The query text, byte-for-byte (no normalisation).
    pub text: String,
    /// The `?limit=` the fragment was rendered with — the triple list is
    /// truncated at render time, so different limits are different results
    /// (0 for `/explain`, which has no limit).
    pub limit: u64,
    /// The effective evaluation parallelism: `/explain` plans carry
    /// `[parallel×N]` tags and `/query` stats report morsel counts, so
    /// fragments rendered at different degrees must not share an entry.
    pub threads: u64,
    /// `true` for `/explain?analyze=1` fragments (they embed per-node
    /// actual row counts that a plain explain lacks).
    pub analyze: bool,
    /// The requested `?order=` permutation (`"spo"`/`"pos"`/`"osp"`), or
    /// `None`: ordered fragments render rows in a different sequence (and
    /// ordered explains show different scan permutations / sort breakers),
    /// so they must not share an entry with unordered ones.
    pub order: Option<&'static str>,
    /// The requested `?topk=` bound, or `None`: a top-k fragment is a
    /// different result than a limit-truncated one.
    pub topk: Option<u64>,
}

#[derive(Debug)]
struct Slot {
    value: Arc<String>,
    stamp: u64,
}

#[derive(Debug, Default)]
struct LruInner {
    map: HashMap<CacheKey, Slot>,
    /// Recency queue of `(key, stamp)`; an entry is current only if its
    /// stamp matches the map's. Touches push fresh pairs and leave stale
    /// ones to be skipped at eviction (amortised O(1), no linked list).
    order: VecDeque<(CacheKey, u64)>,
    tick: u64,
}

/// A thread-safe LRU cache of rendered JSON fragments.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<LruInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` entries. Capacity 0
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            capacity,
            inner: Mutex::new(LruInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<String>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.stamp = tick;
                let value = Arc::clone(&slot.value);
                inner.order.push_back((key.clone(), tick));
                Self::compact(&mut inner);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → value`, evicting the least recently
    /// used entries if the cache is over capacity.
    pub fn insert(&self, key: CacheKey, value: Arc<String>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key.clone(), Slot { value, stamp: tick });
        inner.order.push_back((key, tick));
        while inner.map.len() > self.capacity {
            match inner.order.pop_front() {
                Some((victim, stamp)) => {
                    let current = inner.map.get(&victim).map(|s| s.stamp) == Some(stamp);
                    if current {
                        inner.map.remove(&victim);
                    }
                }
                None => break,
            }
        }
        Self::compact(&mut inner);
    }

    /// Drops stale recency pairs when the queue outgrows the map (bounded
    /// memory even under a workload of pure cache hits).
    fn compact(inner: &mut LruInner) {
        if inner.order.len() > inner.map.len() * 4 + 16 {
            let map = &inner.map;
            inner
                .order
                .retain(|(k, stamp)| map.get(k).map(|s| s.stamp) == Some(*stamp));
        }
    }

    /// Cache hits since startup.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since startup.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .map
            .len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(store: &str, epoch: u64, text: &str) -> CacheKey {
        CacheKey {
            store: store.into(),
            epoch,
            kind: QueryKind::Query,
            text: text.into(),
            limit: 100,
            threads: 1,
            analyze: false,
            order: None,
            topk: None,
        }
    }

    fn val(s: &str) -> Arc<String> {
        Arc::new(s.to_owned())
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = QueryCache::new(4);
        assert!(cache.get(&key("s", 1, "E")).is_none());
        cache.insert(key("s", 1, "E"), val("r"));
        assert_eq!(cache.get(&key("s", 1, "E")).unwrap().as_str(), "r");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn epoch_bump_invalidates() {
        let cache = QueryCache::new(4);
        cache.insert(key("s", 1, "E"), val("old"));
        // Same store and text, new epoch: different key, so a miss.
        assert!(cache.get(&key("s", 2, "E")).is_none());
        // The old epoch's entry is still present until evicted.
        assert!(cache.get(&key("s", 1, "E")).is_some());
        // Explain and Query results do not collide.
        let explain = CacheKey {
            kind: QueryKind::Explain,
            ..key("s", 1, "E")
        };
        assert!(cache.get(&explain).is_none());
        // Neither do renderings with different ?limit= values.
        let other_limit = CacheKey {
            limit: 1,
            ..key("s", 1, "E")
        };
        assert!(cache.get(&other_limit).is_none());
        // Nor fragments evaluated at a different parallel degree, nor
        // analyzed explains.
        let other_threads = CacheKey {
            threads: 4,
            ..key("s", 1, "E")
        };
        assert!(cache.get(&other_threads).is_none());
        let analyzed = CacheKey {
            analyze: true,
            ..key("s", 1, "E")
        };
        assert!(cache.get(&analyzed).is_none());
        // Ordered and top-k renderings are their own entries too.
        let ordered = CacheKey {
            order: Some("pos"),
            ..key("s", 1, "E")
        };
        assert!(cache.get(&ordered).is_none());
        let topk = CacheKey {
            topk: Some(5),
            ..key("s", 1, "E")
        };
        assert!(cache.get(&topk).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = QueryCache::new(2);
        cache.insert(key("s", 1, "a"), val("1"));
        cache.insert(key("s", 1, "b"), val("2"));
        // Touch `a` so `b` is the LRU victim.
        assert!(cache.get(&key("s", 1, "a")).is_some());
        cache.insert(key("s", 1, "c"), val("3"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("s", 1, "a")).is_some());
        assert!(cache.get(&key("s", 1, "b")).is_none());
        assert!(cache.get(&key("s", 1, "c")).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = QueryCache::new(0);
        cache.insert(key("s", 1, "a"), val("1"));
        assert!(cache.get(&key("s", 1, "a")).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
        assert_eq!(cache.misses(), 1); // the lookup still counts as a miss
    }

    #[test]
    fn recency_queue_stays_bounded_under_repeated_hits() {
        let cache = QueryCache::new(2);
        cache.insert(key("s", 1, "a"), val("1"));
        for _ in 0..10_000 {
            assert!(cache.get(&key("s", 1, "a")).is_some());
        }
        let inner = cache.inner.lock().unwrap();
        assert!(inner.order.len() <= inner.map.len() * 4 + 17);
    }
}
