//! LRU caches for query results, keyed by `(store, epoch, kind, text)`.
//!
//! A repeat of a query against the *same epoch* of a store skips
//! parse + plan + evaluate entirely and serves the rendered JSON fragment
//! from memory. Because the epoch is part of the key, a `/load` (which bumps
//! the store's epoch) invalidates every cached result for that store without
//! any explicit eviction pass — stale entries simply stop being reachable
//! and age out of the LRU order.
//!
//! Two caches share the same LRU core:
//!
//! * [`QueryCache`] — exact-key fragments: the whole rendered response for
//!   one `(limit, threads, analyze, order, topk)` combination.
//! * [`PrefixCache`] — **prefix-closed ordered results**: an ordered query's
//!   rows under a fixed `(store, epoch, text, threads, order)` are the same
//!   rows for every limit, just cut at a different length, so one cached
//!   prefix of `k` rendered rows serves *every* `?limit=L` with `L ≤ k` by
//!   slicing (and every limit at all once the prefix is known complete).
//!   Deeper evaluations replace shallower entries, never the reverse.
//!
//! Hit/miss counters for both (the prefix cache's hits surface as
//! `hits_prefix`) are exposed on `/healthz`, which is how the integration
//! tests (and operators) observe cache behaviour.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What the cached text answers — `/query` results and `/explain` plans are
/// cached independently even for identical query text. Path expressions get
/// their own kinds: a path text like `a/b` lives in a different grammar than
/// TriAL text, so the two namespaces must never share an entry even when the
/// bytes coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// An evaluated result set (`/query`).
    Query,
    /// A rendered physical plan (`/explain`).
    Explain,
    /// An evaluated path-query result set (`/path`).
    Path,
    /// A rendered path-query plan (`/explain?path=1`).
    PathExplain,
}

/// Cache key: store name + store epoch + endpoint kind + exact query text +
/// effective result limit + evaluation shape (threads, analyze).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registry name of the store.
    pub store: String,
    /// Epoch of the snapshot the result was computed against.
    pub epoch: u64,
    /// Which endpoint produced the value.
    pub kind: QueryKind,
    /// The query text, byte-for-byte (no normalisation).
    pub text: String,
    /// The `?limit=` the fragment was rendered with — the triple list is
    /// truncated at render time, so different limits are different results
    /// (0 for `/explain`, which has no limit).
    pub limit: u64,
    /// The effective evaluation parallelism: `/explain` plans carry
    /// `[parallel×N]` tags and `/query` stats report morsel counts, so
    /// fragments rendered at different degrees must not share an entry.
    pub threads: u64,
    /// `true` for `/explain?analyze=1` fragments (they embed per-node
    /// actual row counts that a plain explain lacks).
    pub analyze: bool,
    /// The requested `?order=` permutation (`"spo"`/`"pos"`/`"osp"`), or
    /// `None`: ordered fragments render rows in a different sequence (and
    /// ordered explains show different scan permutations / sort breakers),
    /// so they must not share an entry with unordered ones.
    pub order: Option<&'static str>,
    /// The requested `?topk=` bound, or `None`: a top-k fragment is a
    /// different result than a limit-truncated one.
    pub topk: Option<u64>,
    /// `true` for `?nostats=1` requests, which plan with pure heuristics:
    /// their explain fragments (and stats blocks) differ from the
    /// feedback-driven default and must not share an entry with it.
    pub nostats: bool,
    /// The [`trial_eval::StatsStore`] generation the fragment was planned
    /// against (0 under `?nostats=1`). Feedback changes plans *within* an
    /// epoch, so a warmed table must stop re-serving fragments planned cold
    /// — and a cached `analyze` must not short-circuit the very runs that
    /// feed the table.
    pub stats_generation: u64,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    stamp: u64,
}

/// The shared LRU core: a map plus an amortised recency queue. Not
/// thread-safe by itself — both caches wrap it in a `Mutex`.
#[derive(Debug)]
struct Lru<K, V> {
    map: HashMap<K, Slot<V>>,
    /// Recency queue of `(key, stamp)`; an entry is current only if its
    /// stamp matches the map's. Touches push fresh pairs and leave stale
    /// ones to be skipped at eviction (amortised O(1), no linked list).
    order: VecDeque<(K, u64)>,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> Lru<K, V> {
    fn new() -> Self {
        Lru {
            map: HashMap::new(),
            order: VecDeque::new(),
            tick: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let value = match self.map.get_mut(key) {
            Some(slot) => {
                slot.stamp = tick;
                Some(slot.value.clone())
            }
            None => return None,
        };
        self.order.push_back((key.clone(), tick));
        self.compact();
        value
    }

    /// Peeks at `key` without touching recency (used for replace-if-longer
    /// decisions that must not promote the entry they might evict).
    fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|slot| &slot.value)
    }

    /// Inserts (or refreshes) `key → value`, evicting the least recently
    /// used entries if the map is over `capacity`.
    fn insert(&mut self, key: K, value: V, capacity: usize) {
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(key.clone(), Slot { value, stamp: tick });
        self.order.push_back((key, tick));
        while self.map.len() > capacity {
            match self.order.pop_front() {
                Some((victim, stamp)) => {
                    let current = self.map.get(&victim).map(|s| s.stamp) == Some(stamp);
                    if current {
                        self.map.remove(&victim);
                    }
                }
                None => break,
            }
        }
        self.compact();
    }

    /// Drops stale recency pairs when the queue outgrows the map (bounded
    /// memory even under a workload of pure cache hits).
    fn compact(&mut self) {
        if self.order.len() > self.map.len() * 4 + 16 {
            let map = &self.map;
            self.order
                .retain(|(k, stamp)| map.get(k).map(|s| s.stamp) == Some(*stamp));
        }
    }
}

/// A thread-safe LRU cache of rendered JSON fragments.
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<Lru<CacheKey, Arc<String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    /// Creates a cache holding at most `capacity` entries. Capacity 0
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        QueryCache {
            capacity,
            inner: Mutex::new(Lru::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<String>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let value = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key);
        match value {
            Some(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → value`, evicting the least recently
    /// used entries if the cache is over capacity.
    pub fn insert(&self, key: CacheKey, value: Arc<String>) {
        if self.capacity == 0 {
            return;
        }
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, value, self.capacity);
    }

    /// Cache hits since startup.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since startup.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .map
            .len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Key for the prefix-closed ordered cache. **No limit**: that is the whole
/// point — one entry serves every limit up to its depth. Top-k and analyze
/// results never reach this cache (a top-k set is not a prefix of anything).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PrefixKey {
    /// Registry name of the store.
    pub store: String,
    /// Epoch of the snapshot the rows were computed against.
    pub epoch: u64,
    /// The query grammar the text belongs to ([`QueryKind::Query`] or
    /// [`QueryKind::Path`]) — probed before parsing, so without it a path
    /// text could slice a TriAL prefix whose bytes happen to match.
    pub kind: QueryKind,
    /// The query text, byte-for-byte.
    pub text: String,
    /// Evaluation parallelism (stats embedded in served fragments differ).
    pub threads: u64,
    /// The order the rows stream in (`"spo"`/`"pos"`/`"osp"`).
    pub order: &'static str,
}

/// A cached ordered result prefix: the first `rows.len()` rows of the
/// ordered result, each pre-rendered as a `["s","p","o"]` JSON fragment.
#[derive(Debug)]
pub struct PrefixEntry {
    /// Rendered row fragments in the order's key order.
    pub rows: Vec<String>,
    /// `true` when more rows exist beyond `rows` (the prefix is proper);
    /// `false` means `rows` is the **complete** result, serving any limit.
    pub complete: bool,
    /// Rendered work counters of the evaluation that produced the prefix
    /// (served verbatim on prefix hits, like exact-cache hits serve their
    /// original stats).
    pub stats: String,
}

impl PrefixEntry {
    /// `true` when this entry can answer `?limit=limit` by slicing.
    pub fn covers(&self, limit: usize) -> bool {
        self.complete || self.rows.len() >= limit
    }
}

/// A thread-safe LRU of prefix-closed ordered results.
#[derive(Debug)]
pub struct PrefixCache {
    capacity: usize,
    inner: Mutex<Lru<PrefixKey, Arc<PrefixEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PrefixCache {
    /// Creates a cache holding at most `capacity` entries (0 disables).
    pub fn new(capacity: usize) -> Self {
        PrefixCache {
            capacity,
            inner: Mutex::new(Lru::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up an entry deep enough to serve `limit` rows. An entry that is
    /// too shallow counts as a miss (the caller will evaluate deeper and
    /// [`PrefixCache::offer`] the longer prefix back).
    pub fn get_covering(&self, key: &PrefixKey, limit: usize) -> Option<Arc<PrefixEntry>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let covering = matches!(inner.peek(key), Some(entry) if entry.covers(limit));
        let value = if covering { inner.get(key) } else { None };
        drop(inner);
        match value {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Offers a freshly evaluated prefix. Kept only if it is **deeper** than
    /// the current entry (or completes it) — prefix-closure means a longer
    /// prefix strictly subsumes a shorter one, so replacement only ever goes
    /// deeper and a shallow re-evaluation can never clobber a deep prefix.
    pub fn offer(&self, key: PrefixKey, entry: Arc<PrefixEntry>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let keep = match inner.peek(&key) {
            Some(current) => {
                !current.complete && (entry.complete || entry.rows.len() > current.rows.len())
            }
            None => true,
        };
        if keep {
            inner.insert(key, entry, self.capacity);
        }
    }

    /// Prefix-cache hits since startup (`hits_prefix` on `/healthz`).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Prefix-cache misses (including too-shallow entries) since startup.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Current number of cached prefixes.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .map
            .len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(store: &str, epoch: u64, text: &str) -> CacheKey {
        CacheKey {
            store: store.into(),
            epoch,
            kind: QueryKind::Query,
            text: text.into(),
            limit: 100,
            threads: 1,
            analyze: false,
            order: None,
            topk: None,
            nostats: false,
            stats_generation: 0,
        }
    }

    fn val(s: &str) -> Arc<String> {
        Arc::new(s.to_owned())
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = QueryCache::new(4);
        assert!(cache.get(&key("s", 1, "E")).is_none());
        cache.insert(key("s", 1, "E"), val("r"));
        assert_eq!(cache.get(&key("s", 1, "E")).unwrap().as_str(), "r");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn epoch_bump_invalidates() {
        let cache = QueryCache::new(4);
        cache.insert(key("s", 1, "E"), val("old"));
        // Same store and text, new epoch: different key, so a miss.
        assert!(cache.get(&key("s", 2, "E")).is_none());
        // The old epoch's entry is still present until evicted.
        assert!(cache.get(&key("s", 1, "E")).is_some());
        // Explain and Query results do not collide.
        let explain = CacheKey {
            kind: QueryKind::Explain,
            ..key("s", 1, "E")
        };
        assert!(cache.get(&explain).is_none());
        // Neither do renderings with different ?limit= values.
        let other_limit = CacheKey {
            limit: 1,
            ..key("s", 1, "E")
        };
        assert!(cache.get(&other_limit).is_none());
        // Nor fragments evaluated at a different parallel degree, nor
        // analyzed explains.
        let other_threads = CacheKey {
            threads: 4,
            ..key("s", 1, "E")
        };
        assert!(cache.get(&other_threads).is_none());
        let analyzed = CacheKey {
            analyze: true,
            ..key("s", 1, "E")
        };
        assert!(cache.get(&analyzed).is_none());
        // Ordered and top-k renderings are their own entries too.
        let ordered = CacheKey {
            order: Some("pos"),
            ..key("s", 1, "E")
        };
        assert!(cache.get(&ordered).is_none());
        let topk = CacheKey {
            topk: Some(5),
            ..key("s", 1, "E")
        };
        assert!(cache.get(&topk).is_none());
        // A warmed stats table (new generation) and the ?nostats=1 escape
        // hatch each get fresh entries: feedback changes plans within an
        // epoch.
        let warmed = CacheKey {
            stats_generation: 3,
            ..key("s", 1, "E")
        };
        assert!(cache.get(&warmed).is_none());
        let nostats = CacheKey {
            nostats: true,
            ..key("s", 1, "E")
        };
        assert!(cache.get(&nostats).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = QueryCache::new(2);
        cache.insert(key("s", 1, "a"), val("1"));
        cache.insert(key("s", 1, "b"), val("2"));
        // Touch `a` so `b` is the LRU victim.
        assert!(cache.get(&key("s", 1, "a")).is_some());
        cache.insert(key("s", 1, "c"), val("3"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("s", 1, "a")).is_some());
        assert!(cache.get(&key("s", 1, "b")).is_none());
        assert!(cache.get(&key("s", 1, "c")).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = QueryCache::new(0);
        cache.insert(key("s", 1, "a"), val("1"));
        assert!(cache.get(&key("s", 1, "a")).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
        assert_eq!(cache.misses(), 1); // the lookup still counts as a miss
    }

    #[test]
    fn recency_queue_stays_bounded_under_repeated_hits() {
        let cache = QueryCache::new(2);
        cache.insert(key("s", 1, "a"), val("1"));
        for _ in 0..10_000 {
            assert!(cache.get(&key("s", 1, "a")).is_some());
        }
        let inner = cache.inner.lock().unwrap();
        assert!(inner.order.len() <= inner.map.len() * 4 + 17);
    }

    fn pkey(text: &str, epoch: u64) -> PrefixKey {
        PrefixKey {
            store: "s".into(),
            epoch,
            kind: QueryKind::Query,
            text: text.into(),
            threads: 1,
            order: "pos",
        }
    }

    fn prefix(rows: usize, complete: bool) -> Arc<PrefixEntry> {
        Arc::new(PrefixEntry {
            rows: (0..rows).map(|i| format!("[{i}]")).collect(),
            complete,
            stats: "{}".into(),
        })
    }

    #[test]
    fn a_deep_prefix_serves_every_shallower_limit() {
        let cache = PrefixCache::new(4);
        assert!(cache.get_covering(&pkey("E", 1), 10).is_none());
        cache.offer(pkey("E", 1), prefix(100, false));
        // Any limit ≤ 100 slices out of the entry; 101 is too deep.
        for limit in [1, 50, 100] {
            let entry = cache.get_covering(&pkey("E", 1), limit).unwrap();
            assert!(entry.rows.len() >= limit);
        }
        assert!(cache.get_covering(&pkey("E", 1), 101).is_none());
        // A *complete* prefix covers any limit at all.
        cache.offer(pkey("E", 1), prefix(100, true));
        assert!(cache.get_covering(&pkey("E", 1), 100_000).is_some());
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn replacement_only_goes_deeper() {
        let cache = PrefixCache::new(4);
        cache.offer(pkey("E", 1), prefix(50, false));
        // A shallower re-evaluation must not clobber the deeper prefix.
        cache.offer(pkey("E", 1), prefix(10, false));
        assert_eq!(
            cache.get_covering(&pkey("E", 1), 50).unwrap().rows.len(),
            50
        );
        // Deeper replaces; complete replaces deeper; nothing replaces
        // complete (it already serves everything).
        cache.offer(pkey("E", 1), prefix(80, false));
        assert_eq!(
            cache.get_covering(&pkey("E", 1), 60).unwrap().rows.len(),
            80
        );
        cache.offer(pkey("E", 1), prefix(80, true));
        cache.offer(pkey("E", 1), prefix(200, false));
        let entry = cache.get_covering(&pkey("E", 1), 1).unwrap();
        assert!(entry.complete);
        assert_eq!(entry.rows.len(), 80);
    }

    #[test]
    fn prefix_entries_are_epoch_scoped_and_lru_bounded() {
        let cache = PrefixCache::new(2);
        cache.offer(pkey("E", 1), prefix(10, true));
        assert!(cache.get_covering(&pkey("E", 2), 5).is_none());
        cache.offer(pkey("a", 1), prefix(10, true));
        cache.offer(pkey("b", 1), prefix(10, true));
        assert_eq!(cache.len(), 2);
        let disabled = PrefixCache::new(0);
        disabled.offer(pkey("E", 1), prefix(10, true));
        assert!(disabled.get_covering(&pkey("E", 1), 1).is_none());
        assert!(disabled.is_empty());
    }
}
