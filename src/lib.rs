//! Facade crate for the TriAL-for-RDF workspace.
//!
//! The implementation lives in the `trial-*` crates under `crates/`; this
//! package exists to host the cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`) at the repository root, and re-exports
//! the member crates for convenience.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use trial_core as core;
pub use trial_datalog as datalog;
pub use trial_eval as eval;
pub use trial_graph as graph;
pub use trial_logic as logic;
pub use trial_parser as parser;
pub use trial_rdf as rdf;
pub use trial_workloads as workloads;
