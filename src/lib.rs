//! Facade crate for the TriAL-for-RDF workspace.
//!
//! The implementation lives in the `trial-*` crates under `crates/`; this
//! package exists to host the cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`) at the repository root, and re-exports
//! the member crates for convenience.
//!
//! # Serving TriAL over HTTP
//!
//! The [`server`] crate wraps the engines in a concurrent HTTP/1.1 query
//! service (std-only: hand-rolled HTTP and JSON, fixed worker thread pool,
//! copy-on-write store snapshots, LRU query cache). Start one with a preset
//! workload:
//!
//! ```bash
//! cargo run --release -p trial-server --bin trial-serve -- --preload transport
//! ```
//!
//! and drive it with curl — request bodies are plain text, responses JSON:
//!
//! ```bash
//! curl -s localhost:7878/query   -d "(E JOIN[1,3',3 | 2=1'] E)"   # evaluate
//! curl -s localhost:7878/explain -d "STAR(E JOIN[1,2,3' | 3=1'])" # plan only
//! curl -s "localhost:7878/load?store=mydata" --data-binary @data.nt
//! curl -s localhost:7878/path    -d "a/b"                         # path query
//! curl -s "localhost:7878/path?max_hops=4" -d "(a|b)+"            # bounded walk
//! curl -s "localhost:7878/explain?path=1" -d "(a/b)*"             # path plan
//! curl -s "localhost:7878/query?order=pos" -d "E"                 # sorted rows
//! curl -s "localhost:7878/query?order=osp&topk=10" -d "E"         # k smallest
//! curl -sN "localhost:7878/query?stream=1" -d "E"                 # chunked rows
//! curl -s "localhost:7878/query?cursor=$TOKEN" -d "E"             # next page
//! curl -s localhost:7878/stores                                   # inventory
//! curl -s localhost:7878/healthz                                  # counters
//! curl -s "localhost:7878/explain?analyze=1" -d "E"  # run + feed planner stats
//! curl -s "localhost:7878/query?nostats=1" -d "E"    # opt out of learned stats
//! ```
//!
//! The planner is adaptive: `?analyze=1` runs feed observed per-node
//! cardinalities into a per-store statistics table, later plans draw on
//! them (each `/explain` node reports `est_src: stats` or `heuristic`),
//! `?nostats=1` opts a request back out, and `/load` invalidates the
//! table with the epoch bump. See the [`eval`] crate's *Adaptive
//! planning* section.
//!
//! `POST /path` evaluates regular path queries — label atoms, `/`
//! concatenation, `|` alternation, `*`/`+`/`?` closures — over one edge
//! relation, returning reachable pairs `(x, y)` as `(x, x, y)` triples.
//! Closure-free expressions lower to TriAL join plans the adaptive planner
//! optimises; closures and `?max_hops=` walk bounds run a Thompson-NFA
//! product walk (`?algo=` pins the strategy). All `/query` delivery knobs
//! apply. See the [`eval`] crate's *Path queries* section.
//!
//! `?stream=1` switches the response to chunked transfer encoding fed by a
//! parallel exchange — rows hit the wire as evaluation produces them, and
//! `X-Trial-Count` / `X-Trial-Truncated` / `X-Trial-Cursor` arrive as HTTP
//! trailers. A truncated ordered stream's cursor token resumes the row
//! sequence exactly where the page stopped (`410` if the store was reloaded
//! in between); saturated stores shed load with structured `429`s instead
//! of queueing unboundedly.
//!
//! # Observability
//!
//! The server ships its own scrape surface and a slow-query flight
//! recorder, built on the std-only [`obs`] metrics registry:
//!
//! ```bash
//! curl -s localhost:7878/metrics                     # Prometheus text format
//! curl -s localhost:7878/debug/slow                  # slowest + errored spans
//! curl -s "localhost:7878/explain?analyze=1" -d "E"  # per-node elapsed_us
//! curl -s -H "X-Request-Id: deploy-42" localhost:7878/query -d "E" -i
//! ```
//!
//! Metrics follow Prometheus conventions (`trial_` prefix, `_total`
//! counters, `_us` microsecond histograms, low-cardinality labels like
//! `{endpoint}`, `{phase}`, `{kind}`). Every response echoes an
//! `X-Request-Id` header — client-supplied or generated — that keys the
//! request's phase-timed span in `/debug/slow`. `trial-serve
//! --profile-sample N` samples per-operator timings outside `?analyze=1`;
//! `--no-obs` disables tracing and latency histograms while keeping the
//! service counters and `/metrics` live. The full metric reference is in
//! the [`server`] crate's *Observability* section.
//!
//! # Robustness
//!
//! Evaluation is cooperatively cancellable end to end: every fresh query
//! runs under a cancel token (deadline + explicit cancel) consulted at
//! each cursor pull, morsel loop, fixpoint round and blocking build, so a
//! deadline surfaces as a structured error within milliseconds instead of
//! after the evaluation would have finished anyway:
//!
//! ```bash
//! curl -s "localhost:7878/query?timeout_ms=250" -d "STAR(E JOIN[1,2,3' | 3=1'])"
//! # → 408 {"error":{"kind":"deadline_exceeded",...}}
//! trial-serve --preload transport --default-timeout-ms 2000  # server-wide default
//! trial-serve --chaos "eval=panic@2"                         # fault injection
//! ```
//!
//! A cancelled query frees its admission permit and workers promptly and
//! never seeds the caches; a chunked response that dies mid-stream names
//! the reason in an `X-Trial-Error` trailer. SIGTERM (or
//! `Server::drain()`) drains gracefully: in-flight requests finish within
//! a grace window, stragglers are cancelled with reason `shutdown`. The
//! `--chaos` fault-injection layer deterministically panics, errors or
//! stalls named serving sites so the crash-containment invariants stay
//! testable (`crates/trial-server/tests/chaos.rs`). Details and the full
//! grammar are in the [`server`] crate's *Robustness* section; measured
//! check overhead and release latency land in `BENCH_robustness.json`.
//!
//! `examples/server_demo.rs` runs the same round trip in-process; the full
//! endpoint reference is in the [`server`] crate docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use trial_core as core;
pub use trial_datalog as datalog;
pub use trial_eval as eval;
pub use trial_graph as graph;
pub use trial_logic as logic;
pub use trial_obs as obs;
pub use trial_parser as parser;
pub use trial_rdf as rdf;
pub use trial_server as server;
pub use trial_workloads as workloads;
